"""Unit tests for the CURP client: fast path, slow path, retries."""

from __future__ import annotations

import pytest

from repro.core.config import CurpConfig, ReplicationMode
from repro.core.client import ClientGaveUp
from repro.harness import build_cluster
from repro.kvstore import Read, Write


def curp_cluster(**kwargs):
    defaults = dict(f=3, mode=ReplicationMode.CURP, min_sync_batch=50,
                    idle_sync_delay=200.0, retry_backoff=10.0,
                    rpc_timeout=100.0)
    defaults.update(kwargs)
    return build_cluster(CurpConfig(**defaults))


def test_fast_path_needs_all_witnesses():
    cluster = curp_cluster()
    client = cluster.new_client()
    outcome = cluster.run(client.update(Write("a", 1)))
    assert outcome.fast_path and not outcome.sync_rpc_needed
    assert outcome.latency == pytest.approx(4.0)


def test_witness_rejection_forces_sync_rpc():
    """§3.2.1: if any witness rejects, the client must wait for a sync."""
    cluster = curp_cluster()
    client_a = cluster.new_client()
    client_b = cluster.new_client()
    cluster.run(client_a.update(Write("a", 1)))  # occupies key "a" slots
    outcome = cluster.run(client_b.update(Write("a", 2)))
    # The master also detects the conflict and syncs, so the client
    # usually completes in 2 RTTs without a separate sync RPC (§5.3).
    assert outcome.synced_by_master
    assert not outcome.fast_path
    assert cluster.master().store.read("a") == 2


def test_sync_rpc_when_witness_full_but_master_commutative():
    """A witness can reject (stale garbage) while the master sees no
    conflict — then the client needs an explicit sync RPC."""
    cluster = curp_cluster()
    client = cluster.new_client()
    # Fill the witness slot for key "a" under a *different* rpc, then
    # gc it from the master's pending list so the master forgets it.
    cluster.run(client.update(Write("a", 1)))
    cluster.settle(500.0)  # synced + gc'd: witnesses clean, master clean
    # Manually poison one witness with a conflicting record.
    witness_name = cluster.witness_hosts["m0"][0]
    witness = cluster.coordinator.witness_servers[witness_name]
    from repro.kvstore import key_hash
    from repro.rifl import RpcId
    witness.cache.record([key_hash("b")], RpcId(99, 1), "poison")
    outcome = cluster.run(client.update(Write("b", 5)))
    assert outcome.sync_rpc_needed
    assert not outcome.fast_path
    assert cluster.master().store.read("b") == 5
    # Durable despite the rejection:
    assert cluster.master().unsynced_count == 0


def test_master_crash_update_retries_to_recovered_master():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    cluster.master().host.crash()
    standby = cluster.add_host("standby", role="master")
    done = cluster.sim.process(
        cluster.coordinator.recover_master("m0", standby))
    update = cluster.sim.process(client.update(Write("b", 2)))
    cluster.run(cluster.sim.all_of([done, update]), timeout=1_000_000.0)
    outcome = update.value
    # Version numbering jumps after recovery (anti-ABA floor); the
    # write succeeded if it returned any version.
    assert outcome.result >= 1
    assert outcome.attempts > 1
    # Both writes survived.
    new_master = cluster.coordinator.masters["m0"].master
    assert new_master.store.read("a") == 1
    assert new_master.store.read("b") == 2


def test_client_gives_up_eventually():
    cluster = curp_cluster(max_attempts=3)
    client = cluster.new_client()
    cluster.master().host.crash()  # never recovered
    with pytest.raises(ClientGaveUp):
        cluster.run(client.update(Write("a", 1)), timeout=1_000_000.0)


def test_wrong_witness_version_refreshes_and_retries():
    cluster = curp_cluster()
    client = cluster.new_client()
    # Coordinator replaces a witness behind the client's back.
    extra = cluster.add_host("w-extra", role="witness")
    cluster.run(cluster.sim.process(
        cluster.coordinator.replace_witness(
            "m0", cluster.witness_hosts["m0"][0], extra)))
    outcome = cluster.run(client.update(Write("a", 1)))
    assert outcome.result == 1
    assert outcome.attempts == 2  # one WRONG_WITNESS_VERSION bounce
    assert client.view.masters["m0"].witness_list_version == 1


def test_read_from_master():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", "value")))
    assert cluster.run(client.read("a")) == "value"
    assert cluster.run(client.read("missing")) is None


def test_reject_read_through_update():
    cluster = curp_cluster()
    client = cluster.new_client()
    with pytest.raises(ValueError):
        cluster.run(client.update(Read("a")))


def test_outcome_collection_toggle():
    cluster = curp_cluster()
    client = cluster.new_client(collect_outcomes=False)
    cluster.run(client.update(Write("a", 1)))
    assert client.outcomes == []
    assert client.completed_updates == 1
    assert client.fast_path_updates == 1


def test_read_nearby_fresh_from_backup():
    """§A.1: synced value + commuting witness → served by the backup."""
    cluster = curp_cluster(min_sync_batch=1, idle_sync_delay=50.0)
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 42)))
    cluster.settle(1_000.0)  # sync + gc: witness clean, backups fresh
    backup = cluster.backup_hosts["m0"][0]
    witness = cluster.witness_hosts["m0"][0]
    master_reads_before = cluster.master().stats.reads
    value = cluster.run(client.read_nearby("a", backup, witness))
    assert value == 42
    assert cluster.master().stats.reads == master_reads_before  # no master hop


def test_read_nearby_falls_back_on_conflict():
    """§A.1: unsynced update (still recorded on witnesses) → the read
    must go to the master, never serving the stale backup value."""
    cluster = curp_cluster()  # batch 50: update stays unsynced
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    cluster.settle(1_000.0)
    cluster.run(client.update(Write("a", 2)))  # conflicts → synced...
    cluster.run(client.update(Write("b", 3)))  # ...this one speculative
    backup = cluster.backup_hosts["m0"][0]
    witness = cluster.witness_hosts["m0"][0]
    value = cluster.run(client.read_nearby("b", backup, witness))
    assert value == 3  # master value, not the backup's stale None


def test_read_nearby_never_stale_property():
    """Sweep: after every update, a nearby read returns the latest
    value regardless of sync state."""
    cluster = curp_cluster()
    client = cluster.new_client()
    backup = cluster.backup_hosts["m0"][0]
    witness = cluster.witness_hosts["m0"][0]
    for i in range(20):
        key = f"k{i % 3}"
        cluster.run(client.update(Write(key, i)))
        value = cluster.run(client.read_nearby(key, backup, witness))
        assert value == i
