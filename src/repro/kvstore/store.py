"""The in-memory object store.

Executes operations against versioned objects and appends their effects
to the :class:`~repro.kvstore.log.Log`.  Each object remembers the log
position and wall-clock (simulated) time of its last mutation:

- position vs the master's last-synced position answers *"is this value
  replicated yet?"* — the log-structure method of §4.3;
- the update timestamp drives the hot-key preemptive-sync heuristic of
  §4.4.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.kvstore.log import Log, LogEntry, TOMBSTONE
from repro.kvstore.operations import (
    ConditionalMultiWrite,
    ConditionalWrite,
    Delete,
    Increment,
    KEEP,
    MultiWrite,
    Operation,
    Read,
    TxnCompensate,
    TxnPrepare,
    Write,
)


@dataclasses.dataclass
class StoredObject:
    value: typing.Any
    version: int
    #: log position of the last mutation of this key
    position: int
    #: simulated time of the last mutation (hot-key heuristic, §4.4)
    updated_at: float


class KVStore:
    """Versioned object store + ordered log for one master."""

    def __init__(self) -> None:
        self.log = Log()
        self._objects: dict[str, StoredObject] = {}
        #: version counters survive deletes so ConditionalWrite can't be
        #: fooled by delete/re-create cycles
        self._versions: dict[str, int] = {}
        #: post-recovery versions start above this floor (anti-ABA: a
        #: lost unsynced write's version must never be reissued for a
        #: different value — RAMCloud's "safeVersion" idea)
        self._version_floor = 0
        #: highest version ever issued (drives the recovery floor)
        self.max_version_seen = 0
        #: txn_id → undo records of prepared-but-unresolved cross-shard
        #: transaction slices (§B.2).  Advisory bookkeeping only: the
        #: *client* carries the undo data in the prepare result, so a
        #: master that crashes and forgets this map loses nothing —
        #: compensation and resolution both tolerate a missing entry.
        self.pending_txns: dict[typing.Any, tuple] = {}
        #: key → (txn_id, prepared_version) while a prepare's write is
        #: the key's *current* value.  CAS-family operations from other
        #: transactions refuse to validate against such a version — a
        #: commit built on it would bake an aborted transaction's value
        #: into committed state when the compensation later skips the
        #: key as SUPERSEDED (the saga dirty-read anomaly).
        self._pending_keys: dict[str, tuple[typing.Any, int]] = {}

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, op: Operation, rpc_id: typing.Any = None,
                now: float = 0.0) -> tuple[typing.Any, LogEntry | None]:
        """Execute; returns (result, log entry or None for reads)."""
        if isinstance(op, Read):
            return self.read(op.key), None
        if isinstance(op, Write):
            effects = ((op.key, op.value, self._bump(op.key)),)
            result = self._versions[op.key]
        elif isinstance(op, Increment):
            current = self.read(op.key)
            if current is None:
                current = 0
            if not isinstance(current, int):
                raise TypeError(f"INCREMENT on non-integer value at {op.key!r}")
            new_value = current + op.delta
            effects = ((op.key, new_value, self._bump(op.key)),)
            result = new_value
        elif isinstance(op, ConditionalWrite):
            current_version = self.version(op.key)
            if self._pending_conflicts(((op.key, None, None),)):
                effects = ()
                result = ("MISMATCH", current_version)
            elif current_version != op.expected_version:
                # Rejected CAS: no effects, but still logged so the RIFL
                # completion record is durable.
                effects = ()
                result = ("MISMATCH", current_version)
            else:
                effects = ((op.key, op.value, self._bump(op.key)),)
                result = ("OK", self._versions[op.key])
        elif isinstance(op, Delete):
            if op.key in self._objects:
                effects = ((op.key, TOMBSTONE, self._bump(op.key)),)
            else:
                effects = ()
            result = True
        elif isinstance(op, MultiWrite):
            effects = tuple((key, value, self._bump(key))
                            for key, value in op.items)
            result = tuple(self._versions[key] for key, _ in op.items)
        elif isinstance(op, TxnPrepare):
            mismatches = tuple(
                (key, self.version(key))
                for key, _value, expected in op.items
                if self.version(key) != expected)
            mismatches += self._pending_conflicts(op.items, op.txn_id)
            if mismatches:
                effects = ()
                result = ("MISMATCH", mismatches)
            else:
                undo = []
                effect_list = []
                for key, value, _expected in op.items:
                    if value is KEEP:
                        continue
                    old_value = self.read(key)
                    old_version = self.version(key)
                    new_version = self._bump(key)
                    effect_list.append((key, value, new_version))
                    undo.append((key, old_value, old_version, new_version))
                effects = tuple(effect_list)
                undo = tuple(undo)
                self.pending_txns[op.txn_id] = undo
                for key, _old, _old_version, new_version in undo:
                    self._pending_keys[key] = (op.txn_id, new_version)
                result = ("OK", undo)
        elif isinstance(op, TxnCompensate):
            effect_list = []
            disposition = []
            for key, old_value, old_version, prepared in op.items:
                marker = self._pending_keys.get(key)
                if marker is not None and marker[0] == op.txn_id:
                    del self._pending_keys[key]
                if self.version(key) != prepared:
                    # A later committed write superseded the prepared
                    # value: leave it (compensation never clobbers).
                    disposition.append((key, "SUPERSEDED"))
                    continue
                restored = TOMBSTONE if old_version == 0 else old_value
                effect_list.append((key, restored, self._bump(key)))
                disposition.append((key, "UNDONE"))
            effects = tuple(effect_list)
            self.pending_txns.pop(op.txn_id, None)
            result = ("OK", tuple(disposition))
        elif isinstance(op, ConditionalMultiWrite):
            mismatches = tuple(
                (key, self.version(key))
                for key, _value, expected in op.items
                if self.version(key) != expected)
            mismatches += self._pending_conflicts(op.items)
            if mismatches:
                effects = ()
                result = ("MISMATCH", mismatches)
            else:
                effects = tuple((key, value, self._bump(key))
                                for key, value, _expected in op.items
                                if value is not KEEP)
                result = ("OK", tuple(self._versions[key]
                                      for key, _v, _e in op.items))
        else:
            raise TypeError(f"unknown operation type: {type(op).__name__}")
        entry = self.log.append(effects, rpc_id, result, timestamp=now)
        self._apply_effects(entry)
        return result, entry

    def _bump(self, key: str) -> int:
        new_version = max(self._versions.get(key, 0),
                          self._version_floor) + 1
        self._versions[key] = new_version
        self.max_version_seen = max(self.max_version_seen, new_version)
        return new_version

    def _pending_conflicts(self, items, txn_id: typing.Any = None) \
            -> tuple[tuple[str, int], ...]:
        """Keys in ``items`` whose current version was written by a
        prepared-but-unresolved *other* transaction.  A stale marker
        (the prepared value already superseded by a committed write) is
        not a conflict — validating against the newer version is safe,
        and this is what un-wedges a key whose ``txn_resolve`` was
        lost."""
        if not self._pending_keys:
            return ()
        conflicts = []
        for key, _value, _expected in items:
            marker = self._pending_keys.get(key)
            if marker is None:
                continue
            owner, prepared_version = marker
            if owner != txn_id and self.version(key) == prepared_version:
                conflicts.append((key, prepared_version))
        return tuple(conflicts)

    def resolve_txn(self, txn_id: typing.Any) -> bool:
        """Drop the pending bookkeeping for a committed cross-shard
        transaction (the client's fire-and-forget ``txn_resolve``).
        Tolerates an unknown id — a recovered master never rebuilds the
        map, and resolution is purely advisory."""
        undo = self.pending_txns.pop(txn_id, None)
        if undo is None:
            return False
        for key, _old, _old_version, _new_version in undo:
            marker = self._pending_keys.get(key)
            if marker is not None and marker[0] == txn_id:
                del self._pending_keys[key]
        return True

    def raise_version_floor(self, floor: int) -> None:
        """All future versions exceed ``floor``.

        Called by crash recovery: speculative writes lost in the crash
        consumed version numbers above what the backups recorded; a
        recovered master must not reissue those numbers for different
        values, or a conditional write prepared against the old value
        could commit against the new one (ABA)."""
        self._version_floor = max(self._version_floor, floor)

    def _apply_effects(self, entry: LogEntry) -> None:
        for key, value, version in entry.effects:
            if value is TOMBSTONE:
                self._objects.pop(key, None)
            else:
                self._objects[key] = StoredObject(
                    value=value, version=version, position=entry.index,
                    updated_at=entry.timestamp)
            self._versions[key] = max(self._versions.get(key, 0), version)
            self.max_version_seen = max(self.max_version_seen, version)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def read(self, key: str) -> typing.Any:
        obj = self._objects.get(key)
        return None if obj is None else obj.value

    def version(self, key: str) -> int:
        obj = self._objects.get(key)
        # Missing and deleted keys read as version 0; the version counter
        # itself survives deletes (see _bump) so re-created objects get a
        # strictly larger version than any the key has ever had.
        return 0 if obj is None else obj.version

    def last_position_of(self, key: str) -> int:
        """Log position of the key's last mutation (0 = never/synced-out)."""
        obj = self._objects.get(key)
        return 0 if obj is None else obj.position

    def last_update_time_of(self, key: str) -> float | None:
        obj = self._objects.get(key)
        return None if obj is None else obj.updated_at

    def is_unsynced(self, key: str, synced_position: int) -> bool:
        """§4.3 check: was this key mutated after the last backup sync?

        Deleted keys are conservatively considered synced (their
        tombstone entry is found via the log when syncing).
        """
        return self.last_position_of(key) > synced_position

    def key_count(self) -> int:
        return len(self._objects)

    def keys(self) -> typing.Iterable[str]:
        return self._objects.keys()

    def install(self, key: str, value: typing.Any, version: int,
                now: float = 0.0) -> LogEntry:
        """Install an object with an explicit version (data migration).

        The receiving master of a migration (§3.6) must preserve object
        versions from the source master so ConditionalWrite semantics
        survive the move; a plain Write would restart versions at 1.
        """
        self._versions[key] = max(self._versions.get(key, 0), version)
        entry = self.log.append(((key, value, version),), None, None,
                                timestamp=now)
        self._apply_effects(entry)
        return entry

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def rebuild_from_entries(self, entries: typing.Iterable[LogEntry]) -> int:
        """Restore state by replaying a backup's ordered log.

        Returns the highest log position restored.  The internal log is
        reconstructed too, so a recovered master continues appending at
        the right position.
        """
        if len(self.log) != 0 or self._objects:
            raise RuntimeError("rebuild_from_entries on a non-empty store")
        last = 0
        for entry in sorted(entries, key=lambda e: e.index):
            if entry.index != last + 1:
                raise ValueError(
                    f"log gap during rebuild: got {entry.index} after {last}")
            rebuilt = self.log.append(entry.effects, entry.rpc_id,
                                      entry.result, entry.timestamp)
            self._apply_effects(rebuilt)
            last = entry.index
        return last
