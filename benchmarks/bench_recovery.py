"""Partitioned crash recovery + WAL compaction benchmarks (ISSUE 7).

Two questions, both virtual-time (deterministic per seed):

1. **Recovery scaling** — RAMCloud's fast-recovery claim, reproduced
   on the CURP cluster: recovering a dead master's tablets onto *k*
   recovery masters in parallel (each backup scanning its stripe of
   the log once, replay + re-replication fanned across the cluster)
   should cut time-to-recover near-linearly in k.  Acceptance: ≥ 3x
   faster at 4 recovery masters than at 1, at the reference volume.
   The volume sweep shows the other axis: time grows with data volume
   at fixed k, with slope divided by k.

2. **Compaction pressure vs update-path tail latency** — the WAL
   cleaner competes with replication appends for each backup's single
   virtual disk.  In SYNC mode (the paper's "Original RAMCloud"
   baseline: reply after backup ack) cleaner passes land directly in
   the update tail; under CURP the 1-RTT witness path hides the same
   disk time — the paper's durability-for-free argument, now visible
   against a storage model that actually costs something.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.config import CurpConfig, ReplicationMode, StorageProfile
from repro.harness.builder import build_cluster
from repro.kvstore import Write, key_hash
from repro.metrics import format_table

#: reference storage model for the recovery series: replay dominates
#: (1 µs/entry) over striped reads (0.3 µs/entry across f=3 backups),
#: which is what makes partitioning pay (docs/STORAGE.md)
RECOVERY_STORAGE = dict(enabled=True, segment_size=64, append_time=0.5,
                        rotation_time=20.0, read_entry_time=0.3,
                        replay_entry_time=1.0)

#: reference data volume (log entries on the dead master).  Not scaled
#: by REPRO_BENCH_SCALE: the whole series is ~0.1 s of wall clock, and
#: the ≥3x acceptance needs the volume to dominate fixed overheads.
REFERENCE_VOLUME = 2_000


def _keys_for_master(cluster, master_id: str, count: int) -> list[str]:
    """Deterministic keys hashing into ``master_id``'s tablet."""
    ranges = cluster.master(master_id).owned_ranges
    keys = []
    i = 0
    while len(keys) < count:
        key = f"k{i}"
        i += 1
        if any(lo <= key_hash(key) < hi for lo, hi in ranges):
            keys.append(key)
    return keys


def _loaded_cluster(n_entries: int, seed: int = 7, n_masters: int = 5):
    """A cluster with ``n_entries`` synced writes on m0."""
    config = CurpConfig(f=3, mode=ReplicationMode.CURP, min_sync_batch=16,
                        idle_sync_delay=100.0, retry_backoff=20.0,
                        rpc_timeout=5_000.0,
                        storage=StorageProfile(**RECOVERY_STORAGE))
    cluster = build_cluster(config, n_masters=n_masters, seed=seed)
    client = cluster.new_client()
    keys = _keys_for_master(cluster, "m0", n_entries)

    def load():
        for j, key in enumerate(keys):
            yield from client.update(Write(key, j))

    cluster.run(client.host.spawn(load(), name="load"), timeout=1e9)
    cluster.settle(500.0)
    return cluster


def _recover(cluster, recovery_masters) -> tuple[float, dict]:
    """Crash m0, run partitioned recovery, return (virtual µs, stats).

    ``rpc_timeout`` is generous: a stripe read / absorb sync reply is
    gated by modeled disk time proportional to the volume, and a
    timeout shorter than that turns into spurious retries.
    """
    cluster.master("m0").host.crash()
    start = cluster.sim.now
    stats = cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master_partitioned(
            "m0", recovery_masters, rpc_timeout=1_000_000.0)),
        timeout=1e9)
    return cluster.sim.now - start, stats


def recovery_scaling(n_entries: int = REFERENCE_VOLUME,
                     counts=(1, 2, 4), seed: int = 7) -> dict:
    """Time-to-recover vs recovery-master count at fixed volume."""
    out: dict = {"volume": n_entries, "by_masters": {}}
    for k in counts:
        cluster = _loaded_cluster(n_entries, seed=seed)
        masters = [f"m{i + 1}" for i in range(k)]
        elapsed, stats = _recover(cluster, masters)
        out["by_masters"][k] = {
            "time_to_recover": elapsed,
            "partitions": stats["partitions"],
            "log_end": stats["log_end"],
        }
    times = out["by_masters"]
    out["speedup_4_vs_1"] = (times[counts[0]]["time_to_recover"]
                             / times[counts[-1]]["time_to_recover"])
    out["time_to_recover"] = times[counts[-1]]["time_to_recover"]
    return out


def recovery_vs_volume(volumes=(500, 1_000, 2_000), k: int = 4,
                       seed: int = 7) -> dict:
    """Time-to-recover vs dead-master data volume at fixed k."""
    masters = [f"m{i + 1}" for i in range(k)]
    points = {}
    for volume in volumes:
        cluster = _loaded_cluster(volume, seed=seed)
        elapsed, _stats = _recover(cluster, masters)
        points[volume] = elapsed
    return {"recovery_masters": k, "by_volume": points}


# ---------------------------------------------------------------------------
# compaction pressure vs update tail latency
# ---------------------------------------------------------------------------

#: aggressive cleaning so several passes land inside a short run:
#: small segments, frequent wake-ups, hot overwrites → low live ratios
COMPACTION_STORAGE = dict(enabled=True, segment_size=32, append_time=0.5,
                          rotation_time=20.0, read_entry_time=0.3,
                          compaction_live_ratio=0.6,
                          compaction_write_time=0.5)


def _update_latencies(mode: ReplicationMode, compaction_interval: float,
                      n_ops: int, seed: int = 3) -> dict:
    """Closed-loop hot-key overwrites; per-op latency percentiles."""
    storage = StorageProfile(compaction_interval=compaction_interval,
                             **COMPACTION_STORAGE)
    f = 3
    config = CurpConfig(f=f, mode=mode, min_sync_batch=8,
                        idle_sync_delay=100.0, rpc_timeout=5_000.0,
                        storage=storage)
    cluster = build_cluster(config, seed=seed)
    client = cluster.new_client()
    latencies: list[float] = []

    def load():
        for i in range(n_ops):
            start = cluster.sim.now
            yield from client.update(Write(f"h{i % 20}", i))
            latencies.append(cluster.sim.now - start)

    cluster.run(client.host.spawn(load(), name="load"), timeout=1e9)
    cluster.settle(10_000.0)
    latencies.sort()
    backup = next(iter(cluster.coordinator.backup_servers.values()))
    return {
        "p50": latencies[len(latencies) // 2],
        "p99": latencies[int(len(latencies) * 0.99)],
        "max": latencies[-1],
        "segments_cleaned": backup.stats.segments_cleaned,
        "payloads_reclaimed": backup.stats.payloads_reclaimed,
    }


def compaction_tail(n_ops: int = 600, interval: float = 2_000.0) -> dict:
    """SYNC-mode tail with the cleaner on vs off, CURP for contrast."""
    return {
        "sync_off": _update_latencies(ReplicationMode.SYNC, 0.0, n_ops),
        "sync_on": _update_latencies(ReplicationMode.SYNC, interval, n_ops),
        "curp_on": _update_latencies(ReplicationMode.CURP, interval, n_ops),
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (CI perf smoke)
# ---------------------------------------------------------------------------

def test_recovery_scaling(benchmark, scale):
    series = run_once(benchmark, recovery_scaling)
    rows = [[k, round(point["time_to_recover"], 1), point["partitions"]]
            for k, point in series["by_masters"].items()]
    print()
    print(format_table(
        ["recovery masters", "time to recover (µs)", "partitions"], rows,
        title=f"Partitioned recovery @ {series['volume']} entries — "
              f"{series['speedup_4_vs_1']:.2f}x at 4 masters"))
    # ISSUE 7 acceptance: near-linear scaling in recovery-master count.
    assert series["speedup_4_vs_1"] >= 3.0, \
        f"4-master recovery only {series['speedup_4_vs_1']:.2f}x faster"
    benchmark.extra_info["speedup_4_vs_1"] = series["speedup_4_vs_1"]
    benchmark.extra_info["time_to_recover"] = series["time_to_recover"]


def test_recovery_vs_volume(benchmark, scale):
    series = run_once(benchmark, recovery_vs_volume)
    points = series["by_volume"]
    print()
    print(format_table(
        ["entries", "time to recover (µs)"],
        [[volume, round(elapsed, 1)] for volume, elapsed in points.items()],
        title=f"Recovery time vs volume @ {series['recovery_masters']} "
              f"recovery masters"))
    volumes = sorted(points)
    assert points[volumes[-1]] > points[volumes[0]], \
        "recovery time must grow with data volume"


def test_compaction_tail_latency(benchmark, scale):
    series = run_once(benchmark, compaction_tail)
    rows = [[label, round(point["p50"], 1), round(point["p99"], 1),
             round(point["max"], 1), point["segments_cleaned"],
             point["payloads_reclaimed"]]
            for label, point in series.items()]
    print()
    print(format_table(
        ["mode", "p50 µs", "p99 µs", "max µs", "segs cleaned",
         "payloads reclaimed"],
        rows, title="Hot-key overwrites vs WAL cleaner"))
    # The cleaner must actually run, and CURP's witness path must hide
    # the disk time the SYNC baseline exposes in its tail.
    assert series["sync_on"]["segments_cleaned"] > 0
    assert series["sync_on"]["max"] > series["sync_off"]["max"], \
        "cleaner passes should collide with SYNC-mode appends"
    assert series["curp_on"]["p99"] <= series["sync_on"]["p99"]
