"""The Redis command table.

Every command declares whether it writes and which key it touches —
exactly the property CURP needs (§5.4: "Since each data structure is
assigned to a specific key, CURP can execute many update operations on
different keys without blocking on syncs").  Witnesses hash the
top-level key; all write commands on the same key conflict, all on
different keys commute.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.redislike.datastructures import RedisStore


class CommandError(Exception):
    """Bad arity / unknown command / type error surfaced to the client."""


@dataclasses.dataclass(frozen=True)
class Command:
    """One parsed client command: name + arguments."""

    name: str
    args: tuple

    @property
    def key(self) -> str:
        if not self.args:
            raise CommandError(f"{self.name} requires a key")
        return self.args[0]

    @property
    def is_write(self) -> bool:
        return REGISTRY[self.name].is_write


@dataclasses.dataclass(frozen=True)
class CommandSpec:
    name: str
    is_write: bool
    arity: tuple[int, int | None]  # (min args, max args or None)
    handler: typing.Callable[[RedisStore, tuple], typing.Any]


def _spec(name, is_write, arity, handler):
    return name, CommandSpec(name=name, is_write=is_write, arity=arity,
                             handler=handler)


REGISTRY: dict[str, CommandSpec] = dict([
    _spec("SET", True, (2, 2), lambda s, a: (s.set_string(a[0], a[1]), "OK")[1]),
    _spec("GET", False, (1, 1), lambda s, a: s.get_string(a[0])),
    _spec("DEL", True, (1, 1), lambda s, a: int(s.delete(a[0]))),
    _spec("EXISTS", False, (1, 1), lambda s, a: int(s.exists(a[0]))),
    _spec("TYPE", False, (1, 1), lambda s, a: s.type_of(a[0])),
    _spec("INCR", True, (1, 1), lambda s, a: s.incr(a[0])),
    _spec("INCRBY", True, (2, 2), lambda s, a: s.incr(a[0], int(a[1]))),
    _spec("HMSET", True, (2, 2), lambda s, a: (s.hset(a[0], a[1]), "OK")[1]),
    _spec("HSET", True, (3, 3),
          lambda s, a: s.hset(a[0], {a[1]: a[2]})),
    _spec("HGET", False, (2, 2), lambda s, a: s.hget(a[0], a[1])),
    _spec("HGETALL", False, (1, 1), lambda s, a: s.hgetall(a[0])),
    _spec("LPUSH", True, (2, None), lambda s, a: s.lpush(a[0], *a[1:])),
    _spec("RPUSH", True, (2, None), lambda s, a: s.rpush(a[0], *a[1:])),
    _spec("LRANGE", False, (3, 3),
          lambda s, a: s.lrange(a[0], int(a[1]), int(a[2]))),
    _spec("LLEN", False, (1, 1), lambda s, a: s.llen(a[0])),
    _spec("SADD", True, (2, None), lambda s, a: s.sadd(a[0], *a[1:])),
    _spec("SMEMBERS", False, (1, 1), lambda s, a: s.smembers(a[0])),
    _spec("SISMEMBER", False, (2, 2),
          lambda s, a: int(s.sismember(a[0], a[1]))),
])


def execute(store: RedisStore, command: Command) -> typing.Any:
    """Validate and run one command against the store."""
    spec = REGISTRY.get(command.name)
    if spec is None:
        raise CommandError(f"unknown command {command.name!r}")
    low, high = spec.arity
    if len(command.args) < low or (high is not None
                                   and len(command.args) > high):
        raise CommandError(
            f"wrong number of arguments for {command.name}: "
            f"{len(command.args)}")
    return spec.handler(store, command.args)
