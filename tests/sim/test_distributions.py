"""Unit and property tests for duration distributions."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.distributions import Exponential, Fixed, LogNormal, Shifted, Uniform


def test_fixed_always_same():
    dist = Fixed(3.5)
    rng = random.Random(1)
    assert all(dist.sample(rng) == 3.5 for _ in range(10))
    assert dist.mean() == 3.5


def test_fixed_rejects_negative():
    with pytest.raises(ValueError):
        Fixed(-1.0)


def test_uniform_bounds():
    dist = Uniform(1.0, 2.0)
    rng = random.Random(2)
    samples = [dist.sample(rng) for _ in range(1000)]
    assert all(1.0 <= s <= 2.0 for s in samples)
    assert abs(sum(samples) / len(samples) - 1.5) < 0.05


def test_uniform_validation():
    with pytest.raises(ValueError):
        Uniform(2.0, 1.0)
    with pytest.raises(ValueError):
        Uniform(-1.0, 1.0)


def test_exponential_mean():
    dist = Exponential(5.0)
    rng = random.Random(3)
    samples = [dist.sample(rng) for _ in range(20000)]
    assert abs(sum(samples) / len(samples) - 5.0) < 0.2


def test_exponential_validation():
    with pytest.raises(ValueError):
        Exponential(0.0)


def test_lognormal_median_calibration():
    dist = LogNormal(median=7.0, sigma=0.3)
    rng = random.Random(4)
    samples = sorted(dist.sample(rng) for _ in range(20001))
    median = samples[len(samples) // 2]
    assert abs(median - 7.0) < 0.3


def test_lognormal_sigma_zero_degenerates():
    dist = LogNormal(median=4.0, sigma=0.0)
    assert dist.sample(random.Random(0)) == 4.0


def test_lognormal_heavier_tail_with_bigger_sigma():
    rng_a, rng_b = random.Random(5), random.Random(5)
    tight = LogNormal(median=10.0, sigma=0.1)
    heavy = LogNormal(median=10.0, sigma=1.0)
    def p99(d, rng):
        return sorted(d.sample(rng) for _ in range(5000))[4949]
    assert p99(heavy, rng_b) > p99(tight, rng_a)


def test_shifted_adds_floor():
    dist = Shifted(10.0, Fixed(2.0))
    assert dist.sample(random.Random(0)) == 12.0
    assert dist.mean() == 12.0


@given(st.floats(min_value=0.01, max_value=1e6),
       st.floats(min_value=0.0, max_value=3.0))
@settings(max_examples=50)
def test_lognormal_samples_positive(median, sigma):
    dist = LogNormal(median=median, sigma=sigma)
    rng = random.Random(0)
    assert all(dist.sample(rng) > 0 for _ in range(20))


@given(st.floats(min_value=0.0, max_value=1e3))
@settings(max_examples=50)
def test_fixed_sample_equals_value(value):
    assert Fixed(value).sample(random.Random(0)) == value
