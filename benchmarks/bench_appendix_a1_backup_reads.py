"""§A.1: consistent reads from backups.

A reader colocated with a backup + witness can serve strongly
consistent reads without touching the master: read the backup, probe
the witness for commutativity.  We measure the local-read fast path
against master reads, and verify the conflict fallback preserves
freshness under a concurrent writer.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.baselines import curp_config
from repro.harness import RAMCLOUD_PROFILE, build_cluster
from repro.kvstore import Write
from repro.metrics import LatencyRecorder, format_table


def experiment(n_reads: int, seed: int = 13):
    config = curp_config(3, min_sync_batch=10, idle_sync_delay=100.0)
    cluster = build_cluster(config, profile=RAMCLOUD_PROFILE, seed=seed)
    writer = cluster.new_client(collect_outcomes=False)
    reader = cluster.new_client(collect_outcomes=False)
    backup = cluster.backup_hosts["m0"][0]
    witness = cluster.witness_hosts["m0"][0]
    key_space = 200

    # Background writer keeps a fraction of keys unsynced.
    def write_loop():
        rng = cluster.sim.rng
        while True:
            yield from writer.update(
                Write(f"k{rng.randrange(key_space)}", "v" * 100))
            yield cluster.sim.timeout(5.0)
    writer.host.spawn(write_loop(), name="writer")

    nearby = LatencyRecorder()
    master_reads = LatencyRecorder()
    stale_check = {"mismatches": 0}

    def read_loop():
        rng = cluster.sim.rng
        for _ in range(n_reads):
            key = f"k{rng.randrange(key_space)}"
            started = cluster.sim.now
            value_nearby = yield from reader.read_nearby(key, backup, witness)
            nearby.record(cluster.sim.now - started)
            started = cluster.sim.now
            value_master = yield from reader.read(key)
            master_reads.record(cluster.sim.now - started)
            # The nearby read was issued first; the master value may be
            # newer but never older (writer only writes fresh values).
            if value_nearby is not None and value_master is None:
                stale_check["mismatches"] += 1
    cluster.run(cluster.sim.process(read_loop()), timeout=1e9)
    return nearby, master_reads, stale_check


def test_a1_consistent_backup_reads(benchmark, scale):
    n_reads = int(400 * scale)
    nearby, master_reads, stale = run_once(
        benchmark, lambda: experiment(n_reads))
    print()
    print(format_table(
        ["read path", "median(us)", "p90", "p99"],
        [["backup + witness probe", nearby.median, nearby.percentile(90),
          nearby.p99],
         ["master", master_reads.median, master_reads.percentile(90),
          master_reads.p99]],
        title="§A.1 — consistent reads from backups"))
    print(f"  stale observations: {stale['mismatches']} (must be 0)")
    assert stale["mismatches"] == 0
    # The local path's median is competitive with master reads in a
    # uniform-latency datacenter, and the p99 covers the fallback hops.
    # (In the geo example the gap is 200x; here links are uniform so
    # the win is the master's dispatch load, not wire time.)
    assert nearby.median <= master_reads.median * 1.5
    benchmark.extra_info["nearby_median"] = nearby.median
    benchmark.extra_info["master_median"] = master_reads.median
