"""Tests for the Redis-like server: durability modes, event-loop fsync
batching (§C.2), CURP integration, crash recovery (§5.4)."""

from __future__ import annotations

import pytest

from repro.harness.redis import build_redis_cluster
from repro.redislike.server import DurabilityMode
from repro.sim.distributions import Fixed


def build(mode, n_witnesses=1, fsync=Fixed(70.0), **kwargs):
    return build_redis_cluster(mode, n_witnesses=n_witnesses,
                               fsync_duration=fsync, **kwargs)


def test_nondurable_fast_but_volatile():
    cluster = build(DurabilityMode.NONDURABLE)
    client = cluster.new_client()
    outcome = cluster.run(client.set("k", "v"))
    assert outcome.result == "OK"
    assert outcome.latency == pytest.approx(4.0)  # 1 RTT, no fsync
    assert cluster.server.device.fsyncs == 0
    # Crash: the acknowledged write is gone (stock Redis behaviour).
    cluster.server.host.crash()
    cluster.server.host.restart()
    cluster.run(cluster.sim.process(cluster.server.recover()))
    assert cluster.server.store.get_string("k") is None


def test_durable_waits_for_fsync():
    cluster = build(DurabilityMode.DURABLE)
    client = cluster.new_client()
    outcome = cluster.run(client.set("k", "v"))
    assert outcome.result == "OK"
    assert outcome.latency == pytest.approx(4.0 + 70.0)  # RTT + fsync
    assert cluster.server.device.fsyncs == 1
    # Crash: the write survives in the AOF.
    cluster.server.host.crash()
    cluster.server.host.restart()
    cluster.run(cluster.sim.process(cluster.server.recover()))
    assert cluster.server.store.get_string("k") == "v"


def test_durable_event_loop_batches_fsyncs():
    """§C.2: requests queued during one fsync share the next one."""
    cluster = build(DurabilityMode.DURABLE)
    clients = [cluster.new_client() for _ in range(8)]
    processes = [c.host.spawn(c.set(f"k{i}", "v"), name="op")
                 for i, c in enumerate(clients)]
    cluster.run(cluster.sim.all_of(processes))
    # Far fewer fsyncs than writes.
    assert cluster.server.stats.writes == 8
    assert cluster.server.device.fsyncs <= 4


def test_curp_one_rtt_and_background_fsync():
    cluster = build(DurabilityMode.CURP, n_witnesses=1)
    client = cluster.new_client()
    outcome = cluster.run(client.set("k", "v"))
    assert outcome.fast_path
    assert outcome.latency == pytest.approx(4.0)  # fsync hidden
    cluster.settle(2_000.0)
    assert cluster.server.aof.durable_seq == 1  # background fsync ran
    # And the witness got garbage collected.
    assert cluster.witness_servers[0].cache.occupied_slots() == 0


def test_curp_conflict_waits_for_durability():
    """Second write to the same un-fsynced key must wait (synced tag)."""
    cluster = build(DurabilityMode.CURP, n_witnesses=1,
                    curp_fsync_batch=100)
    client = cluster.new_client()
    first = cluster.run(client.set("k", "v1"))
    assert first.fast_path
    second = cluster.run(client.set("k", "v2"))
    assert not second.fast_path  # synced by server
    assert second.latency > 60.0  # paid the fsync
    assert cluster.server.stats.conflict_waits >= 1


def test_curp_read_of_unsynced_key_waits():
    cluster = build(DurabilityMode.CURP, n_witnesses=1,
                    curp_fsync_batch=100)
    client = cluster.new_client()
    cluster.run(client.set("k", "v"))
    outcome = cluster.run(client.get("k"))
    assert outcome.result == "v"
    assert outcome.latency > 60.0  # waited for durability
    # Now it is durable; the next read is 1 RTT.
    outcome2 = cluster.run(client.get("k"))
    assert outcome2.latency == pytest.approx(4.0)


def test_curp_witness_rejection_falls_back_to_sync():
    cluster = build(DurabilityMode.CURP, n_witnesses=1,
                    curp_fsync_batch=100)
    client = cluster.new_client()
    # Poison the witness with a record for the same key.
    from repro.kvstore.hashing import key_hash
    from repro.rifl import RpcId
    cluster.witness_servers[0].cache.record([key_hash("k")], RpcId(99, 1),
                                            "poison")
    outcome = cluster.run(client.set("k", "v"))
    assert outcome.sync_rpc_needed
    assert not outcome.fast_path
    assert cluster.server.aof.durable_seq >= 1  # sync made it durable


def test_curp_crash_recovery_replays_witnesses():
    """The §5.4 headline: acknowledged-but-not-fsynced SETs survive a
    crash via witness replay."""
    cluster = build(DurabilityMode.CURP, n_witnesses=1,
                    curp_fsync_batch=100)
    client = cluster.new_client()
    for i in range(5):
        outcome = cluster.run(client.set(f"k{i}", f"v{i}"))
        assert outcome.fast_path
    assert cluster.server.aof.durable_seq == 0  # nothing fsynced yet
    cluster.server.host.crash()
    cluster.server.host.restart()
    replayed = cluster.run(cluster.sim.process(cluster.server.recover()),
                           timeout=1_000_000.0)
    assert replayed == 5
    for i in range(5):
        assert cluster.server.store.get_string(f"k{i}") == f"v{i}"
    assert cluster.server.aof.durable_seq >= 5  # replay was fsynced


def test_curp_recovery_mixed_durable_and_witnessed():
    cluster = build(DurabilityMode.CURP, n_witnesses=1, curp_fsync_batch=3)
    client = cluster.new_client()
    for i in range(3):  # batch of 3 → fsynced
        cluster.run(client.set(f"d{i}", "durable"))
    cluster.settle(2_000.0)
    cluster.run(client.incr("counter"))  # unsynced straggler
    cluster.server.host.crash()
    cluster.server.host.restart()
    cluster.run(cluster.sim.process(cluster.server.recover()),
                timeout=1_000_000.0)
    for i in range(3):
        assert cluster.server.store.get_string(f"d{i}") == "durable"
    # INCR replayed exactly once.
    assert cluster.server.store.get_string("counter") == "1"


def test_curp_increment_not_double_applied_on_recovery():
    """INCR was fsynced AND still on the witness (gc hadn't run):
    replay must be RIFL-filtered."""
    cluster = build(DurabilityMode.CURP, n_witnesses=1,
                    curp_fsync_batch=100)
    client = cluster.new_client()
    cluster.run(client.incr("c"))
    # Force durability via explicit sync (witness still holds the op
    # because gc happens after fsync; crash before gc completes).
    def sync_then_crash():
        yield cluster.server.aof.request_durable(1)
        cluster.server.host.crash()
    cluster.run(cluster.sim.process(sync_then_crash()), timeout=10_000.0)
    cluster.server.host.restart()
    cluster.run(cluster.sim.process(cluster.server.recover()),
                timeout=1_000_000.0)
    assert cluster.server.store.get_string("c") == "1"  # not 2!


def test_different_keys_commute_many_unsynced():
    """§5.5: updates on different keys pile up without any fsync."""
    cluster = build(DurabilityMode.CURP, n_witnesses=2,
                    curp_fsync_batch=1000)
    client = cluster.new_client()
    for i in range(20):
        outcome = cluster.run(client.set(f"key{i}", "v"))
        assert outcome.fast_path
    assert cluster.server.device.fsyncs == 0


def test_hmset_and_incr_through_curp():
    """Figure 10's three command types all take the fast path."""
    cluster = build(DurabilityMode.CURP, n_witnesses=1)
    client = cluster.new_client()
    assert cluster.run(client.set("s", "v")).fast_path
    assert cluster.run(client.hmset("h", {"f": "v"})).fast_path
    assert cluster.run(client.incr("c")).fast_path
    assert cluster.run(client.incr("c2")).result == 1


def test_read_commands_never_touch_witnesses():
    cluster = build(DurabilityMode.CURP, n_witnesses=1)
    client = cluster.new_client()
    cluster.run(client.set("k", "v"))
    cluster.settle(2_000.0)
    records_before = cluster.witness_servers[0].records_processed
    cluster.run(client.get("k"))
    assert cluster.witness_servers[0].records_processed == records_before
