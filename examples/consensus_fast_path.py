#!/usr/bin/env python
"""CURP on a consensus protocol (§A.2): 1-RTT Raft updates.

Five Raft replicas (f=2) with colocated witness components.  A client
completes an update in one round trip when the leader executes it
speculatively and a superquorum (f + ⌈f/2⌉ + 1 = 4) of witnesses
accept.  The demo then kills the leader and shows the new leader's
witness replay preserving a completed-but-uncommitted update.

Run:  python examples/consensus_fast_path.py
"""

from repro.consensus import RaftConfig, RaftCurpClient, RaftNode, superquorum_size
from repro.kvstore import Write
from repro.net import Network
from repro.net.latency import LatencyModel
from repro.sim import Fixed, Simulator


def main() -> None:
    sim = Simulator(seed=5)
    network = Network(sim, latency=LatencyModel(Fixed(50.0)))  # 100 us RTT
    names = [f"r{i}" for i in range(5)]
    nodes = [RaftNode(network.add_host(name), name, names,
                      config=RaftConfig(curp=True))
             for name in names]
    print(f"5 replicas (f=2): fast path needs "
          f"{superquorum_size(2)} witness accepts")

    # Let an election happen.
    while not any(n.role == "leader" and n.serving for n in nodes):
        sim.run(until=sim.now + 1_000.0)
    leader = next(n for n in nodes if n.role == "leader")
    print(f"leader elected: {leader.name} (term {leader.current_term})")

    client = RaftCurpClient(network.add_host("client"), names)
    sim.run(sim.process(client.find_leader()))

    # --- the 1-RTT fast path -------------------------------------------
    started = sim.now
    result, fast = sim.run(sim.process(client.update(Write("x", 1))))
    print(f"\nupdate x=1: {sim.now - started:.0f} us "
          f"(fast={fast})  <- ~1 RTT; commit happens in the background")

    started = sim.now
    result, fast = sim.run(sim.process(client.update(Write("x", 2))))
    print(f"update x=2: {sim.now - started:.0f} us (fast={fast})  "
          "<- conflicts with uncommitted x=1: waited for commit (2 RTT)")

    # --- leader crash: the witness replay saves completed updates -------
    result, fast = sim.run(sim.process(client.update(Write("precious", 42))))
    print(f"\nupdate precious=42 completed speculatively (fast={fast})")
    print(f"killing leader {leader.name} immediately...")
    leader.host.crash()
    while not any(n.role == "leader" and n.serving and n.host.alive
                  for n in nodes):
        sim.run(until=sim.now + 1_000.0)
    new_leader = next(n for n in nodes
                      if n.role == "leader" and n.host.alive)
    print(f"new leader: {new_leader.name} (term {new_leader.current_term}, "
          f"replayed {new_leader.stats['replayed']} witnessed requests)")

    value = sim.run(sim.process(client.read("precious")))
    print(f"read precious = {value}  <- survived via superquorum witness "
          "replay")
    assert value == 42


if __name__ == "__main__":
    main()
