"""Targeted tests for the ping-based master failure detector.

The detector's contract: suspicion (consecutive missed pings)
accumulates per master, one successful ping clears it (so a flapping
host never triggers recovery), and only ``miss_threshold`` consecutive
misses pop a standby and drive
:meth:`~repro.cluster.coordinator.Coordinator.recover_master`.
"""

from __future__ import annotations

from repro.cluster import FailureDetector
from repro.core.config import CurpConfig, ReplicationMode
from repro.harness import build_cluster
from repro.kvstore import Write


def detector_cluster(**kwargs):
    defaults = dict(f=1, mode=ReplicationMode.CURP, min_sync_batch=50,
                    idle_sync_delay=200.0, retry_backoff=10.0,
                    rpc_timeout=100.0)
    defaults.update(kwargs)
    return build_cluster(CurpConfig(**defaults))


def make_detector(cluster, standbys, **kwargs):
    defaults = dict(interval=500.0, miss_threshold=3, ping_timeout=100.0)
    defaults.update(kwargs)
    return FailureDetector(cluster.coordinator, standbys, **defaults)


def test_suspicion_accumulates_only_after_crash():
    """Misses count up one per interval once the master stops answering
    — and stay at zero while it is healthy."""
    cluster = detector_cluster()
    detector = make_detector(cluster, [])
    detector.start()
    cluster.sim.run(until=cluster.sim.now + 2_000.0)
    assert detector._misses.get("m0", 0) == 0

    cluster.master().host.crash()
    # One interval + one ping timeout: exactly one miss, no recovery.
    cluster.sim.run(until=cluster.sim.now + 700.0)
    assert detector._misses["m0"] == 1
    assert detector.recoveries_started == 0
    # A second interval: suspicion keeps accumulating.
    cluster.sim.run(until=cluster.sim.now + 600.0)
    assert detector._misses["m0"] == 2
    assert detector.recoveries_started == 0
    detector.stop()


def test_flapping_host_never_reaches_threshold():
    """A host that bounces (crash, then back before ``miss_threshold``
    intervals) has its suspicion cleared by the first successful ping —
    no standby is consumed."""
    cluster = detector_cluster()
    standby = cluster.add_host("flap-standby", role="master")
    detector = make_detector(cluster, [standby])
    detector.start()
    for _ in range(3):  # three flaps, each worth 1-2 misses
        cluster.master().host.crash()
        cluster.sim.run(until=cluster.sim.now + 700.0)
        assert detector._misses["m0"] >= 1
        cluster.master().host.restart()
        cluster.sim.run(until=cluster.sim.now + 1_200.0)
        # Recovery never triggered; suspicion reset by the good ping.
        assert detector._misses["m0"] == 0
    detector.stop()
    assert detector.recoveries_started == 0
    assert detector.standby_hosts == [standby]


def test_threshold_crossing_starts_recovery_and_clears_suspicion():
    """Sustained misses reach the threshold: one recovery starts, the
    standby is consumed, and suspicion resets so the recovered master
    is not immediately re-suspected."""
    cluster = detector_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    standby = cluster.add_host("fd-standby", role="master")
    detector = make_detector(cluster, [standby])
    detector.start()
    cluster.master().host.crash()
    cluster.sim.run(until=cluster.sim.now + 60_000.0)
    detector.stop()
    assert detector.recoveries_started == 1
    assert detector.standby_hosts == []
    # Recovery cleared the suspicion counter...
    assert detector._misses["m0"] == 0
    # ...and the recovered master answers pings and serves reads.
    recovered = cluster.coordinator.masters["m0"].master
    assert recovered.active
    assert recovered.store.read("a") == 1


def test_recovered_master_is_not_resuspected():
    """After recovery the loop keeps pinging the *new* host; with the
    new master healthy, no further misses or recoveries accumulate."""
    cluster = detector_cluster()
    standby = cluster.add_host("fd-standby", role="master")
    spare = cluster.add_host("fd-spare", role="master")
    detector = make_detector(cluster, [standby, spare])
    detector.start()
    cluster.master().host.crash()
    cluster.sim.run(until=cluster.sim.now + 60_000.0)
    assert detector.recoveries_started == 1
    # Long healthy stretch: suspicion stays at zero, spare stays unused.
    cluster.sim.run(until=cluster.sim.now + 20_000.0)
    detector.stop()
    assert detector._misses["m0"] == 0
    assert detector.recoveries_started == 1
    assert detector.standby_hosts == [spare]


def test_no_standby_means_no_recovery_but_loop_continues():
    """With the standby pool empty the detector resets suspicion at the
    threshold and keeps watching instead of crashing the loop."""
    cluster = detector_cluster()
    detector = make_detector(cluster, [])
    detector.start()
    cluster.master().host.crash()
    cluster.sim.run(until=cluster.sim.now + 10_000.0)
    assert detector.recoveries_started == 0
    # The loop is still alive: suspicion keeps cycling below threshold.
    assert 0 <= detector._misses["m0"] < detector.miss_threshold
    detector.stop()


def test_stop_halts_pinging():
    cluster = detector_cluster()
    detector = make_detector(cluster, [])
    detector.start()
    cluster.sim.run(until=cluster.sim.now + 2_000.0)
    detector.stop()
    cluster.master().host.crash()
    cluster.sim.run(until=cluster.sim.now + 10_000.0)
    # No pings after stop(): the crash is never even noticed.
    assert detector._misses.get("m0", 0) == 0
    assert detector.recoveries_started == 0
