"""Per-figure experiment drivers (RAMCloud testbed, §5.1–5.3, §C.1).

Each function reproduces the data series behind one figure of the
paper.  The benchmarks call these with CI-scale parameters and print
the series; EXPERIMENTS.md records paper-vs-measured at full scale.
"""

from __future__ import annotations

import random
import typing

from repro.baselines import (
    async_replication_config,
    curp_config,
    primary_backup_config,
    unreplicated_config,
)
from repro.core.config import CurpConfig
from repro.core.witness_cache import WitnessCache
from repro.harness.builder import build_cluster
from repro.harness.profiles import ClusterProfile, RAMCLOUD_PROFILE
from repro.kvstore import Write
from repro.metrics import LatencyRecorder
from repro.rifl import RpcId
from repro.workload import run_closed_loop
from repro.workload.ycsb import YCSB_A, YCSB_B, YcsbWorkload, scaled


#: the five systems of Figure 5 (label → config factory)
FIG5_SYSTEMS: dict[str, typing.Callable[[], CurpConfig]] = {
    "Original RAMCloud (f=3)": lambda: primary_backup_config(3),
    "CURP (f=3)": lambda: curp_config(3),
    "CURP (f=2)": lambda: curp_config(2),
    "CURP (f=1)": lambda: curp_config(1),
    "Unreplicated": lambda: unreplicated_config(),
}

#: the six systems of Figure 6
FIG6_SYSTEMS: dict[str, typing.Callable[[], CurpConfig]] = {
    "Unreplicated": lambda: unreplicated_config(),
    "Async (f=3)": lambda: async_replication_config(3),
    "CURP (f=1)": lambda: curp_config(1),
    "CURP (f=2)": lambda: curp_config(2),
    "CURP (f=3)": lambda: curp_config(3),
    "Original RAMCloud (f=3)": lambda: primary_backup_config(3),
}


def sequential_write_latency(config: CurpConfig,
                             profile: ClusterProfile = RAMCLOUD_PROFILE,
                             n_ops: int = 1000, key_space: int = 1_000_000,
                             value_size: int = 100,
                             seed: int = 1) -> LatencyRecorder:
    """Figure 5 inner loop: one client, sequential 100 B random writes."""
    cluster = build_cluster(config, profile=profile, seed=seed)
    client = cluster.new_client(collect_outcomes=False)
    recorder = LatencyRecorder()
    value = "v" * value_size

    def script():
        rng = cluster.sim.rng
        for _ in range(n_ops):
            key = f"key{rng.randrange(key_space)}"
            started = cluster.sim.now
            yield from client.update(Write(key, value))
            recorder.record(cluster.sim.now - started)
    cluster.run(cluster.sim.process(script()), timeout=1e9)
    return recorder


def fig5_write_latency(n_ops: int = 1000,
                       seed: int = 1) -> dict[str, LatencyRecorder]:
    """Figure 5: CCDF of write latency for the five systems."""
    return {label: sequential_write_latency(factory(), n_ops=n_ops, seed=seed)
            for label, factory in FIG5_SYSTEMS.items()}


def fig6_write_throughput(client_counts: typing.Sequence[int] = (1, 2, 4, 8, 16, 24, 30),
                          duration: float = 3_000.0, warmup: float = 800.0,
                          seed: int = 2) -> dict[str, list[tuple[int, float]]]:
    """Figure 6: one server's write throughput vs client count."""
    workload = YcsbWorkload(name="writes", read_fraction=0.0,
                            item_count=1_000_000, value_size=100,
                            distribution="uniform")
    series: dict[str, list[tuple[int, float]]] = {}
    for label, factory in FIG6_SYSTEMS.items():
        points = []
        for n_clients in client_counts:
            cluster = build_cluster(factory(), profile=RAMCLOUD_PROFILE,
                                    seed=seed)
            result = run_closed_loop(cluster, workload, n_clients=n_clients,
                                     duration=duration, warmup=warmup)
            points.append((n_clients, result["throughput"]))
        series[label] = points
    return series


def fig7_ycsb_latency(workload_name: str = "YCSB-A", n_ops: int = 1500,
                      item_count: int = 100_000,
                      seed: int = 3) -> dict[str, LatencyRecorder]:
    """Figure 7: write-latency CCDF under the skewed YCSB mixes.

    A single client issues the mix back to back (as the paper does);
    only write latencies are recorded.  Smaller ``item_count`` scales
    the paper's 1M objects down for CI speed — skew (θ=0.99) is
    preserved, which raises conflict probability slightly, i.e. the
    scaled run is conservative for CURP.
    """
    base = YCSB_A if workload_name == "YCSB-A" else YCSB_B
    workload = scaled(base, item_count)
    systems = {
        "Original RAMCloud (f=3)": primary_backup_config(3),
        "CURP (f=3)": curp_config(3),
        "CURP (f=2)": curp_config(2),
        "CURP (f=1)": curp_config(1),
        "Async (f=3)": async_replication_config(3),
        "Unreplicated": unreplicated_config(),
    }
    out: dict[str, LatencyRecorder] = {}
    for label, config in systems.items():
        cluster = build_cluster(config, profile=RAMCLOUD_PROFILE, seed=seed)
        client = cluster.new_client(collect_outcomes=False)
        recorder = LatencyRecorder()
        stream = workload.generator()

        def script(client=client, recorder=recorder, stream=stream):
            rng = cluster.sim.rng
            writes = 0
            while writes < n_ops:
                op = stream.next_op(rng)
                if op.is_update:
                    started = cluster.sim.now
                    yield from client.update(op)
                    recorder.record(cluster.sim.now - started)
                    writes += 1
                else:
                    yield from client.read(op.key)
        cluster.run(cluster.sim.process(script()), timeout=1e9)
        out[label] = recorder
    return out


def fig11_witness_collisions(slot_counts: typing.Sequence[int] = (
        512, 1024, 1536, 2048, 2560, 3072, 3584, 4096, 4608),
        associativities: typing.Sequence[int] = (1, 2, 4, 8),
        trials: int = 10_000, seed: int = 4) -> dict[int, list[tuple[int, float]]]:
    """Figure 11: expected records until a slot collision, assuming a
    random distribution of keys (the paper's §B.1 simulation, 10000
    trials per point)."""
    rng = random.Random(seed)
    series: dict[int, list[tuple[int, float]]] = {}
    for associativity in associativities:
        points = []
        for slots in slot_counts:
            total = 0
            for _ in range(trials):
                cache = WitnessCache(slots=slots, associativity=associativity)
                count = 0
                while True:
                    key_hash_value = rng.getrandbits(64)
                    if not cache.record([key_hash_value],
                                        RpcId(1, count + 1), "r"):
                        break
                    count += 1
                total += count
            points.append((slots, total / trials))
        series[associativity] = points
    return series


def fig12_batch_size(batch_sizes: typing.Sequence[int] = (1, 5, 10, 20, 35, 50),
                     n_clients: int = 16, duration: float = 3_000.0,
                     warmup: float = 800.0,
                     seed: int = 5) -> dict[str, list[tuple[int, float]]]:
    """Figure 12 (§C.1): throughput vs minimum sync batch size."""
    workload = YcsbWorkload(name="writes", read_fraction=0.0,
                            item_count=1_000_000, value_size=100,
                            distribution="uniform")
    systems: dict[str, typing.Callable[[int], CurpConfig]] = {
        "Unreplicated": lambda b: unreplicated_config(),
        "Async (f=3)": lambda b: async_replication_config(3, min_sync_batch=b),
        "CURP (f=1)": lambda b: curp_config(1, min_sync_batch=b),
        "CURP (f=2)": lambda b: curp_config(2, min_sync_batch=b),
        "CURP (f=3)": lambda b: curp_config(3, min_sync_batch=b),
        "Original RAMCloud (f=3)": lambda b: primary_backup_config(3),
    }
    series: dict[str, list[tuple[int, float]]] = {}
    for label, factory in systems.items():
        points = []
        for batch in batch_sizes:
            cluster = build_cluster(factory(batch), profile=RAMCLOUD_PROFILE,
                                    seed=seed)
            result = run_closed_loop(cluster, workload, n_clients=n_clients,
                                     duration=duration, warmup=warmup)
            points.append((batch, result["throughput"]))
        series[label] = points
    return series


def sec52_network_amplification(n_ops: int = 300,
                                seed: int = 6) -> dict[str, float]:
    """§5.2: network traffic per client request, CURP vs original.

    Reports two views:

    - ``*_copies``: how many times each request's payload crosses the
      wire — the paper's accounting: original = master + 3 backups = 4,
      CURP adds 3 witnesses = 7, i.e. +75 %;
    - ``*_bytes``: total wire bytes including headers/acks — lower
      amplification (~+25 %) because CURP's batched replication
      amortizes per-RPC framing the original pays per write.
    """
    from repro.core.messages import RecordArgs, UpdateArgs
    from repro.kvstore.backup import ReplicateArgs
    from repro.rpc.transport import RpcRequest

    out: dict[str, float] = {}
    for label, config in (("original", primary_backup_config(3)),
                          ("curp", curp_config(3))):
        cluster = build_cluster(config, profile=RAMCLOUD_PROFILE, seed=seed)
        copies = {"n": 0}

        def count_payload_copies(message):
            payload = message.payload
            if not isinstance(payload, RpcRequest):
                return
            if isinstance(payload.args, (UpdateArgs, RecordArgs)):
                copies["n"] += 1
            elif isinstance(payload.args, ReplicateArgs):
                copies["n"] += len(payload.args.entries)
        cluster.network.taps.append(count_payload_copies)
        client = cluster.new_client(collect_outcomes=False)

        def script(client=client):
            rng = cluster.sim.rng
            for _ in range(n_ops):
                yield from client.update(
                    Write(f"key{rng.randrange(1_000_000)}", "v" * 100))
        cluster.run(cluster.sim.process(script()), timeout=1e9)
        cluster.settle(2_000.0)
        out[f"{label}_bytes"] = cluster.network.stats.bytes_sent / n_ops
        out[f"{label}_copies"] = copies["n"] / n_ops
    out["amplification_bytes"] = (out["curp_bytes"]
                                  / out["original_bytes"] - 1.0)
    out["amplification_copies"] = (out["curp_copies"]
                                   / out["original_copies"] - 1.0)
    return out
