#!/usr/bin/env python
"""Optimistic transactions over CURP (§A.3).

Ten clients concurrently transfer money among eight accounts using the
read-validate-commit pattern the paper's appendix describes: reads use
the §A.3 fast path (no durability wait — the commit revalidates),
commits are atomic ConditionalMultiWrites that ride CURP's 1-RTT fast
path when they commute.  Mid-run, the master crashes and recovers; the
total balance is conserved throughout.

Run:  python examples/bank_transactions.py
"""

from repro.baselines import curp_config
from repro.core.transactions import run_transaction
from repro.harness import RAMCLOUD_PROFILE, build_cluster
from repro.kvstore import Write

ACCOUNTS = [f"acct:{chr(97 + i)}" for i in range(8)]
INITIAL = 1000


def main() -> None:
    cluster = build_cluster(curp_config(f=3), profile=RAMCLOUD_PROFILE,
                            seed=21)
    setup = cluster.new_client()
    for account in ACCOUNTS:
        cluster.run(setup.update(Write(account, INITIAL)))
    print(f"{len(ACCOUNTS)} accounts x {INITIAL} = "
          f"{len(ACCOUNTS) * INITIAL} total")

    stats = {"commits": 0, "conflict_retries": 0}

    def transfer_body(src: str, dst: str, amount: int):
        def body(txn):
            src_balance = yield from txn.read(src)
            dst_balance = yield from txn.read(dst)
            txn.write(src, src_balance - amount)
            txn.write(dst, dst_balance + amount)
            return amount
        return body

    clients = [cluster.new_client(collect_outcomes=False)
               for _ in range(10)]
    processes = []
    for client in clients:
        def script(client=client):
            rng = cluster.sim.rng
            for _ in range(12):
                src, dst = rng.sample(ACCOUNTS, 2)
                amount = rng.randrange(1, 50)
                yield from run_transaction(
                    client, transfer_body(src, dst, amount))
                stats["commits"] += 1
        processes.append(client.host.spawn(script(), name="teller"))

    def chaos():
        yield cluster.sim.timeout(400.0)
        print("\n!! crashing the master mid-run (unsynced transfers in "
              "flight)...")
        cluster.master().host.crash()
        yield cluster.sim.timeout(150.0)
        standby = cluster.add_host("standby", role="master")
        result = yield cluster.sim.process(
            cluster.coordinator.recover_master("m0", standby))
        print(f"!! recovered: {result['restored_entries']} entries from "
              f"backup + {result['replayed']} witnessed requests replayed\n")
    chaos_process = cluster.sim.process(chaos())

    cluster.run(cluster.sim.all_of(processes + [chaos_process]),
                timeout=1e9)

    total = 0
    print("final balances:")
    for account in ACCOUNTS:
        balance = cluster.run(setup.read(account))
        total += balance
        print(f"  {account} = {balance}")
    print(f"\ntotal = {total} (must be {len(ACCOUNTS) * INITIAL}); "
          f"{stats['commits']} transfers committed across a master crash")
    assert total == len(ACCOUNTS) * INITIAL


if __name__ == "__main__":
    main()
