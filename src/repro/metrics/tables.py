"""ASCII renderers for benchmark output.

Each per-figure benchmark prints the paper's series as aligned rows so
paper-vs-measured comparisons (EXPERIMENTS.md) read directly off the
bench output.
"""

from __future__ import annotations

import typing


def format_table(headers: typing.Sequence[str],
                 rows: typing.Sequence[typing.Sequence[typing.Any]],
                 title: str | None = None) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render(cell: typing.Any) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)


def format_distribution_rows(name: str, summary: dict) -> list:
    """One row of a latency-distribution table from a summary() dict."""
    if summary.get("count", 0) == 0:
        return [name, 0, "-", "-", "-", "-"]
    return [name, summary["count"], summary["median"], summary["p90"],
            summary["p99"], summary["max"]]
