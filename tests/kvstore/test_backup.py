"""Unit tests for backup servers (replication, fencing, recovery data)."""

from __future__ import annotations

import pytest

from repro.kvstore import BackupServer, KVStore, Write
from repro.kvstore.backup import ReplicateArgs
from repro.net import Network
from repro.rpc import AppError, RpcTransport
from repro.sim import Simulator


def build(sim: Simulator, network: Network):
    backup = BackupServer(network.add_host("backup1"), master_id="m1")
    caller = RpcTransport(network.add_host("caller"))
    return backup, caller


def entries_for(*keys: str):
    store = KVStore()
    for key in keys:
        store.execute(Write(key, f"v-{key}"))
    return tuple(store.log.all_entries())


def test_replicate_appends_entries(sim, network):
    backup, caller = build(sim, network)
    entries = entries_for("a", "b")
    args = ReplicateArgs(master_id="m1", epoch=0, entries=entries)
    result = sim.run(caller.call("backup1", "replicate", args))
    assert result == 2
    assert backup.entry_count() == 2


def test_replicate_idempotent_on_retry(sim, network):
    backup, caller = build(sim, network)
    entries = entries_for("a", "b")
    args = ReplicateArgs(master_id="m1", epoch=0, entries=entries)
    sim.run(caller.call("backup1", "replicate", args))
    sim.run(caller.call("backup1", "replicate", args))  # duplicate
    assert backup.entry_count() == 2


def test_replicate_wrong_master_rejected(sim, network):
    _backup, caller = build(sim, network)
    args = ReplicateArgs(master_id="intruder", epoch=0, entries=())
    with pytest.raises(AppError) as err:
        sim.run(caller.call("backup1", "replicate", args))
    assert err.value.code == "WRONG_MASTER"


def test_fencing_rejects_old_epoch(sim, network):
    """§4.7: after the coordinator fences with a new epoch, a zombie
    master's replication (old epoch) must be rejected."""
    backup, caller = build(sim, network)
    sim.run(caller.call("backup1", "fence", 5))
    args = ReplicateArgs(master_id="m1", epoch=4, entries=entries_for("a"))
    with pytest.raises(AppError) as err:
        sim.run(caller.call("backup1", "replicate", args))
    assert err.value.code == "FENCED"
    assert backup.entry_count() == 0
    # The new-epoch master replicates fine.
    ok_args = ReplicateArgs(master_id="m1", epoch=5, entries=entries_for("a"))
    assert sim.run(caller.call("backup1", "replicate", ok_args)) == 1


def test_fence_never_lowers_epoch(sim, network):
    backup, caller = build(sim, network)
    sim.run(caller.call("backup1", "fence", 5))
    sim.run(caller.call("backup1", "fence", 3))
    assert backup.min_epoch == 5


def test_get_backup_data_ordered(sim, network):
    backup, caller = build(sim, network)
    entries = entries_for("a", "b", "c")
    # Replicate out of order across two RPCs.
    sim.run(caller.call("backup1", "replicate",
                        ReplicateArgs("m1", 0, entries[1:])))
    sim.run(caller.call("backup1", "replicate",
                        ReplicateArgs("m1", 0, entries[:1])))
    data = sim.run(caller.call("backup1", "get_backup_data", None))
    assert [e.index for e in data] == [1, 2, 3]


def test_backup_data_survives_crash_restart(sim, network):
    backup, caller = build(sim, network)
    sim.run(caller.call("backup1", "replicate",
                        ReplicateArgs("m1", 0, entries_for("a"))))
    backup.host.crash()
    backup.host.restart()
    data = sim.run(caller.call("backup1", "get_backup_data", None))
    assert len(data) == 1


def test_process_time_delays_ack(sim, network):
    backup = BackupServer(network.add_host("b2"), master_id="m1",
                          process_time=10.0)
    caller = RpcTransport(network.add_host("c2"))
    args = ReplicateArgs("m1", 0, entries_for("a"))
    sim.run(caller.call("b2", "replicate", args))
    assert sim.now == 14.0  # 2 + 10 + 2
    assert backup.entry_count() == 1
