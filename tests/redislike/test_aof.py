"""Unit tests for the AOF + fsync device."""

from __future__ import annotations

import pytest

from repro.net import Network
from repro.net.latency import LatencyModel
from repro.redislike.aof import AppendOnlyFile, FsyncDevice
from repro.sim import Fixed, Simulator


@pytest.fixture
def host(sim: Simulator):
    network = Network(sim, latency=LatencyModel(Fixed(1.0)))
    return network.add_host("server")


def build_aof(host, fsync_duration=70.0):
    device = FsyncDevice(host, Fixed(fsync_duration))
    return AppendOnlyFile(host, device), device


def test_append_assigns_sequences(sim, host):
    aof, _device = build_aof(host)
    assert aof.append("cmd1") == 1
    assert aof.append("cmd2") == 2
    assert aof.end_seq == 2
    assert aof.durable_seq == 0


def test_request_durable_runs_one_fsync(sim, host):
    aof, device = build_aof(host)
    aof.append("cmd1")
    done = aof.request_durable(1)
    sim.run(done)
    assert sim.now == 70.0
    assert aof.durable_seq == 1
    assert device.fsyncs == 1


def test_one_fsync_covers_everything_appended(sim, host):
    """Entries appended before the fsync starts ride along."""
    aof, device = build_aof(host)
    for i in range(5):
        aof.append(f"cmd{i}")
    waits = [aof.request_durable(i + 1) for i in range(5)]
    sim.run(sim.all_of(waits))
    assert device.fsyncs == 1
    assert aof.durable_seq == 5


def test_entries_during_fsync_wait_for_next(sim, host):
    aof, device = build_aof(host)
    aof.append("first")
    first = aof.request_durable(1)
    # Mid-fsync, append another and ask for durability.
    def late_append():
        yield sim.timeout(30.0)
        aof.append("second")
        done = aof.request_durable(2)
        yield done
        return sim.now
    process = sim.process(late_append())
    assert sim.run(process) == 140.0  # second fsync after the first
    assert device.fsyncs == 2


def test_already_durable_resolves_immediately(sim, host):
    aof, device = build_aof(host)
    aof.append("cmd")
    sim.run(aof.request_durable(1))
    done = aof.request_durable(1)
    assert done.triggered
    assert device.fsyncs == 1


def test_crash_truncates_unsynced_tail(sim, host):
    aof, _device = build_aof(host)
    aof.append("durable-cmd")
    sim.run(aof.request_durable(1))
    aof.append("volatile-cmd")
    host.crash()
    assert aof.end_seq == 1
    assert [cmd for _seq, cmd, _rpc, _res in aof.durable_entries()] \
        == ["durable-cmd"]


def test_on_durable_callbacks_fire(sim, host):
    aof, _device = build_aof(host)
    seen = []
    aof.on_durable.append(lambda seq: seen.append(seq))
    aof.append("a")
    aof.append("b")
    sim.run(aof.request_durable(2))
    assert seen == [2]


def test_fsync_device_serializes(sim, host):
    device = FsyncDevice(host, Fixed(50.0))
    finish = []
    def syncer():
        yield from device.fsync()
        finish.append(sim.now)
    sim.process(syncer())
    sim.process(syncer())
    sim.run()
    assert finish == [50.0, 100.0]


def test_result_rides_entries(sim, host):
    aof, _device = build_aof(host)
    aof.append("cmd", rpc_id="rpc-1", result="OK")
    sim.run(aof.request_durable(1))
    seq, cmd, rpc_id, result = aof.durable_entries()[0]
    assert (seq, cmd, rpc_id, result) == (1, "cmd", "rpc-1", "OK")
