"""CURP: Consistent Unordered Replication Protocol (the paper's core).

The protocol separates *durability* from *ordering* (§2): clients make
updates durable in 1 RTT by recording them on ``f`` witnesses in
parallel with the update RPC to the master; the master executes
speculatively and replies before backups acknowledge; ordering is
recovered lazily via commutativity.  The pieces:

- :class:`~repro.core.config.CurpConfig` — protocol knobs (f, sync
  batch size, witness geometry, heuristics) and the
  :class:`~repro.core.config.ReplicationMode` selector that also drives
  the paper's baselines.
- :class:`~repro.core.witness_cache.WitnessCache` — the set-associative
  request store of §4.2/§B.1 (a pure data structure, benchmarked
  stand-alone for Figure 11).
- :class:`~repro.core.witness.WitnessServer` — the RPC wrapper with the
  Figure 4 API (record/gc/getRecoveryData/start/end) plus the
  ``probe`` RPC that enables consistent reads from backups (§A.1).
- :class:`~repro.core.witness.WitnessEndpoint` — the multi-tenant
  variant: one host serving several masters' witness sets behind a
  single rx handler, with receive-side cross-master gc merging.
- :class:`~repro.core.master.CurpMaster` — speculative execution,
  unsynced-window commutativity checks, batched backup syncs, witness
  garbage collection, hot-key preemptive syncs (§3.2.3, §4.3-4.5).
- :class:`~repro.core.client.CurpClient` — the 1-RTT fast path, the
  sync slow path, retry/refresh logic, and the nearby-read protocol.
- :mod:`~repro.core.recovery` — crash recovery: restore from backups,
  replay from one immutable witness, RIFL filtering (§3.3, §4.6).
"""

from repro.core.config import CurpConfig, ReplicationMode, StorageProfile
from repro.core.witness_cache import WitnessCache
from repro.core.witness import WitnessEndpoint, WitnessServer, WitnessStats
from repro.core.master import CurpMaster
from repro.core.client import CurpClient, UpdateOutcome

__all__ = [
    "CurpClient",
    "CurpConfig",
    "CurpMaster",
    "ReplicationMode",
    "StorageProfile",
    "UpdateOutcome",
    "WitnessCache",
    "WitnessEndpoint",
    "WitnessStats",
    "WitnessServer",
]
