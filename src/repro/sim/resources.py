"""Counted resources: worker pools, NICs, fsync devices.

A :class:`Resource` has a fixed capacity.  ``request()`` returns an
event that triggers when a unit is granted (FIFO).  The common pattern
is wrapped by :meth:`Resource.use`:

    yield from nic.use(tx_cost)     # hold the NIC for tx_cost µs

which models serialization: concurrent sends on one host queue behind
each other, the effect behind the paper's 0.4 µs f=3 client overhead
and behind the dispatch-thread bottleneck in the throughput figures.
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class Resource:
    """A FIFO counted resource."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: collections.deque[Event] = collections.deque()
        #: total time units of busy occupancy, for utilization metrics
        self.busy_time = 0.0

    def request(self) -> Event:
        """An event that triggers when a unit is granted."""
        grant = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            grant.succeed()
        else:
            self._waiters.append(grant)
        return grant

    def try_acquire(self) -> bool:
        """Take a unit immediately if one is free (no event, no queue
        entry) — the callback fast path's common case.  Pair with
        :meth:`release`; fall back to :meth:`request` on False."""
        if self.in_use < self.capacity:
            self.in_use += 1
            return True
        return False

    def release(self) -> None:
        """Return a unit; hands it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError(f"release() without request() on {self.name}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    def use(self, duration: float) -> typing.Generator[Event, typing.Any, None]:
        """``yield from`` helper: acquire, hold for ``duration``, release.

        Release happens even if the holding process is interrupted while
        sleeping, so a crashed server never leaks NIC/worker units.
        """
        yield self.request()
        start = self.sim.now
        try:
            yield self.sim.timeout(duration)
        finally:
            self.busy_time += self.sim.now - start
            self.release()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Resource {self.name} {self.in_use}/{self.capacity}"
                f" +{len(self._waiters)} waiting>")
