"""Closed-loop and pipelined workload clients.

Each closed-loop client repeatedly issues the next operation and waits
for it to complete ("back to back", as in Figures 6 and 9), recording
latency per op.  ``run_closed_loop`` drives N of them for a measured
window and returns aggregate throughput — the harness behind every
throughput figure.

``run_pipelined_loop`` drives *batch-pipelined* clients: each keeps
``depth`` operations in flight per wave, the shape that exposes the
per-message floor — with ``CurpConfig.frame_coalescing`` a wave's
``depth`` same-instant RPCs to each destination share one NIC frame,
which is how messages-per-update drops below the 2 × (1 + f)
closed-loop floor.  Commutative operations are exactly the ones safe
to batch this way (they complete independently in any order), so the
pipelined driver needs no protocol changes.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.client import CurpClient
from repro.kvstore.operations import Read
from repro.metrics.stats import LatencyRecorder
from repro.sim.events import AllOf
from repro.workload.ycsb import YcsbOpStream, YcsbWorkload

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.harness.builder import Cluster


@dataclasses.dataclass
class ClosedLoopClient:
    """One client process issuing operations back to back.

    With ``resolve_shard``/``per_shard`` set (the shard-aware harness),
    every completed operation is additionally attributed to the shard
    that served it — per the resolver's *live* view, so a mid-run
    migration moves the attribution with the tablet.  Attribution is
    pure bookkeeping after the op completes; the None default leaves
    the loop exactly as every golden trace pins it.
    """

    client: CurpClient
    stream: YcsbOpStream
    write_latency: LatencyRecorder
    read_latency: LatencyRecorder
    #: optional shard attribution: key → owning shard, and the shared
    #: {shard: ShardLoad} sink to record into
    resolve_shard: typing.Callable[[str], str | None] | None = None
    per_shard: dict | None = None
    operations: int = 0
    #: set False to stop the loop at the next op boundary
    running: bool = True

    def loop(self, max_ops: int | None = None):
        """Generator: the client's main loop."""
        sim = self.client.sim
        rng = sim.rng
        while self.running and (max_ops is None or self.operations < max_ops):
            op = self.stream.next_op(rng)
            started = sim.now
            is_read = isinstance(op, Read)
            if is_read:
                yield from self.client.read(op.key)
                self.read_latency.record(sim.now - started)
            else:
                yield from self.client.update(op)
                self.write_latency.record(sim.now - started)
            if self.resolve_shard is not None:
                shard = self.resolve_shard(op.key)
                load = self.per_shard.get(shard)
                if load is None:
                    load = self.per_shard[shard] = ShardLoad()
                load.operations += 1
                recorder = (load.read_latency if is_read
                            else load.write_latency)
                recorder.record(sim.now - started)
            self.operations += 1


def run_closed_loop(cluster: "Cluster", workload: YcsbWorkload,
                    n_clients: int, duration: float,
                    warmup: float = 0.0,
                    collect_outcomes: bool = False) -> dict:
    """Drive ``n_clients`` for ``duration`` µs; return aggregate stats.

    Returns a dict with ``throughput`` (ops/s across clients, measured
    after ``warmup``), and ``write_latency`` / ``read_latency``
    recorders.
    """
    write_latency = LatencyRecorder()
    read_latency = LatencyRecorder()
    loops: list[ClosedLoopClient] = []
    for _ in range(n_clients):
        client = cluster.new_client(collect_outcomes=collect_outcomes)
        loop = ClosedLoopClient(client=client, stream=workload.generator(),
                                write_latency=write_latency,
                                read_latency=read_latency)
        loops.append(loop)
    for loop in loops:
        loop.client.host.spawn(loop.loop(), name="workload")
    if warmup > 0:
        cluster.sim.run(until=cluster.sim.now + warmup)
        for loop in loops:
            loop.operations = 0
        write_latency.reset()
        read_latency.reset()
    start = cluster.sim.now
    cluster.sim.run(until=start + duration)
    for loop in loops:
        loop.running = False
    elapsed = cluster.sim.now - start
    total_ops = sum(loop.operations for loop in loops)
    return {
        "throughput": total_ops / (elapsed / 1e6),  # ops per second
        "operations": total_ops,
        "write_latency": write_latency,
        "read_latency": read_latency,
    }


@dataclasses.dataclass
class ShardLoad:
    """Per-shard slice of a sharded workload run."""

    operations: int = 0
    write_latency: LatencyRecorder = dataclasses.field(
        default_factory=LatencyRecorder)
    read_latency: LatencyRecorder = dataclasses.field(
        default_factory=LatencyRecorder)

    def reset(self) -> None:
        self.operations = 0
        self.write_latency.reset()
        self.read_latency.reset()


def run_sharded_ycsb(cluster: "Cluster", workload: YcsbWorkload,
                     n_clients: int, duration: float,
                     warmup: float = 0.0) -> dict:
    """The shard-aware YCSB harness: drive ``n_clients`` closed-loop
    clients for ``duration`` µs against a (multi-shard) cluster and
    report aggregate *and per-shard* throughput and latency
    percentiles.

    ``warmup`` runs first and is discarded — for rebalancing studies
    make it long enough for the rebalancer to converge, so the
    measured window reflects the steady-state placement.  Returns::

        {"throughput": ops/s, "operations": n,
         "write_latency": recorder, "read_latency": recorder,
         "per_shard": {master_id: {"operations", "ops_per_sec",
                                   "share", "write": summary,
                                   "read": summary}}}
    """
    per_shard: dict = {}
    write_latency = LatencyRecorder()
    read_latency = LatencyRecorder()
    loops: list[ClosedLoopClient] = []
    for _ in range(n_clients):
        client = cluster.new_client(collect_outcomes=False)
        loops.append(ClosedLoopClient(client=client,
                                      stream=workload.generator(),
                                      write_latency=write_latency,
                                      read_latency=read_latency,
                                      resolve_shard=cluster.shard_for,
                                      per_shard=per_shard))
    for loop in loops:
        loop.client.host.spawn(loop.loop(), name="sharded-workload")
    if warmup > 0:
        cluster.sim.run(until=cluster.sim.now + warmup)
        for loop in loops:
            loop.operations = 0
        write_latency.reset()
        read_latency.reset()
        for load in per_shard.values():
            load.reset()
    start = cluster.sim.now
    cluster.sim.run(until=start + duration)
    for loop in loops:
        loop.running = False
    elapsed = cluster.sim.now - start
    total_ops = sum(loop.operations for loop in loops)
    seconds = elapsed / 1e6
    shards = {}
    for shard, load in sorted(per_shard.items(), key=lambda kv: str(kv[0])):
        shards[shard] = {
            "operations": load.operations,
            "ops_per_sec": load.operations / seconds if seconds else 0.0,
            "share": load.operations / total_ops if total_ops else 0.0,
            "write": load.write_latency.summary(),
            "read": load.read_latency.summary(),
        }
    return {
        "throughput": total_ops / seconds if seconds else 0.0,
        "operations": total_ops,
        "write_latency": write_latency,
        "read_latency": read_latency,
        "per_shard": shards,
    }


@dataclasses.dataclass
class PipelinedClient:
    """One client keeping ``depth`` operations in flight per wave.

    Each wave spawns ``depth`` concurrent operations at one virtual
    instant and joins them all before starting the next — the batched
    shape under which frame coalescing packs a wave's RPCs to each
    destination into single frames.  Reads in the stream run
    concurrently with the wave's updates.
    """

    client: CurpClient
    stream: YcsbOpStream
    depth: int
    wave_latency: LatencyRecorder
    operations: int = 0
    waves: int = 0
    #: set False to stop at the next wave boundary
    running: bool = True

    def loop(self, max_waves: int | None = None):
        """Generator: the client's wave loop."""
        sim = self.client.sim
        rng = sim.rng
        host = self.client.host
        while self.running and (max_waves is None or self.waves < max_waves):
            started = sim.now
            calls = []
            for _ in range(self.depth):
                op = self.stream.next_op(rng)
                if isinstance(op, Read):
                    calls.append(host.spawn(self.client.read(op.key),
                                            name="pipelined-read"))
                else:
                    calls.append(host.spawn(self.client.update(op),
                                            name="pipelined-update"))
            yield AllOf(sim, calls)
            self.wave_latency.record(sim.now - started)
            self.operations += self.depth
            self.waves += 1


@dataclasses.dataclass
class AdaptivePipelinedClient:
    """A pipelined client that honors ``RETRY_LATER`` pushback.

    Same wave shape as :class:`PipelinedClient`, but the wave depth is
    an AIMD window: any wave that absorbed at least one master
    pushback (the underlying :class:`CurpClient` counts them) shrinks
    the next wave multiplicatively; a clean wave grows it additively
    back toward ``max_depth``.  This is the client half of the
    overload contract — an overloaded master says *back off* once per
    shed attempt instead of queuing without bound, and the pipelined
    sender converges on the depth the master can actually absorb.
    """

    client: CurpClient
    stream: YcsbOpStream
    max_depth: int
    wave_latency: LatencyRecorder
    min_depth: int = 1
    #: multiplicative shrink on a pushed-back wave, in (0, 1)
    decrease: float = 0.5
    #: additive growth per clean wave
    increase: float = 1.0
    window: float = 0.0
    operations: int = 0
    waves: int = 0
    shrinks: int = 0
    #: set False to stop at the next wave boundary
    running: bool = True

    def __post_init__(self) -> None:
        if self.window <= 0:
            self.window = float(self.max_depth)

    def loop(self, max_waves: int | None = None):
        """Generator: the adaptive wave loop."""
        sim = self.client.sim
        rng = sim.rng
        host = self.client.host
        while self.running and (max_waves is None or self.waves < max_waves):
            depth = max(self.min_depth, int(self.window))
            started = sim.now
            pushbacks = self.client.pushbacks
            calls = []
            for _ in range(depth):
                op = self.stream.next_op(rng)
                if isinstance(op, Read):
                    calls.append(host.spawn(self.client.read(op.key),
                                            name="adaptive-read"))
                else:
                    calls.append(host.spawn(self.client.update(op),
                                            name="adaptive-update"))
            yield AllOf(sim, calls)
            if self.client.pushbacks > pushbacks:
                self.window = max(float(self.min_depth),
                                  self.window * self.decrease)
                self.shrinks += 1
            else:
                self.window = min(float(self.max_depth),
                                  self.window + self.increase)
            self.wave_latency.record(sim.now - started)
            self.operations += depth
            self.waves += 1


def run_adaptive_pipelined(cluster: "Cluster", workload: YcsbWorkload,
                           n_clients: int, waves: int, depth: int) -> dict:
    """Drive ``n_clients`` adaptive pipelined clients for ``waves``
    waves starting at window ``depth``; AIMD knobs come from
    ``cluster.config.overload``.  Returns throughput plus the final
    per-client windows and total shrink count — the observable that
    overload tests pin (windows collapse under a shedding master, stay
    at ``depth`` against an unloaded one).
    """
    overload = cluster.config.overload
    wave_latency = LatencyRecorder()
    loops: list[AdaptivePipelinedClient] = []
    for _ in range(n_clients):
        client = cluster.new_client(collect_outcomes=False)
        loops.append(AdaptivePipelinedClient(
            client=client, stream=workload.generator(), max_depth=depth,
            wave_latency=wave_latency, min_depth=overload.min_window,
            decrease=overload.window_decrease,
            increase=overload.window_increase))
    processes = [loop.client.host.spawn(loop.loop(max_waves=waves),
                                        name="adaptive-workload")
                 for loop in loops]
    started = cluster.sim.now
    cluster.sim.run(AllOf(cluster.sim, processes))
    elapsed = cluster.sim.now - started
    total_ops = sum(loop.operations for loop in loops)
    return {
        "throughput": total_ops / (elapsed / 1e6) if elapsed else 0.0,
        "operations": total_ops,
        "wave_latency": wave_latency,
        "windows": [loop.window for loop in loops],
        "shrinks": sum(loop.shrinks for loop in loops),
        "pushbacks": sum(loop.client.pushbacks for loop in loops),
    }


def run_pipelined_loop(cluster: "Cluster", workload: YcsbWorkload,
                       n_clients: int, waves: int, depth: int,
                       collect_outcomes: bool = False) -> dict:
    """Drive ``n_clients`` pipelined clients for exactly ``waves`` waves
    of ``depth`` concurrent operations each.

    A fixed operation count (rather than a time window) keeps runs with
    different transport settings directly comparable: frames on/off
    execute the identical op sequence, so messages-per-update deltas
    are pure transport effects.
    """
    wave_latency = LatencyRecorder()
    loops: list[PipelinedClient] = []
    for _ in range(n_clients):
        client = cluster.new_client(collect_outcomes=collect_outcomes)
        loops.append(PipelinedClient(client=client,
                                     stream=workload.generator(),
                                     depth=depth,
                                     wave_latency=wave_latency))
    processes = [loop.client.host.spawn(loop.loop(max_waves=waves),
                                        name="pipelined-workload")
                 for loop in loops]
    started = cluster.sim.now
    cluster.sim.run(AllOf(cluster.sim, processes))
    elapsed = cluster.sim.now - started
    total_ops = sum(loop.operations for loop in loops)
    return {
        "throughput": total_ops / (elapsed / 1e6) if elapsed else 0.0,
        "operations": total_ops,
        "wave_latency": wave_latency,
    }
