"""Client-side RIFL bookkeeping: sequence numbers and acknowledgments."""

from __future__ import annotations

from repro.rifl.ids import RpcId, TxnId


class RiflClientTracker:
    """Tracks one client's outstanding update RPCs.

    ``first_incomplete`` is the smallest sequence number whose RPC the
    client has not yet completed; it is piggybacked on every request so
    servers can garbage collect completion records for everything below
    it (paper §4.8).
    """

    def __init__(self, client_id: int):
        self.client_id = client_id
        self._next_seq = 0
        self._outstanding: set[int] = set()

    def new_rpc(self) -> RpcId:
        """Allocate the id for a new update RPC."""
        self._next_seq += 1
        self._outstanding.add(self._next_seq)
        return RpcId(self.client_id, self._next_seq)

    def new_transaction(self, n: int) -> tuple[TxnId, tuple[RpcId, ...]]:
        """Allocate ids for one cross-shard transaction attempt (§B.2):
        a :class:`TxnId` naming the attempt plus ``n`` consecutive
        RpcIds, one per participant shard's prepare.  All ``n`` RpcIds
        are outstanding until the per-shard operations complete, so
        ``first_incomplete`` (and therefore server-side completion-
        record gc) holds below the transaction until it resolves."""
        if n < 1:
            raise ValueError(f"new_transaction requires n >= 1: {n}")
        rpc_ids = tuple(self.new_rpc() for _ in range(n))
        txn_id = TxnId(self.client_id, rpc_ids[0].seq)
        return txn_id, rpc_ids

    def completed(self, rpc_id: RpcId) -> None:
        """The RPC's result has been externalized to the application."""
        if rpc_id.client_id != self.client_id:
            raise ValueError(f"rpc {rpc_id} does not belong to client "
                             f"{self.client_id}")
        self._outstanding.discard(rpc_id.seq)

    @property
    def first_incomplete(self) -> int:
        """Smallest seq not yet completed (= ack level to piggyback)."""
        if not self._outstanding:
            return self._next_seq + 1
        return min(self._outstanding)

    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)
