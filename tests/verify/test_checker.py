"""Unit tests for the linearizability checker on known histories."""

from __future__ import annotations

import pytest

from repro.verify import (
    CounterModel,
    History,
    LinearizabilityError,
    check_linearizable,
)
from repro.verify.history import OpRecord


def make_history(tuples) -> History:
    """tuples: (client, key, kind, argument, result, start, end)."""
    history = History()
    for client, key, kind, arg, result, start, end in tuples:
        history.records.append(OpRecord(
            client=client, key=key, kind=kind, argument=arg, result=result,
            invoked_at=start, completed_at=end))
    return history


def test_empty_history_is_linearizable():
    check_linearizable(History())


def test_sequential_write_then_read():
    history = make_history([
        (1, "x", "write", 1, None, 0.0, 1.0),
        (1, "x", "read", None, 1, 2.0, 3.0),
    ])
    check_linearizable(history)


def test_read_of_never_written_value_fails():
    history = make_history([
        (1, "x", "write", 1, None, 0.0, 1.0),
        (1, "x", "read", None, 99, 2.0, 3.0),
    ])
    with pytest.raises(LinearizabilityError):
        check_linearizable(history)


def test_stale_read_after_write_completes_fails():
    """Classic linearizability violation: a read starting after a write
    completed must see it."""
    history = make_history([
        (1, "x", "write", 1, None, 0.0, 1.0),
        (1, "x", "write", 2, None, 2.0, 3.0),
        (2, "x", "read", None, 1, 4.0, 5.0),  # stale!
    ])
    with pytest.raises(LinearizabilityError):
        check_linearizable(history)


def test_concurrent_read_may_see_either_value():
    history = make_history([
        (1, "x", "write", 1, None, 0.0, 1.0),
        (1, "x", "write", 2, None, 2.0, 6.0),
        (2, "x", "read", None, 1, 3.0, 4.0),   # overlaps write(2): ok
    ])
    check_linearizable(history)
    history2 = make_history([
        (1, "x", "write", 1, None, 0.0, 1.0),
        (1, "x", "write", 2, None, 2.0, 6.0),
        (2, "x", "read", None, 2, 3.0, 4.0),   # also ok
    ])
    check_linearizable(history2)


def test_read_must_not_go_backwards():
    """Two sequential reads around a concurrent write: once the new
    value is observed, an older value may not reappear."""
    history = make_history([
        (1, "x", "write", 1, None, 0.0, 1.0),
        (1, "x", "write", 2, None, 2.0, 10.0),
        (2, "x", "read", None, 2, 3.0, 4.0),
        (2, "x", "read", None, 1, 5.0, 6.0),  # regression!
    ])
    with pytest.raises(LinearizabilityError):
        check_linearizable(history)


def test_per_key_independence():
    """Violations on one key do not hide behind traffic on another."""
    history = make_history([
        (1, "a", "write", 1, None, 0.0, 1.0),
        (2, "b", "write", 5, None, 0.0, 1.0),
        (1, "a", "read", None, 1, 2.0, 3.0),
        (2, "b", "read", None, 6, 2.0, 3.0),  # bad read on b
    ])
    with pytest.raises(LinearizabilityError) as err:
        check_linearizable(history)
    assert err.value.key == "b"


def test_pending_write_may_have_happened():
    """A crashed client's write is allowed to be visible..."""
    history = make_history([
        (1, "x", "write", 1, None, 0.0, None),   # pending forever
        (2, "x", "read", None, 1, 5.0, 6.0),
    ])
    check_linearizable(history)


def test_pending_write_may_also_never_happen():
    history = make_history([
        (1, "x", "write", 1, None, 0.0, None),
        (2, "x", "read", None, None, 5.0, 6.0),  # sees nothing: fine
    ])
    check_linearizable(history)


def test_pending_write_cannot_unhappen():
    """...but once observed, it must stay observed."""
    history = make_history([
        (1, "x", "write", 1, None, 0.0, None),
        (2, "x", "read", None, 1, 5.0, 6.0),
        (2, "x", "read", None, None, 7.0, 8.0),  # write vanished!
    ])
    with pytest.raises(LinearizabilityError):
        check_linearizable(history)


def test_pending_read_is_ignored():
    history = make_history([
        (1, "x", "write", 1, None, 0.0, 1.0),
        (2, "x", "read", None, None, 0.5, None),  # crashed reader
        (1, "x", "read", None, 1, 2.0, 3.0),
    ])
    check_linearizable(history)


def test_counter_model_double_increment_detected():
    """An increment applied twice (same result observed later too high)
    is exactly what RIFL prevents; the checker must catch it."""
    history = make_history([
        (1, "c", "increment", 1, 1, 0.0, 1.0),
        (1, "c", "read", None, 2, 2.0, 3.0),  # but only one INCR ran!
    ])
    with pytest.raises(LinearizabilityError):
        check_linearizable(history, model=CounterModel)


def test_counter_model_increments_serialize():
    history = make_history([
        (1, "c", "increment", 1, 1, 0.0, 5.0),
        (2, "c", "increment", 1, 2, 0.0, 5.0),  # concurrent; results 1,2
        (1, "c", "read", None, 2, 6.0, 7.0),
    ])
    check_linearizable(history, model=CounterModel)


def test_counter_model_results_must_be_consistent():
    history = make_history([
        (1, "c", "increment", 1, 1, 0.0, 5.0),
        (2, "c", "increment", 1, 1, 0.0, 5.0),  # both claim result 1
    ])
    with pytest.raises(LinearizabilityError):
        check_linearizable(history, model=CounterModel)


def test_real_time_order_respected_across_clients():
    """Write completes, then a different client writes, then a read of
    the first value fails (real-time order)."""
    history = make_history([
        (1, "x", "write", "a", None, 0.0, 1.0),
        (2, "x", "write", "b", None, 2.0, 3.0),
        (3, "x", "read", None, "a", 4.0, 5.0),
    ])
    with pytest.raises(LinearizabilityError):
        check_linearizable(history)


def test_many_concurrent_writers_some_order_exists():
    records = []
    for i in range(8):
        records.append((i, "x", "write", i, None, 0.0, 10.0))
    records.append((9, "x", "read", None, 3, 11.0, 12.0))
    check_linearizable(make_history(records))
