"""Measurement utilities: latency recorders, distribution series,
fairness indices, and the ASCII table/figure renderers the benchmarks
print."""

from repro.metrics.stats import LatencyRecorder, percentile
from repro.metrics.series import ccdf_points, cdf_points
from repro.metrics.fairness import (
    bucketed_percentiles,
    bucketed_rates,
    jain_fairness,
)
from repro.metrics.availability import AvailabilityTracker, availability_report
from repro.metrics.tables import format_table, format_distribution_rows

__all__ = [
    "AvailabilityTracker",
    "LatencyRecorder",
    "availability_report",
    "bucketed_percentiles",
    "bucketed_rates",
    "ccdf_points",
    "cdf_points",
    "format_distribution_rows",
    "format_table",
    "jain_fairness",
    "percentile",
]
