"""RPC layer on top of the network substrate.

Request/response matching, handler dispatch, timeouts and retries.
Two features the CURP protocol specifically needs:

- **Early reply**: a handler can call ``ctx.reply(value)`` and keep
  executing.  This is how a speculative master responds to the client
  *before* the backup sync completes (§3.2.3).
- **Application error codes** (:class:`~repro.rpc.errors.AppError`):
  typed errors such as ``WRONG_WITNESS_VERSION`` or ``WRONG_SHARD`` that
  cross the wire and are re-raised at the caller, driving the client
  retry logic of §3.6.
"""

from repro.rpc.errors import AppError, RpcError, RpcTimeout
from repro.rpc.transport import RpcContext, RpcTransport
from repro.rpc.helpers import backoff_delay, call_with_retry

__all__ = [
    "AppError",
    "RpcContext",
    "RpcError",
    "RpcTimeout",
    "RpcTransport",
    "backoff_delay",
    "call_with_retry",
]
