"""The network: asynchronous, unreliable message delivery.

Matches the paper's network model (§3.1): *asynchronous* (no bound on
message delay — latency is sampled from arbitrary distributions) and
*unreliable* (messages can be dropped, hosts partitioned).  CURP must be
correct under all of it; the tests exercise drops and partitions, and
the benchmarks calibrate the latency models to the paper's clusters.
"""

from __future__ import annotations

import typing
from collections import defaultdict

from repro.net.host import Host
from repro.net.latency import LatencyModel
from repro.net.message import Frame, Message
from repro.sim.distributions import Distribution

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class TrafficStats:
    """Message/byte counters, per host and total (§5.2 analysis).

    ``messages_sent`` counts *transmissions*: a coalesced frame counts
    once, however many RPC payloads ride in it — that is the
    per-message floor the ISSUE 4 tentpole tracks.  ``payloads_sent``
    counts the contained payloads, so ``payloads_sent -
    messages_sent`` is the number of per-message costs coalescing
    saved.  Without coalescing the two counters are always equal.
    """

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        #: RPC payloads carried by all transmissions (frame = len, else 1)
        self.payloads_sent = 0
        #: transmissions that were multi-payload frames
        self.frames_sent = 0
        #: payloads that rode in multi-payload frames
        self.frame_payloads = 0
        #: payloads lost to dropped/partitioned transmissions
        self.payloads_dropped = 0
        self.per_host_sent: dict[str, int] = defaultdict(int)
        self.per_host_bytes: dict[str, int] = defaultdict(int)

    def record_send(self, src: str, size_bytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        self.payloads_sent += 1
        self.per_host_sent[src] += 1
        self.per_host_bytes[src] += size_bytes

    def messages_per_update(self, completed_updates: int) -> float:
        """Wire transmissions per completed update — the protocol's
        per-message floor (~8 at f = 3 without coalescing; the ISSUE 4
        target is ≤ 4 with frames on).  Callers pass the completed
        update count from the clients/masters driving the run."""
        if completed_updates <= 0:
            return 0.0
        return self.messages_sent / completed_updates


class Network:
    """Connects hosts; owns latency, drop and partition behaviour."""

    def __init__(self, sim: "Simulator", latency: LatencyModel | None = None,
                 drop_rate: float = 0.0, frame_coalescing: bool = False):
        self.sim = sim
        self.latency = latency or LatencyModel()
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1): {drop_rate}")
        self.drop_rate = drop_rate
        #: pack same-instant same-destination sends into one Frame per
        #: transmission (``CurpConfig.frame_coalescing``); hosts copy
        #: the flag at construction, so set it before adding hosts
        self.frame_coalescing = frame_coalescing
        self.hosts: dict[str, Host] = {}
        self.stats = TrafficStats()
        #: observers called with every transmitted Message (traffic
        #: analysis, e.g. §5.2 payload-copy accounting); must not mutate
        self.taps: list[typing.Callable[[Message], None]] = []
        self._blocked: set[frozenset[str]] = set()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_host(self, name: str, tx_cost: float = 0.0,
                 rx_cost: float = 0.0, shared_dispatch: bool = False) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host name: {name}")
        host = Host(self.sim, self, name, tx_cost=tx_cost, rx_cost=rx_cost,
                    shared_dispatch=shared_dispatch)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def set_link_latency(self, src: str, dst: str, dist: Distribution,
                         symmetric: bool = True) -> None:
        self.latency.set_pair(src, dst, dist, symmetric=symmetric)

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Block traffic between hosts a and b (both directions)."""
        self._blocked.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._blocked.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._blocked.clear()

    def isolate(self, name: str) -> None:
        """Partition ``name`` from every other host (zombie scenarios)."""
        for other in self.hosts:
            if other != name:
                self.partition(name, other)

    def rejoin(self, name: str) -> None:
        for other in self.hosts:
            self.heal(name, other)

    def is_blocked(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._blocked

    # ------------------------------------------------------------------
    # transmission (called by Host.send after NIC serialization)
    # ------------------------------------------------------------------
    def _transmit(self, src: Host, dst: str, payload: typing.Any,
                  size_bytes: int, departs_at: float) -> None:
        # One of these per simulated message — the network's hot path.
        # Stats are inlined (record_send stays as the public API) and
        # the partition check allocates no frozenset when no partition
        # is active.
        target = self.hosts.get(dst)
        if target is None:
            raise KeyError(f"unknown destination host: {dst}")
        src_name = src.name
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size_bytes
        stats.payloads_sent += 1
        stats.per_host_sent[src_name] += 1
        stats.per_host_bytes[src_name] += size_bytes
        # Built once: the same instance feeds the taps (documented as
        # non-mutating) and, if the message survives, delivery.
        sim = self.sim
        message = Message(src_name, dst, payload, size_bytes, sim.now)
        if self.taps:
            for tap in self.taps:
                tap(message)
        if self._blocked and frozenset((src_name, dst)) in self._blocked:
            stats.messages_dropped += 1
            stats.payloads_dropped += 1
            return
        if self.drop_rate > 0 and sim.rng.random() < self.drop_rate:
            stats.messages_dropped += 1
            stats.payloads_dropped += 1
            return
        if src_name == dst:
            wire = 0.0  # loopback
        else:
            wire = self.latency.sample(sim.rng, src_name, dst)
        # departs_at >= now by construction (Host.send clamps to now).
        sim._schedule_deliver(departs_at - sim.now + wire, target, message)

    def _transmit_frame(self, src: Host, dst: str,
                        messages: "list[Message]",
                        departs_at: float) -> None:
        """Transmit one coalesced frame (Host._flush_frame).

        One transmission for all of ``messages``: one stats entry, one
        partition check, one drop roll, one latency sample, one
        delivery record.  A single-message buffer still delivers the
        bare Message so the receive side is indistinguishable from the
        uncoalesced path.  Taps observe every contained message — the
        §5.2 payload accounting is per RPC, not per wire transmission.
        """
        target = self.hosts.get(dst)
        if target is None:
            raise KeyError(f"unknown destination host: {dst}")
        src_name = src.name
        stats = self.stats
        count = len(messages)
        size_bytes = 0
        for message in messages:
            size_bytes += message.size_bytes
        stats.messages_sent += 1
        stats.bytes_sent += size_bytes
        stats.payloads_sent += count
        if count > 1:
            stats.frames_sent += 1
            stats.frame_payloads += count
        stats.per_host_sent[src_name] += 1
        stats.per_host_bytes[src_name] += size_bytes
        sim = self.sim
        if self.taps:
            for tap in self.taps:
                for message in messages:
                    tap(message)
        if self._blocked and frozenset((src_name, dst)) in self._blocked:
            stats.messages_dropped += 1
            stats.payloads_dropped += count
            return
        if self.drop_rate > 0 and sim.rng.random() < self.drop_rate:
            stats.messages_dropped += 1
            stats.payloads_dropped += count
            return
        if src_name == dst:
            wire = 0.0  # loopback
        else:
            wire = self.latency.sample(sim.rng, src_name, dst)
        if count == 1:
            payload: typing.Any = messages[0]
        else:
            payload = Frame(src_name, dst, messages, size_bytes, sim.now)
        sim._schedule_deliver(departs_at - sim.now + wire, target, payload)
