"""Unit tests for the simulator core."""

from __future__ import annotations

import pytest

from repro.sim import Simulator


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_run_until_time_advances_clock(sim: Simulator):
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_run_until_past_time_rejected(sim: Simulator):
    sim.run(until=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_run_until_event_returns_value(sim: Simulator):
    event = sim.timeout(4.0, value="v")
    assert sim.run(event) == "v"
    assert sim.now == 4.0


def test_run_until_event_deadlock_detected(sim: Simulator):
    never = sim.event()
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run(never)


def test_same_time_events_fifo(sim: Simulator):
    order = []
    for tag in ("a", "b", "c"):
        sim.schedule_callback(5.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_events_before_deadline_processed(sim: Simulator):
    hits = []
    sim.schedule_callback(3.0, lambda: hits.append(3))
    sim.schedule_callback(7.0, lambda: hits.append(7))
    sim.run(until=5.0)
    assert hits == [3]
    sim.run(until=10.0)
    assert hits == [3, 7]


def test_negative_delay_rejected(sim: Simulator):
    with pytest.raises(ValueError):
        sim.schedule_callback(-1.0, lambda: None)


def test_determinism_same_seed():
    def trace(seed: int) -> list[float]:
        simulator = Simulator(seed=seed)
        samples = []
        def proc():
            for _ in range(20):
                yield simulator.timeout(simulator.rng.uniform(0, 10))
                samples.append(simulator.now)
        simulator.process(proc())
        simulator.run()
        return samples
    assert trace(7) == trace(7)
    assert trace(7) != trace(8)


def test_max_steps_guard(sim: Simulator):
    def forever():
        while True:
            yield sim.timeout(1.0)
    sim.process(forever())
    with pytest.raises(RuntimeError, match="max_steps"):
        sim.run(max_steps=100)


def test_processed_events_counter(sim: Simulator):
    sim.schedule_callback(1.0, lambda: None)
    sim.schedule_callback(2.0, lambda: None)
    sim.run()
    assert sim.processed_events == 2


# ----------------------------------------------------------------------
# end-of-instant hooks (the frame-coalescing flush boundary)
# ----------------------------------------------------------------------
def test_instant_hook_runs_after_now_queue_before_time_advances(
        sim: Simulator):
    order = []
    sim.schedule_callback(0.0, order.append, "entry-1")
    sim.at_instant_end(lambda: order.append(("hook", sim.now)))
    sim.schedule_callback(0.0, order.append, "entry-2")
    sim.schedule_callback(5.0, order.append, "future")
    sim.run()
    assert order == ["entry-1", "entry-2", ("hook", 0.0), "future"]


def test_instant_hook_runs_after_same_time_heap_entries(sim: Simulator):
    """Heap entries at the hook's instant are part of the instant: the
    hook must wait for them even though they arrived via the heap."""
    order = []

    def at_five() -> None:
        order.append("first")
        sim.at_instant_end(lambda: order.append(("hook", sim.now)))
    sim.schedule_callback(5.0, at_five)
    sim.schedule_callback(5.0, order.append, "second")
    sim.schedule_callback(6.0, order.append, "later")
    sim.run()
    assert order == ["first", "second", ("hook", 5.0), "later"]


def test_instant_hook_chains_drain_before_time_moves(sim: Simulator):
    """A hook may enqueue same-instant work and further hooks; all of
    it runs before the clock advances."""
    order = []

    def hook_one() -> None:
        order.append("hook-one")
        sim.schedule_callback(0.0, order.append, "spawned-entry")
        sim.at_instant_end(lambda: order.append("hook-two"))
    sim.at_instant_end(hook_one)
    sim.schedule_callback(3.0, order.append, "future")
    sim.run()
    assert order == ["hook-one", "spawned-entry", "hook-two", "future"]


def test_instant_hooks_carry_args_and_do_not_count_as_events(
        sim: Simulator):
    seen = []
    sim.at_instant_end(seen.append, "x")
    sim.schedule_callback(0.0, lambda: None)
    sim.run()
    assert seen == ["x"]
    assert sim.processed_events == 1  # the callback only, not the hook


def test_step_drains_instant_hooks(sim: Simulator):
    order = []
    sim.at_instant_end(order.append, "hook")
    sim.schedule_callback(1.0, order.append, "entry")
    while sim.step():
        pass
    assert order == ["hook", "entry"]


def test_run_until_deadline_flushes_hooks_at_deadline(sim: Simulator):
    order = []
    sim.schedule_callback(5.0,
                          lambda: sim.at_instant_end(order.append, "hook"))
    sim.run(until=5.0)
    assert order == ["hook"]
    assert sim.now == 5.0


def test_max_steps_catches_self_rearming_instant_hook(sim: Simulator):
    """End-of-instant hooks consume max_steps budget: a hook that keeps
    re-arming itself must trip the runaway backstop, not hang run()."""
    def rearm() -> None:
        sim.at_instant_end(rearm)
    sim.at_instant_end(rearm)
    with pytest.raises(RuntimeError, match="max_steps"):
        sim.run(max_steps=100)
    assert sim.processed_events == 0  # hooks never count as events
