"""Tests for the cluster coordinator: config, reconfiguration (§3.6),
migration, spares."""

from __future__ import annotations

import pytest

from repro.core.config import CurpConfig, ReplicationMode
from repro.harness import build_cluster
from repro.kvstore import ConditionalWrite, Write, key_hash


def curp_cluster(**kwargs):
    defaults = dict(f=3, mode=ReplicationMode.CURP, min_sync_batch=50,
                    idle_sync_delay=200.0, retry_backoff=10.0,
                    rpc_timeout=100.0)
    defaults.update(kwargs)
    return build_cluster(CurpConfig(**defaults))


def test_view_contains_tablets_and_masters():
    cluster = build_cluster(CurpConfig(f=1, mode=ReplicationMode.CURP),
                            n_masters=2)
    view = cluster.coordinator.current_view()
    assert len(view.tablets) == 2
    assert set(view.masters) == {"m0", "m1"}
    # Every hash resolves to exactly one master.
    for h in (0, 2 ** 63, 2 ** 64 - 1):
        assert view.master_for_hash(h) in {"m0", "m1"}


def test_two_masters_route_by_hash():
    cluster = build_cluster(CurpConfig(f=1, mode=ReplicationMode.CURP),
                            n_masters=2)
    client = cluster.new_client()
    for i in range(10):
        cluster.run(client.update(Write(f"key-{i}", i)))
    m0 = cluster.master("m0").stats.updates
    m1 = cluster.master("m1").stats.updates
    assert m0 + m1 == 10
    assert m0 > 0 and m1 > 0  # hashes spread across both


def test_register_client_allocates_leases():
    cluster = curp_cluster()
    a, b = cluster.new_client(), cluster.new_client()
    assert a.tracker.client_id != b.tracker.client_id
    assert not cluster.coordinator.lease_server.is_expired(
        a.tracker.client_id)


def test_replace_witness_full_flow():
    """§3.6: new witness started, master syncs before adopting, version
    bumped, old witness out of the list."""
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    assert cluster.master().unsynced_count == 1
    old = cluster.witness_hosts["m0"][1]
    cluster.network.hosts[old].crash()
    spare = cluster.add_host("w-spare", role="witness")
    new_list = cluster.run(cluster.sim.process(
        cluster.coordinator.replace_witness("m0", old, spare)))
    assert "w-spare" in new_list and old not in new_list
    # The master synced before acknowledging the new list.
    assert cluster.master().unsynced_count == 0
    assert cluster.master().witness_list_version == 1
    managed = cluster.coordinator.masters["m0"]
    assert managed.witnesses == new_list
    # And the system keeps acceptng 1-RTT updates with the new witness.
    outcome = cluster.run(client.update(Write("b", 2)))
    assert outcome.fast_path


def test_stale_client_cannot_complete_via_old_witnesses():
    """§3.6 consistency argument: after a witness swap, a client using
    the old list must be bounced (WRONG_WITNESS_VERSION), not allowed
    to complete against decommissioned witnesses."""
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    old = cluster.witness_hosts["m0"][0]
    spare = cluster.add_host("w-spare", role="witness")
    cluster.run(cluster.sim.process(
        cluster.coordinator.replace_witness("m0", old, spare)))
    # The client still has the version-0 view; its next update must
    # take 2 attempts (error + refreshed retry), never completing with
    # the stale witness set.
    outcome = cluster.run(client.update(Write("b", 2)))
    assert outcome.attempts == 2
    assert client.view.masters["m0"].witness_list_version == 1


def test_replace_backup_brings_newcomer_up_to_date():
    cluster = curp_cluster(min_sync_batch=1, idle_sync_delay=50.0)
    client = cluster.new_client()
    for i in range(5):
        cluster.run(client.update(Write(f"k{i}", i)))
    cluster.settle(1_000.0)
    dead = cluster.backup_hosts["m0"][2]
    cluster.network.hosts[dead].crash()
    spare = cluster.add_host("b-spare", role="backup")
    new_list = cluster.run(cluster.sim.process(
        cluster.coordinator.replace_backup("m0", dead, spare)),
        timeout=1_000_000.0)
    assert "b-spare" in new_list
    newcomer = cluster.coordinator.backup_servers["b-spare"]
    assert newcomer.entry_count() == cluster.master().store.log.end
    # Further writes replicate to the newcomer.
    cluster.run(client.update(Write("after", 9)))
    cluster.settle(1_000.0)
    assert newcomer._values["after"] == 9


def test_migration_moves_range_and_versions():
    cluster = build_cluster(CurpConfig(
        f=1, mode=ReplicationMode.CURP, min_sync_batch=50,
        idle_sync_delay=200.0, rpc_timeout=100.0), n_masters=2)
    client = cluster.new_client()
    # Find a key owned by m0 and bump its version to 3.
    key = next(f"key-{i}" for i in range(100)
               if cluster.coordinator.current_view().master_for_hash(
                   key_hash(f"key-{i}")) == "m0")
    for value in range(3):
        cluster.run(client.update(Write(key, value)))
    h = key_hash(key)
    moved = cluster.run(cluster.sim.process(
        cluster.coordinator.migrate("m0", "m1", h, h + 1)),
        timeout=1_000_000.0)
    assert moved == 1
    assert cluster.coordinator.current_view().master_for_hash(h) == "m1"
    # The version travelled with the object: CAS against version 3 works.
    outcome = cluster.run(client.update(
        ConditionalWrite(key, "migrated", expected_version=3)))
    assert outcome.result[0] == "OK"
    assert cluster.master("m1").store.read(key) == "migrated"
    # Old master rejects; a client with a stale view just retries.
    assert not cluster.master("m0").owns_hash(h)


def test_migration_resets_source_witnesses():
    """§3.6: witnesses are ruled out of migration — the source syncs
    and resets them before the final step."""
    cluster = build_cluster(CurpConfig(
        f=1, mode=ReplicationMode.CURP, min_sync_batch=50,
        idle_sync_delay=10_000.0, rpc_timeout=100.0), n_masters=2)
    client = cluster.new_client()
    key = next(f"key-{i}" for i in range(100)
               if cluster.coordinator.current_view().master_for_hash(
                   key_hash(f"key-{i}")) == "m0")
    cluster.run(client.update(Write(key, 1)))
    witness = cluster.coordinator.witness_servers[
        cluster.witness_hosts["m0"][0]]
    assert witness.cache.occupied_slots() == 1
    h = key_hash(key)
    cluster.run(cluster.sim.process(
        cluster.coordinator.migrate("m0", "m1", h, h + 1)),
        timeout=1_000_000.0)
    assert witness.cache.occupied_slots() == 0
    assert cluster.coordinator.masters["m0"].witness_list_version == 1
    assert cluster.master("m0").unsynced_count == 0


def test_post_cutover_record_for_migrated_key_rejected():
    """ISSUE 5 regression: a witness record for a migrated key arriving
    at the *old* shard's witness after cutover must be rejected — the
    old master will never execute (so never gc) the op, and the key no
    longer routes there (so the §4.5 suspect path cannot reclaim the
    slot either).  Before the fix the record was silently accepted and
    pinned a slot until stale aging."""
    from repro.core.messages import RECORD_REJECTED, RecordArgs, \
        RecordedRequest
    cluster = build_cluster(CurpConfig(
        f=1, mode=ReplicationMode.CURP, min_sync_batch=50,
        idle_sync_delay=200.0, rpc_timeout=100.0), n_masters=2)
    client = cluster.new_client()
    key = next(f"key-{i}" for i in range(100)
               if cluster.coordinator.current_view().master_for_hash(
                   key_hash(f"key-{i}")) == "m0")
    cluster.run(client.update(Write(key, 1)))
    h = key_hash(key)
    cluster.run(cluster.sim.process(
        cluster.coordinator.migrate("m0", "m1", h, h + 1)),
        timeout=1_000_000.0)
    witness_name = cluster.witness_hosts["m0"][0]
    witness = cluster.coordinator.witness_servers[witness_name]
    assert witness.cache.occupied_slots() == 0

    # A stale-routed client's record for the migrated key lands on the
    # old shard's witness after cutover.
    op = Write(key, "stale-attempt")
    record = RecordArgs(master_id="m0", key_hashes=(h,),
                        rpc_id=("stale-client", 1),
                        request=RecordedRequest(op=op,
                                                rpc_id=("stale-client", 1)))

    def stale_record():
        result = yield cluster.coordinator.transport.call(
            witness_name, "record", record, timeout=1_000.0)
        return result
    assert cluster.run(cluster.sim.process(stale_record())) \
        == RECORD_REJECTED
    assert witness.cache.occupied_slots() == 0
    # Keys m0 still owns keep recording in 1 RTT.
    other = next(f"other-{i}" for i in range(100)
                 if cluster.shard_for(f"other-{i}") == "m0")
    outcome = cluster.run(client.update(Write(other, 2)))
    assert outcome.fast_path


def test_set_ranges_evicts_stragglers_but_keeps_owned_records():
    """The cutover set_ranges must evict records that slipped in for
    migrated keys during the migration window — without clearing
    records for keys the master keeps (those may still back completed
    1-RTT updates)."""
    from repro.core.messages import (
        RECORD_ACCEPTED,
        RecordArgs,
        RecordedRequest,
        SetRangesArgs,
    )
    cluster = curp_cluster()
    witness_name = cluster.witness_hosts["m0"][0]
    witness = cluster.coordinator.witness_servers[witness_name]
    lo, hi = cluster.coordinator.masters["m0"].owned_ranges[0]
    migrated_hash, kept_hash = lo + 5, lo + 9

    def record(h, client_tag):
        op = Write(f"k{h}", 1)
        args = RecordArgs(master_id="m0", key_hashes=(h,),
                          rpc_id=(client_tag, 1),
                          request=RecordedRequest(op=op,
                                                  rpc_id=(client_tag, 1)))
        result = yield cluster.coordinator.transport.call(
            witness_name, "record", args, timeout=1_000.0)
        return result
    assert cluster.run(cluster.sim.process(
        record(migrated_hash, "c1"))) == RECORD_ACCEPTED
    assert cluster.run(cluster.sim.process(
        record(kept_hash, "c2"))) == RECORD_ACCEPTED
    assert witness.cache.occupied_slots() == 2

    # Cutover: [lo, lo+8) migrated away.
    def shrink():
        dropped = yield cluster.coordinator.transport.call(
            witness_name, "set_ranges",
            SetRangesArgs(master_id="m0", owned_ranges=((lo + 8, hi),)),
            timeout=1_000.0)
        return dropped
    assert cluster.run(cluster.sim.process(shrink())) == 1
    assert witness.cache.occupied_slots() == 1
    assert witness.records_evicted == 1
    assert witness.owned_ranges == ((lo + 8, hi),)


def test_migrate_aborted_on_dead_destination_restores_source_ownership():
    """If migrate_out succeeded but the destination never takes the
    objects, the abort path must hand the range back to the source —
    otherwise [lo, hi) is owned by nobody while the map still routes
    there, and clients WRONG_SHARD-loop forever."""
    from repro.core.recovery import RecoveryFailed
    cluster = build_cluster(CurpConfig(
        f=1, mode=ReplicationMode.CURP, min_sync_batch=50,
        idle_sync_delay=200.0, rpc_timeout=100.0, retry_backoff=10.0),
        n_masters=2)
    client = cluster.new_client()
    key = next(f"key-{i}" for i in range(100)
               if cluster.shard_for(f"key-{i}") == "m0")
    cluster.run(client.update(Write(key, 1)))
    h = key_hash(key)
    cluster.network.hosts[cluster.coordinator.masters["m1"].host].crash()
    with pytest.raises(RecoveryFailed):
        cluster.run(cluster.sim.process(
            cluster.coordinator.migrate("m0", "m1", h, h + 1)),
            timeout=50_000_000.0)
    # The source still owns the range — coordinator bookkeeping, the
    # live master, and the routing map all agree — and serves it.
    assert cluster.shard_for(key) == "m0"
    assert cluster.master("m0").owns_hash(h)
    outcome = cluster.run(client.update(Write(key, 2)),
                          timeout=10_000_000.0)
    assert outcome is not None
    assert cluster.run(client.read(key), timeout=10_000_000.0) == 2


def test_migrate_in_is_idempotent_on_coordinator_retry():
    """A lost migrate_in reply makes the coordinator re-send; the
    destination must not grow a duplicate tablet (the shard map rejects
    overlaps)."""
    cluster = build_cluster(CurpConfig(
        f=1, mode=ReplicationMode.CURP, min_sync_batch=50,
        idle_sync_delay=200.0, rpc_timeout=100.0), n_masters=2)
    master = cluster.master("m1")
    lo, hi = cluster.coordinator.masters["m0"].owned_ranges[0]
    cut_lo, cut_hi = lo + 100, lo + 200

    def deliver_twice():
        for _ in range(2):
            result = yield cluster.coordinator.transport.call(
                cluster.coordinator.masters["m1"].host, "migrate_in",
                (cut_lo, cut_hi, ()), timeout=1_000.0)
            assert result == "OK"
    cluster.run(cluster.sim.process(deliver_twice()), timeout=1_000_000.0)
    assert master.owned_ranges.count((cut_lo, cut_hi)) == 1


def test_failure_detector_recovers_crashed_master():
    from repro.cluster import FailureDetector
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    standby = cluster.add_host("fd-standby", role="master")
    detector = FailureDetector(cluster.coordinator, [standby],
                               interval=500.0, miss_threshold=2,
                               ping_timeout=100.0)
    detector.start()
    cluster.master().host.crash()
    cluster.sim.run(until=cluster.sim.now + 50_000.0)
    detector.stop()
    assert detector.recoveries_started == 1
    recovered = cluster.coordinator.masters["m0"].master
    assert recovered.active
    assert recovered.store.read("a") == 1
    # Client transparently continues.
    outcome = cluster.run(client.update(Write("b", 2)),
                          timeout=1_000_000.0)
    assert outcome.result >= 1  # version floor jumps after recovery


def test_failure_detector_does_not_fire_on_healthy_master():
    from repro.cluster import FailureDetector
    cluster = curp_cluster()
    detector = FailureDetector(cluster.coordinator, [], interval=500.0,
                               miss_threshold=2)
    detector.start()
    cluster.sim.run(until=10_000.0)
    detector.stop()
    assert detector.recoveries_started == 0


def test_backup_spare_pool_used_on_recovery():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    spare = cluster.add_host("bspare", role="backup")
    cluster.coordinator.backup_spares.append(spare)
    cluster.network.hosts[cluster.backup_hosts["m0"][0]].crash()
    cluster.master().host.crash()
    standby = cluster.add_host("standby", role="master")
    cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master("m0", standby)),
        timeout=10_000_000.0)
    managed = cluster.coordinator.masters["m0"]
    assert len(managed.backups) == 3
    assert "bspare" in managed.backups
    assert cluster.coordinator.backup_servers["bspare"].entry_count() \
        == managed.master.store.log.end
