"""Measurement utilities: latency recorders, distribution series, and
the ASCII table/figure renderers the benchmarks print."""

from repro.metrics.stats import LatencyRecorder, percentile
from repro.metrics.series import ccdf_points, cdf_points
from repro.metrics.tables import format_table, format_distribution_rows

__all__ = [
    "LatencyRecorder",
    "ccdf_points",
    "cdf_points",
    "format_distribution_rows",
    "format_table",
    "percentile",
]
