"""Multi-key verification for cross-shard transactions (§B.2).

:class:`RecordedCrossShardTransaction` hooks the prepare and
compensation paths of
:class:`~repro.core.transactions.CrossShardTransaction` so every
state-changing step lands in the shared :class:`History` as per-key
register writes:

- an **applied prepare** is a write of the staged value (invoke at
  fan-out, complete when the shard acked) — the same shape as any
  other write, so the existing per-key Wing&Gong search checks it;
- a **compensation** is a write restoring the pre-transaction value
  (``None`` for a key the prepare created);
- a prepare that MISMATCHed (no effects) or never left the client is
  *removed* from the history;
- a prepare whose outcome is unknown (client gave up mid-crash) stays
  **pending** — the checker may linearize it anywhere after the
  invocation or drop it, exactly the §3.4 treatment of a client crash,
  and exactly right for a witnessed prepare that recovery may yet
  replay.

Per-key linearizability over these records already rules out aborted
residue mechanically: the compensation write is program-ordered after
the prepare write, so any later read observing the aborted value has
no legal linearization.

:func:`audit_atomicity` adds the *cross*-key check linearizability
cannot see: a committed transaction must have applied on **every**
shard (no torn multi-shard write), and an aborted one must have
unwound (or confirmed superseded) every key it prepared.
"""

from __future__ import annotations

import dataclasses

from repro.core.client import ClientGaveUp
from repro.core.transactions import CrossShardTransaction
from repro.kvstore.operations import KEEP
from repro.verify.history import History


class AtomicityError(AssertionError):
    """A cross-shard transaction committed torn or left residue."""


class RecordedCrossShardTransaction(CrossShardTransaction):
    """A cross-shard transaction whose effects are history-recorded."""

    def __init__(self, client, history: History, ordered: bool = False):
        super().__init__(client, ordered=ordered)
        self.history = history
        #: keys whose prepare applied (shard acked OK)
        self.applied_keys: set[str] = set()
        #: key → "UNDONE" | "SUPERSEDED" from compensations
        self.unwound: dict[str, str] = {}

    def _begin_write(self, key: str, value):
        return self.history.begin(self.client.tracker.client_id, key,
                                  "write", value, self.client.sim.now)

    def _prepare_one(self, op, rpc_id):
        records = {}
        for key, value, _expected in op.items:
            if value is KEEP:
                continue  # validate-only: no state change to record
            records[key] = self._begin_write(key, value)
        outcome = yield from super()._prepare_one(op, rpc_id)
        status, payload = outcome
        now = self.client.sim.now
        if status == "ok" and payload.result[0] == "OK":
            for key, record in records.items():
                self.history.complete(record, None, now)
                self.applied_keys.add(key)
        elif status == "ok" or not isinstance(payload, ClientGaveUp):
            # MISMATCH (no effects) or the rpc was never sent: the
            # writes did not happen — drop them from the history.
            for record in records.values():
                self.history.records.remove(record)
        # else: ClientGaveUp — outcome unknown, records stay pending.
        return outcome

    def _compensate_one(self, txn_id, undo):
        records = {}
        for key, old_value, old_version, _prepared in undo:
            restored = None if old_version == 0 else old_value
            records[key] = self._begin_write(key, restored)
        # A ClientGaveUp propagates (commit() marks the shard in
        # doubt); the records stay pending, matching the unknown
        # on-disk outcome.
        outcome = yield from super()._compensate_one(txn_id, undo)
        now = self.client.sim.now
        disposition = dict(outcome.result[1])
        for key, record in records.items():
            if disposition.get(key) == "UNDONE":
                self.history.complete(record, None, now)
            else:
                # SUPERSEDED: a later committed write already replaced
                # the prepared value; the compensation wrote nothing.
                self.history.records.remove(record)
            self.unwound[key] = disposition.get(key, "SUPERSEDED")
        return outcome


@dataclasses.dataclass
class TxnTrace:
    """One driven transaction attempt plus its observed fate.

    ``status`` is what the *driver* observed: ``"committed"`` (commit
    returned), ``"aborted"`` (:class:`TransactionAborted`), or
    ``"unknown"`` (:class:`TransactionInDoubt`, client crash — treated
    leniently, the §3.4 reading)."""

    txn: RecordedCrossShardTransaction
    status: str


def audit_atomicity(traces) -> list[str]:
    """Cross-key all-or-nothing audit; returns violation strings.

    - a **committed** transaction must have applied its write on every
      staged key and unwound none of them (a torn multi-shard commit
      shows up here even when every per-key history linearizes);
    - an **aborted** transaction must have unwound (or confirmed
      superseded) every key whose prepare applied;
    - an **unknown** transaction is skipped — its pending history
      records already let the checker consider both outcomes.
    """
    violations = []
    for trace in traces:
        txn, status = trace.txn, trace.status
        staged = set(txn._writes)
        if status == "committed":
            missing = staged - txn.applied_keys
            if missing:
                violations.append(
                    f"torn commit: staged {sorted(staged)} but only "
                    f"{sorted(txn.applied_keys)} applied "
                    f"(missing {sorted(missing)})")
            if txn.unwound:
                violations.append(
                    f"committed transaction was unwound on "
                    f"{sorted(txn.unwound)}")
        elif status == "aborted":
            residue = txn.applied_keys - set(txn.unwound)
            if residue:
                violations.append(
                    f"aborted transaction left residue on "
                    f"{sorted(residue)}")
        elif status != "unknown":
            violations.append(f"unrecognized status {status!r}")
    return violations
