"""Request/response transport bound to one host.

One :class:`RpcTransport` per host.  Handlers are registered per method
name and may be:

- plain functions ``handler(args, ctx) -> value`` — the return value is
  the reply, or
- generator functions that yield simulator events (e.g. a master
  handler that executes, replies early via ``ctx.reply``, then yields on
  the backup sync).  The generator runs as a host process, so it dies
  if the host crashes mid-handler — exactly the failure CURP recovery
  has to cope with.
"""

from __future__ import annotations

import inspect
import typing

from repro.net.host import Host
from repro.rpc.errors import AppError, RemoteError, RpcTimeout
from repro.sim.events import Event


class RpcRequest:
    """Request frame (slotted: one per simulated RPC — hot path)."""

    __slots__ = ("seq", "reply_to", "method", "args")

    def __init__(self, seq: int, reply_to: str, method: str,
                 args: typing.Any):
        self.seq = seq
        self.reply_to = reply_to
        self.method = method
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RpcRequest(seq={self.seq}, reply_to={self.reply_to!r}, "
                f"method={self.method!r}, args={self.args!r})")


class RpcResponse:
    """Response frame (slotted: one per simulated RPC — hot path)."""

    __slots__ = ("seq", "ok", "value", "error_code", "error_info")

    def __init__(self, seq: int, ok: bool, value: typing.Any = None,
                 error_code: str | None = None,
                 error_info: typing.Any = None):
        self.seq = seq
        self.ok = ok
        self.value = value
        self.error_code = error_code
        self.error_info = error_info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RpcResponse(seq={self.seq}, ok={self.ok}, "
                f"value={self.value!r}, error_code={self.error_code!r}, "
                f"error_info={self.error_info!r})")


class RpcContext:
    """Handed to handlers: request metadata + the early-reply hook."""

    def __init__(self, transport: "RpcTransport", request: RpcRequest,
                 response_size: int):
        self._transport = transport
        self._request = request
        self._response_size = response_size
        self.replied = False
        #: source host name of the request
        self.src = request.reply_to

    def reply(self, value: typing.Any = None) -> None:
        """Send the response now; the handler may keep running."""
        if self.replied:
            raise RuntimeError("reply() called twice")
        self.replied = True
        self._transport._respond(
            self._request,
            RpcResponse(seq=self._request.seq, ok=True, value=value),
            self._response_size)

    def reply_error(self, code: str, info: typing.Any = None) -> None:
        if self.replied:
            raise RuntimeError("reply() called twice")
        self.replied = True
        self._transport._respond(
            self._request,
            RpcResponse(seq=self._request.seq, ok=False,
                        error_code=code, error_info=info),
            self._response_size)


class RpcTransport:
    """RPC endpoint for a single host."""

    #: wire size (bytes) charged per request/response when unspecified;
    #: roughly a 100 B object write plus headers, per the paper's workloads
    DEFAULT_SIZE = 130

    #: sentinel a handler may return to take ownership of replying later
    #: (e.g. an event-loop server that batches replies across requests)
    DEFERRED = object()

    def __init__(self, host: Host):
        self.host = host
        self.sim = host.sim
        self._handlers: dict[str, typing.Callable] = {}
        self._pending: dict[int, Event] = {}
        self._next_seq = 0
        host.set_message_handler(self._on_message)
        host.on_crash(self._on_crash)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def call(self, dst: str, method: str, args: typing.Any = None,
             timeout: float | None = None,
             request_size: int | None = None) -> Event:
        """Send a request; returns an event for the response value.

        The event fails with :class:`RpcTimeout` if no response arrives
        within ``timeout`` µs, with :class:`AppError` if the handler
        raised one, or with :class:`RemoteError` on unexpected handler
        exceptions.
        """
        self._next_seq += 1
        seq = self._next_seq
        result = Event(self.sim)
        self._pending[seq] = result
        request = RpcRequest(seq=seq, reply_to=self.host.name,
                             method=method, args=args)
        self.host.send(dst, request, size_bytes=request_size or self.DEFAULT_SIZE)
        if timeout is not None:
            self.sim.schedule_callback(timeout, self._expire,
                                       seq, dst, method, timeout)
        return result

    def _expire(self, seq: int, dst: str, method: str,
                timeout: float) -> None:
        pending = self._pending.pop(seq, None)
        if pending is not None and not pending.triggered:
            pending.fail(RpcTimeout(dst, method, timeout))

    def _on_crash(self) -> None:
        # In-flight calls die with the host; waiting processes were
        # interrupted by Host.crash already, so just drop the futures.
        self._pending.clear()

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def register(self, method: str, handler: typing.Callable) -> None:
        """Register ``handler(args, ctx)`` for a method name."""
        if method in self._handlers:
            raise ValueError(f"handler already registered for {method}")
        self._handlers[method] = handler

    def unregister(self, method: str) -> None:
        self._handlers.pop(method, None)

    def _respond(self, request: RpcRequest, response: RpcResponse,
                 size: int) -> None:
        self.host.send(request.reply_to, response, size_bytes=size)

    # ------------------------------------------------------------------
    # message pump
    # ------------------------------------------------------------------
    def _on_message(self, message: typing.Any) -> None:
        payload = message.payload
        if isinstance(payload, RpcRequest):
            self._handle_request(payload)
        elif isinstance(payload, RpcResponse):
            self._handle_response(payload)
        # anything else: not RPC traffic; ignore

    def _handle_request(self, request: RpcRequest) -> None:
        handler = self._handlers.get(request.method)
        ctx = RpcContext(self, request, response_size=self.DEFAULT_SIZE)
        if handler is None:
            ctx.reply_error("NO_SUCH_METHOD", request.method)
            return
        try:
            outcome = handler(request.args, ctx)
        except AppError as error:
            if not ctx.replied:
                ctx.reply_error(error.code, error.info)
            return
        except Exception as error:  # noqa: BLE001 - serialize to caller
            if not ctx.replied:
                ctx.reply_error("REMOTE_ERROR", f"{type(error).__name__}: {error}")
            return
        if outcome is RpcTransport.DEFERRED:
            return
        if inspect.isgenerator(outcome):
            self._run_handler_process(outcome, ctx, request)
        elif not ctx.replied:
            ctx.reply(outcome)

    def _run_handler_process(self, generator: typing.Generator,
                             ctx: RpcContext, request: RpcRequest) -> None:
        process = self.host.spawn(generator, name=f"rpc:{request.method}")

        def finish(event: Event) -> None:
            if ctx.replied:
                return
            if event.ok:
                ctx.reply(event._value)
            else:
                error = event.exception
                if isinstance(error, AppError):
                    ctx.reply_error(error.code, error.info)
                else:
                    # Host crash interrupts leave no reply — the caller
                    # times out, as with a real crashed server.
                    from repro.sim.processes import Interrupt
                    if not isinstance(error, Interrupt):
                        ctx.reply_error("REMOTE_ERROR",
                                        f"{type(error).__name__}: {error}")
        process.add_callback(finish)

    def _handle_response(self, response: RpcResponse) -> None:
        result = self._pending.pop(response.seq, None)
        if result is None or result.triggered:
            return  # timed out or duplicate
        if response.ok:
            result.succeed(response.value)
        else:
            if response.error_code == "REMOTE_ERROR":
                result.fail(RemoteError(self.host.name, "?", str(response.error_info)))
            else:
                result.fail(AppError(response.error_code or "UNKNOWN",
                                     response.error_info))
