"""The witness's set-associative request store (§4.2, §B.1).

Recording is deliberately cache-like so a witness burns almost no CPU:
a request on key ``k`` maps to set ``hash(k) mod n_sets``; the witness
probes that set (an O(1) ``{key_hash: position}`` index over its
``associativity`` slots) and

- **rejects** if any occupied slot holds a *different* request with the
  same 64-bit key hash (not commutative — §3.2.2), or
- **rejects** if the set has no free slot (a *collision*, the subject
  of the Figure 11 associativity study), else
- **accepts**, writing the request into one slot per affected key
  (multi-object updates need a commutative free slot in *every*
  relevant set, §4.2).

Uncollected-garbage detection (§4.5): the cache counts gc rounds; when
a record that has survived ``stale_threshold`` gc rounds causes a
rejection, it is reported back to the master through the next gc
response so the master can retry/sync/re-collect it.

This class is a pure data structure (no simulator dependency) so the
Figure 11 benchmark can drive it millions of times cheaply.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(slots=True)
class WitnessRecord:
    """One slot's contents."""

    key_hash: int
    rpc_id: typing.Any
    request: typing.Any
    #: value of the cache's gc counter when this record was written
    gc_generation: int


class WitnessCache:
    """Fixed-size set-associative store of client update requests."""

    def __init__(self, slots: int = 4096, associativity: int = 4,
                 stale_threshold: int = 3):
        if slots < 1 or associativity < 1:
            raise ValueError("slots and associativity must be >= 1")
        if slots % associativity != 0:
            raise ValueError(
                f"slots ({slots}) must be a multiple of associativity "
                f"({associativity})")
        self.slots = slots
        self.associativity = associativity
        self.n_sets = slots // associativity
        self.stale_threshold = stale_threshold
        self._sets: list[list[WitnessRecord | None]] = [
            [None] * associativity for _ in range(self.n_sets)]
        #: per-set {key_hash: slot position} — because accepted requests
        #: are pairwise commutative, a key hash occupies at most one slot
        #: per set, so record/commutes_with/gc are O(keys) dict lookups
        #: instead of O(keys × associativity) scans.
        self._index: list[dict[int, int]] = [{} for _ in range(self.n_sets)]
        self._gc_rounds = 0
        #: rejected-against records suspected as uncollected garbage,
        #: keyed by (key_hash, rpc_id); drained by the next gc response
        self._suspects: dict[tuple[int, typing.Any], typing.Any] = {}
        # counters for §5.2-style accounting
        self.accepts = 0
        self.rejects_commutativity = 0
        self.rejects_capacity = 0

    # ------------------------------------------------------------------
    # record
    # ------------------------------------------------------------------
    def record(self, key_hashes: typing.Sequence[int], rpc_id: typing.Any,
               request: typing.Any) -> bool:
        """Try to save a request; True = accepted.

        Duplicate records (same rpc_id — a client retry) are accepted
        idempotently.
        """
        if not key_hashes:
            raise ValueError("record() needs at least one key hash")
        if len(key_hashes) == 1:
            # Single-key fast path: the overwhelmingly common shape
            # (every basic update touches one object, §4.2).
            key_hash = key_hashes[0]
            set_index = key_hash % self.n_sets
            index = self._index[set_index]
            position = index.get(key_hash)
            if position is not None:
                slot = self._sets[set_index][position]
                if slot.rpc_id == rpc_id:
                    self.accepts += 1  # idempotent retry
                    return True
                self._note_suspect(slot)
                self.rejects_commutativity += 1
                return False
            if len(index) >= self.associativity:
                self.rejects_capacity += 1
                return False
            row = self._sets[set_index]
            position = row.index(None)  # lowest free way, as before
            row[position] = WitnessRecord(key_hash, rpc_id, request,
                                          self._gc_rounds)
            index[key_hash] = position
            self.accepts += 1
            return True
        # A request that touches the same key twice needs only one slot
        # for it; dedupe up front so the capacity check doesn't demand
        # free slots pass 2 will never consume.
        unique_hashes: typing.Iterable[int] = dict.fromkeys(key_hashes)
        # Pass 1: commutativity + capacity check over every affected set.
        needed_per_set: dict[int, int] = {}
        for key_hash in unique_hashes:
            set_index = key_hash % self.n_sets
            position = self._index[set_index].get(key_hash)
            if position is not None:
                slot = self._sets[set_index][position]
                if slot.rpc_id == rpc_id:
                    continue  # idempotent retry
                self._note_suspect(slot)
                self.rejects_commutativity += 1
                return False
            needed_per_set[set_index] = needed_per_set.get(set_index, 0) + 1
        for set_index, needed in needed_per_set.items():
            if self.associativity - len(self._index[set_index]) < needed:
                self.rejects_capacity += 1
                return False
        # Pass 2: write one slot per key (all-or-nothing guaranteed above).
        for key_hash in unique_hashes:
            set_index = key_hash % self.n_sets
            index = self._index[set_index]
            if key_hash in index:
                continue  # idempotent duplicate for this key
            row = self._sets[set_index]
            position = row.index(None)  # lowest free way, as before
            row[position] = WitnessRecord(key_hash, rpc_id, request,
                                          self._gc_rounds)
            index[key_hash] = position
        self.accepts += 1
        return True

    def _note_suspect(self, record: WitnessRecord) -> None:
        if self._gc_rounds - record.gc_generation >= self.stale_threshold:
            self._suspects[(record.key_hash, record.rpc_id)] = record.request

    # ------------------------------------------------------------------
    # commutativity probe (§A.1 consistent backup reads)
    # ------------------------------------------------------------------
    def commutes_with(self, key_hashes: typing.Sequence[int]) -> bool:
        """Would an operation on these keys commute with every saved
        request?  (Used by readers checking backup freshness.)"""
        for key_hash in key_hashes:
            if key_hash in self._index[key_hash % self.n_sets]:
                return False
        return True

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc(self, pairs: typing.Iterable[tuple[int, typing.Any]]
           ) -> list[typing.Any]:
        """Drop records matching (key_hash, rpc_id) pairs.

        Unknown pairs are ignored (the record RPC may have been
        rejected, §4.5).  Returns requests suspected as uncollected
        garbage accumulated since the last gc (drained on return).
        """
        return self.gc_batch(pairs, rounds=1)

    def gc_batch(self, pairs: typing.Iterable[tuple[int, typing.Any]],
                 rounds: int = 1) -> list[typing.Any]:
        """Batched drop path: one pass over pairs a master coalesced
        from ``rounds`` sync rounds.

        Advances the stale-suspect aging clock by ``rounds`` so that
        coalescing N rounds into one RPC ages surviving records exactly
        as N per-round gcs would have.  Unknown (key_hash, rpc_id)
        pairs are a harmless no-op, as with :meth:`gc`.
        """
        self._gc_rounds += rounds
        n_sets = self.n_sets
        sets = self._sets
        indexes = self._index
        suspects = self._suspects
        for key_hash, rpc_id in pairs:
            set_index = key_hash % n_sets
            index = indexes[set_index]
            position = index.get(key_hash)
            if position is not None:
                row = sets[set_index]
                if row[position].rpc_id == rpc_id:
                    row[position] = None
                    del index[key_hash]
            if suspects:
                suspects.pop((key_hash, rpc_id), None)
        stale = list(self._suspects.values())
        self._suspects.clear()
        return stale

    def drop_outside(self, ranges: typing.Sequence[tuple[int, int]]) -> int:
        """Evict every record whose key hash falls outside ``ranges``.

        Used at migration cutover (§3.6): records for keys that left
        the master's ownership can never be collected by that master's
        sync+gc cycle, so they are dropped eagerly rather than pinning
        slots until stale-suspect aging.  Returns the number of slots
        freed.  Matching suspects are forgotten too — the master no
        longer owns the key, so replaying them would be wrong.
        """
        dropped = 0
        for set_index, index in enumerate(self._index):
            doomed = [key_hash for key_hash in index
                      if not any(lo <= key_hash < hi for lo, hi in ranges)]
            row = self._sets[set_index]
            for key_hash in doomed:
                row[index.pop(key_hash)] = None
                dropped += 1
        if self._suspects:
            for key in [key for key in self._suspects
                        if not any(lo <= key[0] < hi for lo, hi in ranges)]:
                del self._suspects[key]
        return dropped

    # ------------------------------------------------------------------
    # recovery / lifecycle
    # ------------------------------------------------------------------
    def all_requests(self) -> list[typing.Any]:
        """Unique saved requests (a multi-key request appears once)."""
        seen: dict[typing.Any, typing.Any] = {}
        for row in self._sets:
            for slot in row:
                if slot is not None and slot.rpc_id not in seen:
                    seen[slot.rpc_id] = slot.request
        return list(seen.values())

    def clear(self) -> None:
        self._sets = [[None] * self.associativity for _ in range(self.n_sets)]
        self._index = [{} for _ in range(self.n_sets)]
        self._suspects.clear()
        self._gc_rounds = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def occupied_slots(self) -> int:
        return sum(len(index) for index in self._index)

    @property
    def gc_rounds(self) -> int:
        return self._gc_rounds

    def memory_bytes(self, slot_size: int = 2048) -> int:
        """§5.2 accounting: paper uses 2 KB slots → ~9 MB per master."""
        metadata = 24 * self.slots  # key hash + rpc id + generation
        return self.slots * slot_size + metadata
