"""Unit tests for the CI perf-regression gate (tools/bench_compare.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
_spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO_ROOT / "tools" / "bench_compare.py")
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def snapshot(dispatch=6_000_000, records=800_000, rpc=200_000,
             fig6=170_000, speedup=3.8, fig6_coalesced=170_000,
             messages_per_update=2.3, rebalance_ops=1_300_000,
             overload_goodput=39_900, recovery_time=1_250.0,
             unavailability=2_000.0, parallel_speedup=2.9,
             fast_commit_rate=0.98) -> dict:
    return {
        "event_loop": {"events_per_sec": dispatch,
                       "speedup_vs_legacy": speedup,
                       "schedule_dispatch_events_per_sec": dispatch // 2},
        "witness": {"records_per_sec": records},
        "rpc": {"roundtrips_per_sec": rpc,
                "roundtrips_per_sec_yield": rpc * 3 // 4,
                "messages_per_update": messages_per_update},
        "fig6_smoke": {"events_per_sec": fig6,
                       "ops_per_sec": 5_500},
        "fig6_smoke_coalesced": {"events_per_sec": fig6_coalesced},
        "rebalance": {"aggregate_ops_per_sec": rebalance_ops,
                      "speedup": 1.8,
                      "hot_shard_share_on": 0.27},
        "overload": {"goodput_at_saturation": overload_goodput,
                     "retention": 0.99,
                     "collapse_ratio_off": 0.04,
                     "quiet_throttle_rate": 0.0},
        "recovery": {"time_to_recover": recovery_time,
                     "speedup_4_vs_1": 3.1,
                     "compaction": {"sync_p99_on": 28.5,
                                    "curp_p99_on": 4.0}},
        "availability": {
            "unavailability_window": unavailability,
            "scenarios": {
                "kill_master": {"time_to_detect": 2_076.0,
                                "mttr": 2_096.0},
                "gray_witness": {"time_to_detect": 4_730.0},
                "one_way_partition": {"goodput_retained": 1.0}}},
        "parallel_sim": {"speedup_4p": parallel_speedup,
                         "speedup_2p": 1.6,
                         "critical_path_4p_seconds": 0.83},
        "transactions": {"fast_commit_rate": fast_commit_rate,
                         "commit_p50": 12.0,
                         "contended_abort_rate": 0.33},
    }


def test_within_threshold_passes():
    rows, failures = bench_compare.compare(
        snapshot(), snapshot(dispatch=5_000_000, records=700_000),
        threshold=0.25)
    assert failures == []
    gated = {row["name"]: row for row in rows if row["gated"]}
    assert gated["dispatch events/s"]["status"] == "ok"
    assert gated["witness records/s"]["status"] == "ok"


def test_gated_regression_fails():
    rows, failures = bench_compare.compare(
        snapshot(), snapshot(dispatch=4_000_000), threshold=0.25)
    assert len(failures) == 1
    assert "dispatch events/s" in failures[0]
    gated = {row["name"]: row for row in rows if row["gated"]}
    assert gated["dispatch events/s"]["status"] == "REGRESSION"
    assert gated["dispatch events/s"]["delta"] < -0.25


def test_rpc_roundtrips_regression_gates():
    """ISSUE 3 promoted rpc roundtrips/s from info to gated."""
    _rows, failures = bench_compare.compare(
        snapshot(), snapshot(rpc=10_000), threshold=0.25)
    assert len(failures) == 1
    assert "rpc roundtrips/s" in failures[0]


def test_fig6_smoke_regression_gates():
    _rows, failures = bench_compare.compare(
        snapshot(), snapshot(fig6=100_000), threshold=0.25)
    assert len(failures) == 1
    assert "fig6 smoke events/s" in failures[0]


def test_info_metric_regression_does_not_fail():
    """The yield-path roundtrip rate stays informational."""
    candidate = snapshot()
    candidate["rpc"]["roundtrips_per_sec_yield"] = 10_000
    _rows, failures = bench_compare.compare(
        snapshot(), candidate, threshold=0.25)
    assert failures == []


def test_improvement_passes():
    _rows, failures = bench_compare.compare(
        snapshot(), snapshot(dispatch=9_000_000, records=1_300_000),
        threshold=0.25)
    assert failures == []


def test_missing_info_metric_is_na_not_failure():
    """Old baselines without the op-path series must still compare."""
    rows, failures = bench_compare.compare(snapshot(), snapshot(),
                                           threshold=0.25)
    assert failures == []
    info = {row["name"]: row for row in rows if not row["gated"]}
    assert info["curp op path f=3 ops/s"]["status"] == "n/a"


def test_missing_gated_metric_fails_the_gate():
    """Schema drift must not silently disable the gate."""
    rows, failures = bench_compare.compare(
        snapshot(), {"event_loop": {}, "witness": {}}, threshold=0.25)
    assert len(failures) == 13  # every gated metric uncomparable
    gated = {row["name"]: row for row in rows if row["gated"]}
    assert gated["dispatch events/s"]["status"] == "MISSING"
    assert gated["witness records/s"]["status"] == "MISSING"
    assert gated["dispatch speedup vs legacy"]["status"] == "MISSING"
    assert gated["rpc roundtrips/s"]["status"] == "MISSING"
    assert gated["fig6 smoke events/s"]["status"] == "MISSING"
    assert gated["fig6 smoke events/s (coalesced)"]["status"] == "MISSING"
    assert gated["rpc messages/update (coalesced)"]["status"] == "MISSING"
    assert gated["rebalance aggregate ops/s"]["status"] == "MISSING"
    assert gated["overload goodput@10x ops/s"]["status"] == "MISSING"
    assert gated["recovery time-to-recover (µs)"]["status"] == "MISSING"
    assert (gated["availability unavailability window (µs)"]["status"]
            == "MISSING")
    assert gated["parallel sim speedup @4p"]["status"] == "MISSING"
    assert gated["transactions fast-commit rate"]["status"] == "MISSING"


# ----------------------------------------------------------------------
# ISSUE 5: the rebalanced skewed-YCSB aggregate gate
# ----------------------------------------------------------------------
def test_rebalance_aggregate_regression_gates():
    """A drop in the deterministic rebalanced aggregate (the balancer
    stopped balancing, or the balanced placement got slower) fails."""
    rows, failures = bench_compare.compare(
        snapshot(), snapshot(rebalance_ops=800_000), threshold=0.25)
    assert len(failures) == 1
    assert "rebalance aggregate ops/s" in failures[0]
    gated = {row["name"]: row for row in rows if row["gated"]}
    assert gated["rebalance aggregate ops/s"]["status"] == "REGRESSION"


def test_rebalance_speedup_is_informational():
    candidate = snapshot()
    candidate["rebalance"]["speedup"] = 1.0
    candidate["rebalance"]["hot_shard_share_on"] = 0.45
    _rows, failures = bench_compare.compare(
        snapshot(), candidate, threshold=0.25)
    assert failures == []


# ----------------------------------------------------------------------
# ISSUE 4: the coalesced smoke + the lower-is-better message floor
# ----------------------------------------------------------------------
def test_coalesced_fig6_smoke_regression_gates():
    _rows, failures = bench_compare.compare(
        snapshot(), snapshot(fig6_coalesced=100_000), threshold=0.25)
    assert len(failures) == 1
    assert "fig6 smoke events/s (coalesced)" in failures[0]


def test_messages_per_update_rise_fails_the_gate():
    """messages/update is lower-is-better: a rise past the threshold
    (frames silently not coalescing any more) must fail."""
    rows, failures = bench_compare.compare(
        snapshot(), snapshot(messages_per_update=8.2), threshold=0.25)
    assert len(failures) == 1
    assert "rpc messages/update (coalesced)" in failures[0]
    gated = {row["name"]: row for row in rows if row["gated"]}
    row = gated["rpc messages/update (coalesced)"]
    assert row["status"] == "REGRESSION"
    assert row["delta"] > 0.25


def test_messages_per_update_drop_passes():
    """Falling below the baseline is an improvement, not a regression."""
    _rows, failures = bench_compare.compare(
        snapshot(), snapshot(messages_per_update=1.1), threshold=0.25)
    assert failures == []


# ----------------------------------------------------------------------
# ISSUE 6: the defended goodput-at-saturation gate
# ----------------------------------------------------------------------
def test_overload_goodput_regression_gates():
    """A drop in the deterministic defended goodput at 10× offered load
    (admission control / backpressure stopped holding the curve) fails."""
    rows, failures = bench_compare.compare(
        snapshot(), snapshot(overload_goodput=20_000), threshold=0.25)
    assert len(failures) == 1
    assert "overload goodput@10x ops/s" in failures[0]
    gated = {row["name"]: row for row in rows if row["gated"]}
    assert gated["overload goodput@10x ops/s"]["status"] == "REGRESSION"


def test_overload_side_metrics_are_informational():
    candidate = snapshot()
    candidate["overload"]["retention"] = 0.5
    candidate["overload"]["collapse_ratio_off"] = 0.9
    _rows, failures = bench_compare.compare(
        snapshot(), candidate, threshold=0.25)
    assert failures == []


# ----------------------------------------------------------------------
# ISSUE 7: the partitioned-recovery lower-is-better gate
# ----------------------------------------------------------------------
def test_recovery_time_rise_fails_the_gate():
    """time-to-recover is lower-is-better: a rise past the threshold
    (striped reads / parallel absorb got slower) must fail."""
    rows, failures = bench_compare.compare(
        snapshot(), snapshot(recovery_time=2_500.0), threshold=0.25)
    assert len(failures) == 1
    assert "recovery time-to-recover (µs)" in failures[0]
    gated = {row["name"]: row for row in rows if row["gated"]}
    row = gated["recovery time-to-recover (µs)"]
    assert row["status"] == "REGRESSION"
    assert row["delta"] > 0.25


def test_recovery_time_drop_passes():
    """Recovering faster than the baseline is an improvement."""
    _rows, failures = bench_compare.compare(
        snapshot(), snapshot(recovery_time=800.0), threshold=0.25)
    assert failures == []


def test_recovery_side_metrics_are_informational():
    candidate = snapshot()
    candidate["recovery"]["speedup_4_vs_1"] = 1.2
    candidate["recovery"]["compaction"]["curp_p99_on"] = 30.0
    _rows, failures = bench_compare.compare(
        snapshot(), candidate, threshold=0.25)
    assert failures == []


# ----------------------------------------------------------------------
# ISSUE 8: the unavailability-window lower-is-better gate
# ----------------------------------------------------------------------
def test_unavailability_rise_fails_the_gate():
    """unavailability window is lower-is-better: a rise past the
    threshold (detection / recovery / re-routing got slower) must fail."""
    rows, failures = bench_compare.compare(
        snapshot(), snapshot(unavailability=5_000.0), threshold=0.25)
    assert len(failures) == 1
    assert "availability unavailability window (µs)" in failures[0]
    gated = {row["name"]: row for row in rows if row["gated"]}
    row = gated["availability unavailability window (µs)"]
    assert row["status"] == "REGRESSION"
    assert row["delta"] > 0.25


def test_unavailability_drop_passes():
    """Healing faster than the baseline is an improvement."""
    _rows, failures = bench_compare.compare(
        snapshot(), snapshot(unavailability=1_000.0), threshold=0.25)
    assert failures == []


def test_availability_scenario_metrics_are_informational():
    candidate = snapshot()
    candidate["availability"]["scenarios"]["kill_master"][
        "time_to_detect"] = 50_000.0
    candidate["availability"]["scenarios"]["one_way_partition"][
        "goodput_retained"] = 0.2
    _rows, failures = bench_compare.compare(
        snapshot(), candidate, threshold=0.25)
    assert failures == []


# ----------------------------------------------------------------------
# ISSUE 9: the PDES scaling gate
# ----------------------------------------------------------------------
def test_parallel_sim_speedup_regression_gates():
    """A drop in the 4-partition busy-time speedup (the decomposition,
    window barrier or mailbox got more expensive) fails the gate."""
    rows, failures = bench_compare.compare(
        snapshot(), snapshot(parallel_speedup=1.5), threshold=0.25)
    assert len(failures) == 1
    assert "parallel sim speedup @4p" in failures[0]
    gated = {row["name"]: row for row in rows if row["gated"]}
    assert gated["parallel sim speedup @4p"]["status"] == "REGRESSION"


def test_parallel_sim_side_metrics_are_informational():
    candidate = snapshot()
    candidate["parallel_sim"]["speedup_2p"] = 0.9
    candidate["parallel_sim"]["critical_path_4p_seconds"] = 5.0
    _rows, failures = bench_compare.compare(
        snapshot(), candidate, threshold=0.25)
    assert failures == []


# ----------------------------------------------------------------------
# ISSUE 10: the cross-shard 1-RTT commit-rate gate
# ----------------------------------------------------------------------
def test_transaction_fast_commit_rate_regression_gates():
    """A drop in the low-contention 1-RTT commit rate (prepares stopped
    completing speculatively) fails the gate."""
    rows, failures = bench_compare.compare(
        snapshot(), snapshot(fast_commit_rate=0.5), threshold=0.25)
    assert len(failures) == 1
    assert "transactions fast-commit rate" in failures[0]
    gated = {row["name"]: row for row in rows if row["gated"]}
    assert gated["transactions fast-commit rate"]["status"] == "REGRESSION"


def test_transaction_side_metrics_are_informational():
    candidate = snapshot()
    candidate["transactions"]["commit_p50"] = 900.0
    candidate["transactions"]["contended_abort_rate"] = 0.9
    _rows, failures = bench_compare.compare(
        snapshot(), candidate, threshold=0.25)
    assert failures == []


def test_machine_independent_ratio_gates_too():
    """A dispatch regression shows in the same-host legacy ratio even
    when a fast runner keeps the absolute rate above threshold."""
    _rows, failures = bench_compare.compare(
        snapshot(), snapshot(speedup=2.0), threshold=0.25)
    assert len(failures) == 1
    assert "dispatch speedup vs legacy" in failures[0]


def test_markdown_table_marks_gated_metrics():
    rows, _ = bench_compare.compare(snapshot(), snapshot(), threshold=0.25)
    table = bench_compare.format_markdown(rows, threshold=0.25)
    assert "| **dispatch events/s** |" in table
    assert "| **rpc roundtrips/s** |" in table
    assert "| rpc roundtrips/s (yield) |" in table


def test_main_exit_codes_and_summary(tmp_path):
    baseline = tmp_path / "base.json"
    candidate = tmp_path / "cand.json"
    summary = tmp_path / "summary.md"
    baseline.write_text(json.dumps(snapshot()))

    candidate.write_text(json.dumps(snapshot(dispatch=5_900_000)))
    assert bench_compare.main(["--baseline", str(baseline),
                               "--candidate", str(candidate),
                               "--summary", str(summary)]) == 0
    assert "Perf gate" in summary.read_text()

    candidate.write_text(json.dumps(snapshot(records=100_000)))
    assert bench_compare.main(["--baseline", str(baseline),
                               "--candidate", str(candidate),
                               "--summary", str(summary)]) == 1
