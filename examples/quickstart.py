#!/usr/bin/env python
"""Quickstart: a CURP cluster in ~60 lines.

Builds a 3-way-replicated CURP cluster (1 master, 3 backups, 3
witnesses), shows the 1-RTT fast path, a conflict, a master crash with
unsynced speculative writes, recovery, and that nothing acknowledged
was lost.

Backup storage modeling is off here (``StorageProfile.enabled`` is
False by default, so appends are free and instant); see
``examples/redis_durability.py`` and ``docs/STORAGE.md`` for the
segmented-WAL model and partitioned crash recovery.

Run:  python examples/quickstart.py
"""

from repro.baselines import curp_config
from repro.harness import RAMCLOUD_PROFILE, build_cluster
from repro.kvstore import Increment, Write


def main() -> None:
    cluster = build_cluster(curp_config(f=3), profile=RAMCLOUD_PROFILE,
                            seed=42)
    client = cluster.new_client()
    print(f"cluster up: master={cluster.master().master_id}, "
          f"backups={cluster.backup_hosts['m0']}, "
          f"witnesses={cluster.witness_hosts['m0']}")

    # --- 1-RTT updates ------------------------------------------------
    outcome = cluster.run(client.update(Write("alice", 100)))
    print(f"\nwrite alice=100: {outcome.latency:.1f} us "
          f"(fast_path={outcome.fast_path})  <- 1 RTT, replication hidden")
    outcome = cluster.run(client.update(Write("bob", 250)))
    print(f"write bob=250:   {outcome.latency:.1f} us "
          f"(fast_path={outcome.fast_path})  <- different key: commutes")

    # --- a conflict ----------------------------------------------------
    outcome = cluster.run(client.update(Increment("alice", 5)))
    print(f"incr alice:      {outcome.latency:.1f} us "
          f"(synced_by_master={outcome.synced_by_master})  "
          "<- conflicts with the unsynced write: master synced first")

    # --- crash with unsynced speculative writes ------------------------
    for i in range(5):
        cluster.run(client.update(Write(f"key{i}", i)))
    master = cluster.master()
    print(f"\nunsynced speculative operations at master: "
          f"{master.unsynced_count}")
    print("crashing the master NOW (before any backup sync)...")
    master.host.crash()

    standby = cluster.add_host("standby", role="master")
    stats = cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master("m0", standby)))
    print(f"recovered on {standby.name}: restored "
          f"{stats['restored_entries']} entries from a backup, replayed "
          f"{stats['replayed']} witnessed requests")

    # --- nothing lost ---------------------------------------------------
    print("\nreads after recovery (client retries transparently):")
    for key in ("alice", "bob", "key0", "key4"):
        value = cluster.run(client.read(key))
        print(f"  {key} = {value}")
    assert cluster.run(client.read("alice")) == 105
    print("\nall acknowledged updates survived the crash. "
          "That is CURP: 1-RTT updates, zero lost writes.")


if __name__ == "__main__":
    main()
