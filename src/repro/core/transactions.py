"""Optimistic transactions over CURP (the §A.3 pattern).

The appendix sketches how applications use CURP for multi-object
updates: *read* the objects (recording versions), *compute*, then
*commit* with a conditional write that validates every version and
aborts if anything changed.  CURP makes both halves fast:

- the reads use the §A.3 relaxation — they may return unsynced values
  without waiting for durability, because the commit revalidates them
  (``for_update=True`` reads);
- the commit is a single :class:`ConditionalMultiWrite`, which takes
  the normal 1-RTT fast path when its key set commutes with everything
  in flight.

This is single-master optimistic concurrency control (all keys of one
transaction must live on one master), in the spirit of RAMCloud's
linearizable conditional operations — not a full distributed
transaction protocol.
"""

from __future__ import annotations

import typing

from repro.core.client import CurpClient
from repro.kvstore.operations import KEEP, ConditionalMultiWrite


class TransactionAborted(Exception):
    """Commit-time version validation failed (concurrent conflict)."""

    def __init__(self, mismatches):
        super().__init__(f"version mismatches: {mismatches!r}")
        self.mismatches = mismatches


class OptimisticTransaction:
    """One read-validate-write transaction attempt."""

    def __init__(self, client: CurpClient):
        self.client = client
        #: key -> version observed by the transaction's reads
        self._read_versions: dict[str, int] = {}
        #: key -> value read (for the application's convenience)
        self._read_values: dict[str, typing.Any] = {}
        #: key -> staged new value
        self._writes: dict[str, typing.Any] = {}
        self._committed = False

    def read(self, key: str):
        """Generator: read a key into the read set (§A.3 fast read —
        no durability wait)."""
        if key in self._writes:
            return self._writes[key]
        value, version = yield from self.client.read_versioned(
            key, for_update=True)
        self._read_versions[key] = version
        self._read_values[key] = value
        return value

    def write(self, key: str, value: typing.Any) -> None:
        """Stage a write (applied atomically at commit)."""
        if self._committed:
            raise RuntimeError("transaction already committed")
        self._writes[key] = value

    @property
    def read_set(self) -> dict[str, int]:
        return dict(self._read_versions)

    def commit(self):
        """Generator: atomically apply staged writes iff no key in the
        read set changed.  Raises :class:`TransactionAborted` on
        conflict.  Read-only transactions commit trivially (their
        serialization point is the last read)."""
        if self._committed:
            raise RuntimeError("transaction already committed")
        self._committed = True
        if not self._writes and not self._read_versions:
            return None
        if not self._writes:
            return None  # read-only: nothing to validate against
        items = []
        for key, value in self._writes.items():
            expected = self._read_versions.get(key)
            if expected is None:
                # Blind write: validate against the current version so
                # the operation is still a CAS (read it now).
                _value, expected = yield from self.client.read_versioned(
                    key, for_update=True)
            items.append((key, value, expected))
        for key, version in self._read_versions.items():
            if key not in self._writes:
                items.append((key, KEEP, version))  # validate-only
        op = ConditionalMultiWrite(items=tuple(items))
        outcome = yield from self.client.update(op)
        status, detail = outcome.result
        if status != "OK":
            raise TransactionAborted(detail)
        return outcome


def run_transaction(client: CurpClient, body, max_attempts: int = 20):
    """Generator: run ``body(txn)`` (a generator function) with
    automatic retry on abort — the paper's "applications ... handle
    aborts by retrying".

    Returns the body's return value of the attempt that committed.
    """
    for _attempt in range(max_attempts):
        txn = OptimisticTransaction(client)
        result = yield from body(txn)
        try:
            yield from txn.commit()
            return result
        except TransactionAborted:
            continue
    raise TransactionAborted(f"gave up after {max_attempts} attempts")
