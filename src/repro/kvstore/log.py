"""The master's ordered operation log.

Every update appends one entry; the entry carries the key effects (so a
backup can rebuild object state), plus the RIFL RpcId and result (so
completion records are durable *atomically* with the update, the
property §3.3 requires for exactly-once semantics across recovery).

Log positions start at 1.  "Synced position" bookkeeping lives in the
master, not here; the log only knows order.
"""

from __future__ import annotations

import dataclasses
import typing


#: sentinel value in an effect meaning "key deleted"
TOMBSTONE = object()


@dataclasses.dataclass(frozen=True)
class LogEntry:
    """One ordered, replicated update."""

    index: int
    #: (key, new_value | TOMBSTONE, new_version) triples
    effects: tuple[tuple[str, typing.Any, int], ...]
    #: RIFL identity + result; None for internal (non-client) entries
    rpc_id: typing.Any
    result: typing.Any
    #: master clock when executed (timestamp method of §4.3)
    timestamp: float


class Log:
    """Append-only in-memory log with absolute positions."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []

    @property
    def end(self) -> int:
        """Position of the newest entry (0 when empty)."""
        return len(self._entries)

    def append(self, effects: tuple[tuple[str, typing.Any, int], ...],
               rpc_id: typing.Any, result: typing.Any,
               timestamp: float) -> LogEntry:
        entry = LogEntry(index=len(self._entries) + 1, effects=effects,
                         rpc_id=rpc_id, result=result, timestamp=timestamp)
        self._entries.append(entry)
        return entry

    def entry(self, index: int) -> LogEntry:
        if not 1 <= index <= len(self._entries):
            raise IndexError(f"log position {index} out of range "
                             f"[1, {len(self._entries)}]")
        return self._entries[index - 1]

    def entries_after(self, position: int) -> list[LogEntry]:
        """Entries with index > position (what a sync must replicate)."""
        if position < 0:
            raise ValueError(f"negative position: {position}")
        return self._entries[position:]

    def all_entries(self) -> list[LogEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
