"""Unit tests for sim events and combinators."""

from __future__ import annotations

import pytest

from repro.sim import AllOf, AnyOf, EventFailed, Simulator


def test_event_starts_pending(sim: Simulator):
    event = sim.event()
    assert not event.triggered
    with pytest.raises(RuntimeError):
        _ = event.value


def test_succeed_carries_value(sim: Simulator):
    event = sim.event()
    event.succeed("hello")
    assert event.triggered and event.ok
    assert event.value == "hello"


def test_event_cannot_trigger_twice(sim: Simulator):
    event = sim.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()
    with pytest.raises(RuntimeError):
        event.fail(ValueError("x"))


def test_fail_requires_exception(sim: Simulator):
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_value_raises(sim: Simulator):
    event = sim.event()
    event.fail(ValueError("boom"))
    assert event.triggered and not event.ok
    with pytest.raises(ValueError):
        _ = event.value


def test_callbacks_run_at_trigger_time(sim: Simulator):
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append(sim.now))
    sim.schedule_callback(5.0, lambda: event.succeed())
    sim.run()
    assert seen == [5.0]


def test_callback_after_trigger_still_fires(sim: Simulator):
    event = sim.event()
    event.succeed(7)
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == [7]


def test_timeout_fires_at_deadline(sim: Simulator):
    times = []
    sim.timeout(3.0).add_callback(lambda e: times.append(sim.now))
    sim.timeout(1.0).add_callback(lambda e: times.append(sim.now))
    sim.run()
    assert times == [1.0, 3.0]


def test_timeout_value(sim: Simulator):
    event = sim.timeout(1.0, value="done")
    sim.run()
    assert event.value == "done"


def test_negative_timeout_rejected(sim: Simulator):
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_all_of_waits_for_every_child(sim: Simulator):
    a = sim.timeout(1.0, value="a")
    b = sim.timeout(5.0, value="b")
    combo = AllOf(sim, [a, b])
    sim.run(combo)
    assert sim.now == 5.0
    assert combo.value == {a: "a", b: "b"}


def test_all_of_empty_triggers_immediately(sim: Simulator):
    combo = AllOf(sim, [])
    assert combo.triggered
    assert combo.value == {}


def test_all_of_fails_fast(sim: Simulator):
    a = sim.event()
    b = sim.timeout(100.0)
    combo = AllOf(sim, [a, b])
    sim.schedule_callback(1.0, lambda: a.fail(ValueError("dead")))
    with pytest.raises(ValueError):
        sim.run(combo)
    assert sim.now == 1.0


def test_any_of_takes_first(sim: Simulator):
    a = sim.timeout(2.0, value="fast")
    b = sim.timeout(9.0, value="slow")
    combo = AnyOf(sim, [a, b])
    sim.run(combo)
    assert sim.now == 2.0
    assert combo.value[a] == "fast"
    assert b not in combo.value


def test_any_of_with_already_triggered_child(sim: Simulator):
    a = sim.event()
    a.succeed("pre")
    combo = AnyOf(sim, [a, sim.timeout(50.0)])
    sim.run(combo)
    assert combo.value[a] == "pre"
    assert sim.now == 0.0


def test_event_failed_importable():
    assert issubclass(EventFailed, Exception)
