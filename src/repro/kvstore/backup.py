"""Backup servers: ordered log replication targets.

A backup accepts ``replicate`` RPCs from its master, appends the
entries (idempotently — the master may resend on retry), and serves the
whole log to a recovery master.  Backup storage is durable: it survives
host crash + restart, modelling RAMCloud's flush-to-disk path.

Zombie fencing (§4.7): the coordinator bumps the master *epoch* when it
starts recovering a crashed master and fences every backup with the new
epoch.  Replication from the deposed master (a zombie that never really
died) carries the old epoch and is rejected, so the zombie can never
complete another sync — and therefore can never let a client complete
an operation — after recovery begins.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.kvstore.log import LogEntry
from repro.rpc import AppError, RpcTransport

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


@dataclasses.dataclass(frozen=True)
class ReplicateArgs:
    master_id: str
    epoch: int
    entries: tuple[LogEntry, ...]
    #: gc batch merged into this sync RPC for a witness colocated on
    #: the backup's host (config.gc_piggyback): already-durable
    #: (key hash, RpcId) pairs plus the sync-round count for the
    #: witness's stale-suspect aging clock.  Empty = plain replicate.
    gc_pairs: tuple = ()
    gc_rounds: int = 0


class BackupServer:
    """One backup replica for one master's log."""

    def __init__(self, host: "Host", master_id: str,
                 process_time: float = 0.0,
                 transport: RpcTransport | None = None):
        self.host = host
        self.sim = host.sim
        self.master_id = master_id
        #: smallest master epoch still allowed to replicate
        self.min_epoch = 0
        #: per-message handling cost (models backup CPU, from profiles)
        self.process_time = process_time
        self._entries: dict[int, LogEntry] = {}
        #: materialized object values (served to §A.1 backup readers);
        #: TOMBSTONE-deleted keys are removed
        self._values: dict[str, typing.Any] = {}
        #: witness colocated on this host (Figure 2), wired by the
        #: coordinator; lets a replicate RPC carry a merged gc batch
        self.witness_sink = None
        # May share the host's endpoint with a colocated witness
        # (Figure 2); method names are disjoint.
        self.transport = transport or RpcTransport(host)
        self.transport.register("replicate", self._handle_replicate)
        self.transport.register("reset_log", self._handle_reset_log)
        self.transport.register("fence", self._handle_fence)
        self.transport.register("get_backup_data", self._handle_get_data)
        self.transport.register("backup_read", self._handle_backup_read)
        # Backup storage is durable: no on_crash hook clears it.

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _handle_replicate(self, args: ReplicateArgs, ctx):
        if args.master_id != self.master_id:
            raise AppError("WRONG_MASTER", {"expected": self.master_id})
        if args.epoch < self.min_epoch:
            # Deposed master (zombie): refuse, so its clients can never
            # complete an operation through the sync path.
            raise AppError("FENCED", {"min_epoch": self.min_epoch})
        if self.process_time > 0:
            # Charge the CPU time without a process per replicate RPC;
            # the incarnation guard drops work in flight across a crash
            # exactly as interrupting the old generator did.
            self.sim.schedule_callback(self.process_time,
                                       self._replicate_deferred, args, ctx,
                                       self.host.incarnation)
            return RpcTransport.DEFERRED
        self._store(args.entries)
        return self._replicate_reply(args)

    def _replicate_deferred(self, args: ReplicateArgs, ctx,
                            incarnation: int) -> None:
        if not self.host.alive or self.host.incarnation != incarnation:
            return
        try:
            self._store(args.entries)
            ctx.reply(self._replicate_reply(args))
        except AppError as error:
            if not ctx.replied:
                ctx.reply_error(error.code, error.info)
        except Exception as error:  # noqa: BLE001 - serialize to caller,
            # matching the generator path's REMOTE_ERROR containment
            if not ctx.replied:
                ctx.reply_error("REMOTE_ERROR",
                                f"{type(error).__name__}: {error}")

    def _replicate_reply(self, args: ReplicateArgs):
        """Ack value: plain ``last_index``, or ``(last_index, stale)``
        when a merged gc batch rode along (the stale-suspect list takes
        the return leg of the same RPC)."""
        if not args.gc_pairs:
            return self.last_index
        stale: tuple = ()
        if self.witness_sink is not None:
            applied = self.witness_sink.apply_gc_batch(
                args.master_id, args.gc_pairs, args.gc_rounds)
            if applied is not None:
                stale = applied
        return (self.last_index, stale)

    def _store(self, entries: typing.Sequence[LogEntry]) -> None:
        from repro.kvstore.log import TOMBSTONE
        for entry in entries:
            existing = self._entries.get(entry.index)
            if existing is not None:
                if existing != entry:
                    raise AppError("LOG_DIVERGENCE", {"index": entry.index})
                continue  # duplicate resend: don't re-apply effects
            self._entries[entry.index] = entry
            for key, value, _version in entry.effects:
                if value is TOMBSTONE:
                    self._values.pop(key, None)
                else:
                    self._values[key] = value

    def _handle_reset_log(self, args: ReplicateArgs, ctx):
        """Adopt the caller's log wholesale (recovery, §4.6).

        A crash mid-sync can leave backups with diverging tails (some
        received the last partial batch, others did not; none of it was
        acknowledged to clients).  The recovery master resolves this by
        installing its restored+replayed log on every backup.
        """
        if args.master_id != self.master_id:
            raise AppError("WRONG_MASTER", {"expected": self.master_id})
        if args.epoch < self.min_epoch:
            raise AppError("FENCED", {"min_epoch": self.min_epoch})
        self._entries.clear()
        self._values.clear()
        self._store(args.entries)
        return self.last_index

    def _handle_fence(self, args: int, ctx):
        """Coordinator: reject replication below this epoch from now on."""
        self.min_epoch = max(self.min_epoch, args)
        return self.min_epoch

    def _handle_get_data(self, args, ctx):
        """Recovery master fetches the full ordered log."""
        return tuple(self._entries[i] for i in sorted(self._entries))

    def _handle_backup_read(self, args, ctx):
        """§A.1: read replicated (synced) state; the *reader* is
        responsible for checking freshness against a witness."""
        key = args.key if hasattr(args, "key") else args
        return self._values.get(key)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def last_index(self) -> int:
        return max(self._entries, default=0)

    def entry_count(self) -> int:
        return len(self._entries)
