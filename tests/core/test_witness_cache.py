"""Unit + property tests for the set-associative witness cache (§4.2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.witness_cache import WitnessCache
from repro.rifl import RpcId


def rid(n: int) -> RpcId:
    return RpcId(1, n)


def test_accepts_disjoint_keys():
    cache = WitnessCache(slots=64, associativity=4)
    assert cache.record([1], rid(1), "req1")
    assert cache.record([2], rid(2), "req2")
    assert cache.occupied_slots() == 2
    assert cache.accepts == 2


def test_rejects_same_key_hash():
    """Paper §3.2.2: a witness that already accepted x<-1 cannot accept
    x<-5."""
    cache = WitnessCache(slots=64, associativity=4)
    assert cache.record([42], rid(1), "x<-1")
    assert not cache.record([42], rid(2), "x<-5")
    assert cache.rejects_commutativity == 1


def test_duplicate_record_is_idempotent():
    cache = WitnessCache(slots=64, associativity=4)
    assert cache.record([42], rid(1), "req")
    assert cache.record([42], rid(1), "req")  # client retry
    assert cache.occupied_slots() == 1


def test_set_capacity_rejection():
    """Direct-mapped: the second distinct key hitting the same set is a
    collision (Figure 11's subject)."""
    cache = WitnessCache(slots=4, associativity=1)  # 4 sets
    assert cache.record([0], rid(1), "a")   # set 0
    assert not cache.record([4], rid(2), "b")  # also set 0, occupied
    assert cache.rejects_capacity == 1


def test_associativity_absorbs_set_conflicts():
    cache = WitnessCache(slots=8, associativity=2)  # 4 sets of 2
    assert cache.record([0], rid(1), "a")
    assert cache.record([4], rid(2), "b")   # same set, second way
    assert not cache.record([8], rid(3), "c")  # set full
    assert cache.occupied_slots() == 2


def test_multikey_record_all_or_nothing():
    """§4.2: an n-object update needs a commutative free slot for every
    object."""
    cache = WitnessCache(slots=8, associativity=2)
    assert cache.record([0], rid(1), "a")
    assert cache.record([4], rid(2), "b")  # set 0 now full
    # Multi-key touching sets {0 (full), 1}: must reject entirely.
    assert not cache.record([8, 1], rid(3), "multi")
    # Set 1 must not have been partially written.
    assert cache.occupied_slots() == 2
    assert cache.commutes_with([1])


def test_multikey_occupies_one_slot_per_key():
    cache = WitnessCache(slots=16, associativity=4)
    assert cache.record([1, 2, 3], rid(1), "multi")
    assert cache.occupied_slots() == 3
    assert cache.all_requests() == ["multi"]  # deduplicated


def test_multikey_repeated_key_hash_needs_one_slot():
    """Regression: a request listing the same key twice (e.g. a
    transaction reading and writing one object) needs ONE slot for it.
    The capacity pre-check used to count the duplicate twice and reject
    with a free slot available, even though the write pass only ever
    consumed one."""
    cache = WitnessCache(slots=4, associativity=2)  # 2 sets of 2
    assert cache.record([0], rid(1), "a")  # set 0: one slot left
    # key 2 repeated: needs one slot in set 0, and set 0 has one free.
    assert cache.record([2, 2], rid(2), "dup")
    assert cache.occupied_slots() == 2
    assert cache.rejects_capacity == 0
    # gc of the single underlying record frees the slot.
    cache.gc([(2, rid(2))])
    assert cache.occupied_slots() == 1
    assert cache.commutes_with([2])


def test_multikey_two_keys_same_set_needs_two_slots():
    cache = WitnessCache(slots=4, associativity=2)  # 2 sets of 2
    assert cache.record([0], rid(1), "a")  # set 0: one slot left
    # keys 2 and 4 both map to set 0 → needs 2 free slots, only 1 there
    assert not cache.record([2, 4], rid(2), "multi")
    assert cache.occupied_slots() == 1


def test_gc_clears_matching_records():
    cache = WitnessCache(slots=64, associativity=4)
    cache.record([1], rid(1), "a")
    cache.record([2], rid(2), "b")
    cache.gc([(1, rid(1))])
    assert cache.occupied_slots() == 1
    assert cache.commutes_with([1])
    assert not cache.commutes_with([2])


def test_gc_ignores_unknown_pairs():
    """§4.5: the record RPC might have been rejected; gc of a pair the
    witness never stored must be harmless."""
    cache = WitnessCache(slots=64, associativity=4)
    cache.record([1], rid(1), "a")
    cache.gc([(99, rid(50)), (1, rid(77))])  # wrong hash / wrong rpc
    assert cache.occupied_slots() == 1


def test_gc_multikey_clears_all_slots():
    cache = WitnessCache(slots=64, associativity=4)
    cache.record([1, 2], rid(1), "multi")
    cache.gc([(1, rid(1)), (2, rid(1))])
    assert cache.occupied_slots() == 0


def test_stale_suspect_reported_after_threshold():
    """§4.5: a record that keeps causing rejections after >=3 gc rounds
    is reported back to the master via the gc response."""
    cache = WitnessCache(slots=64, associativity=4, stale_threshold=3)
    cache.record([1], rid(1), "orphan")
    for _ in range(3):
        assert cache.gc([]) == []
    # Rejection against the old record marks it suspect...
    assert not cache.record([1], rid(2), "newer")
    # ...and the next gc reports it (once).
    assert cache.gc([]) == ["orphan"]
    assert cache.gc([]) == []


def test_no_suspect_before_threshold():
    cache = WitnessCache(slots=64, associativity=4, stale_threshold=3)
    cache.record([1], rid(1), "young")
    cache.gc([])
    assert not cache.record([1], rid(2), "newer")
    assert cache.gc([]) == []


def test_commutes_with_probe():
    cache = WitnessCache(slots=64, associativity=4)
    cache.record([5], rid(1), "w")
    assert not cache.commutes_with([5])
    assert cache.commutes_with([6])
    assert not cache.commutes_with([6, 5])


def test_clear_resets_everything():
    cache = WitnessCache(slots=64, associativity=4)
    cache.record([1], rid(1), "a")
    cache.gc([])
    cache.clear()
    assert cache.occupied_slots() == 0
    assert cache.gc_rounds == 0
    assert cache.all_requests() == []


def test_memory_accounting_matches_paper():
    """§5.2: 4096 slots × 2 KB ≈ 9 MB per master-witness pair."""
    cache = WitnessCache(slots=4096, associativity=4)
    assert 8_000_000 < cache.memory_bytes(slot_size=2048) < 10_000_000


def test_geometry_validation():
    with pytest.raises(ValueError):
        WitnessCache(slots=10, associativity=4)
    with pytest.raises(ValueError):
        WitnessCache(slots=0, associativity=1)
    with pytest.raises(ValueError):
        WitnessCache(slots=4, associativity=4).record([], rid(1), "x")


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 1000)),
                max_size=100))
@settings(max_examples=100)
def test_invariant_no_two_live_records_share_a_key(ops):
    """The core witness invariant: saved requests are pairwise
    commutative, i.e. no two live slots hold the same key hash with
    different RpcIds."""
    cache = WitnessCache(slots=32, associativity=4)
    for key_hash_value, rpc_seq in ops:
        cache.record([key_hash_value], rid(rpc_seq), f"req{rpc_seq}")
        seen: dict[int, object] = {}
        for row in cache._sets:
            for slot in row:
                if slot is not None:
                    assert seen.setdefault(slot.key_hash, slot.rpc_id) \
                        == slot.rpc_id
    assert cache.occupied_slots() <= 32


@given(st.lists(st.integers(0, 100), min_size=1, max_size=60, unique=True))
@settings(max_examples=100)
def test_property_record_then_gc_leaves_empty(key_hashes):
    cache = WitnessCache(slots=512, associativity=4)
    accepted = []
    for i, key_hash_value in enumerate(key_hashes):
        if cache.record([key_hash_value], rid(i), f"r{i}"):
            accepted.append((key_hash_value, rid(i)))
    cache.gc(accepted)
    assert cache.occupied_slots() == 0


@given(st.integers(1, 8).map(lambda x: 2 ** (x - 1)))
@settings(max_examples=8)
def test_property_higher_associativity_never_worse(associativity):
    """For a fixed random insertion stream, more ways never reject
    earlier (the Figure 11/B.1 claim, in expectation)."""
    slots = 256
    rng = random.Random(1234)
    stream = [rng.getrandbits(64) for _ in range(4 * slots)]

    def records_until_reject(assoc: int) -> int:
        cache = WitnessCache(slots=slots, associativity=assoc)
        for count, key_hash_value in enumerate(stream):
            if not cache.record([key_hash_value], rid(count), "x"):
                return count
        return len(stream)

    # Not strictly monotone for a single stream, so compare the average
    # of a few streams against direct mapping.
    direct = records_until_reject(1)
    ways = records_until_reject(associativity)
    if associativity >= 4:
        assert ways >= direct
