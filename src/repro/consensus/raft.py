"""Raft with the CURP extension (§A.2).

Standard Raft first (Ongaro & Ousterhout, ATC'14): follower/candidate/
leader roles, randomized election timeouts, RequestVote with the log
up-to-dateness restriction, AppendEntries with the log-matching
property, commit only for current-term entries, and a no-op entry at
term start so earlier entries commit promptly.

The CURP extension adds, per §A.2:

- a **witness component** on every replica (term-tagged records; a
  record carrying a stale term is rejected, which neutralizes clients
  of deposed zombie leaders);
- **speculative execution** on the leader: a proposed operation that
  commutes with every uncommitted operation executes immediately
  against the leader's speculative store (= the whole local log
  applied) and the reply goes out before the quorum commit;
  non-commutative operations wait for their commit (``synced`` tag);
- **leadership-change recovery**: before serving, a new leader
  freezes+collects witness data from a quorum of f+1 witnesses and
  replays every request appearing on a majority (⌈f/2⌉+1) of them —
  commutativity of the replayed set is guaranteed by the superquorum
  write rule — then resets all reachable witnesses for the new term.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.witness_cache import WitnessCache
from repro.kvstore.operations import Operation, Read
from repro.kvstore.store import KVStore
from repro.rifl import DuplicateState, ResultRegistry
from repro.rpc import AppError, RpcError, RpcTransport
from repro.sim.events import QuorumEvent

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


# ----------------------------------------------------------------------
# wire frames
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class LogEntry:
    term: int
    index: int
    op: typing.Any  # Operation or the NOOP sentinel
    rpc_id: typing.Any


NOOP = "noop"


@dataclasses.dataclass(frozen=True)
class RequestVoteArgs:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclasses.dataclass(frozen=True)
class AppendEntriesArgs:
    term: int
    leader: str
    prev_index: int
    prev_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int


@dataclasses.dataclass(frozen=True)
class ProposeArgs:
    op: Operation
    rpc_id: typing.Any
    ack_seq: int = 0


@dataclasses.dataclass(frozen=True)
class ProposeReply:
    result: typing.Any
    #: True = committed before replying (the 2-RTT path)
    synced: bool
    term: int


@dataclasses.dataclass(frozen=True)
class WitnessRecordArgs:
    term: int
    key_hashes: tuple[int, ...]
    rpc_id: typing.Any
    request: typing.Any  # RecordedRequest(op, rpc_id)


@dataclasses.dataclass
class RaftConfig:
    election_timeout_min: float = 1_500.0
    election_timeout_max: float = 3_000.0
    heartbeat_interval: float = 400.0
    rpc_timeout: float = 500.0
    #: enable the §A.2 CURP extension
    curp: bool = True
    witness_slots: int = 1024
    witness_associativity: int = 4
    #: leader read leases (§6's strong-leader optimization: a leader
    #: with a fresh majority lease serves reads locally, no quorum RTT);
    #: 0 disables.  Safety in this simulation rests on the global
    #: virtual clock (real deployments need bounded clock drift).
    read_lease_duration: float = 1_200.0


class RaftNode:
    """One replica: Raft core + witness component."""

    def __init__(self, host: "Host", name: str, peers: typing.Sequence[str],
                 config: RaftConfig | None = None):
        self.host = host
        self.sim = host.sim
        self.name = name
        #: all replica names, including this one
        self.peers = list(peers)
        if name not in self.peers:
            raise ValueError("peers must include the node itself")
        self.config = config or RaftConfig()

        # --- persistent state (survives restart; volatile on our fail-
        # stop crashes only through the other replicas, like real Raft
        # with lost disks requires reconfiguration; we model durable
        # term/vote/log as surviving restart) ---
        self.current_term = 0
        self.voted_for: str | None = None
        self.log: list[LogEntry] = []

        # --- volatile ---
        self.role = "follower"
        self.leader_hint: str | None = None
        self.commit_index = 0
        self.last_applied = 0
        self.store = KVStore()            # committed state machine
        self.registry = ResultRegistry()  # committed exactly-once records
        self._spec_store: KVStore | None = None  # leader only
        self._spec_results: dict[int, typing.Any] = {}
        self._log_rpc_index: dict[typing.Any, int] = {}
        self._next_index: dict[str, int] = {}
        self._match_index: dict[str, int] = {}
        self._commit_waiters: list[tuple[int, typing.Any]] = []
        self._election_epoch = 0
        self.serving = True  # new leaders pause serving during replay

        # --- witness component (§A.2) ---
        self.witness = WitnessCache(slots=self.config.witness_slots,
                                    associativity=self.config.witness_associativity)
        self.witness_term = 0
        self.witness_frozen = False

        self.stats = {"speculative": 0, "conflict_commits": 0,
                      "elections": 0, "replayed": 0, "lease_reads": 0}
        #: per-peer time of the last successful AppendEntries ack
        self._last_ack: dict[str, float] = {}
        self._leader_since = 0.0

        self.transport = RpcTransport(host)
        self.transport.register("request_vote", self._handle_request_vote)
        self.transport.register("append_entries", self._handle_append_entries)
        self.transport.register("propose", self._handle_propose)
        self.transport.register("wait_commit", self._handle_wait_commit)
        self.transport.register("status", self._handle_status)
        self.transport.register("w_record", self._handle_w_record)
        self.transport.register("w_recovery", self._handle_w_recovery)
        self.transport.register("w_reset", self._handle_w_reset)
        self.transport.register("w_gc", self._handle_w_gc)
        host.on_crash(self._on_crash)
        host.on_restart(self._on_restart)
        self._start_election_timer()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def majority(self) -> int:
        return len(self.peers) // 2 + 1

    def last_log_index(self) -> int:
        return len(self.log)

    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def _entry(self, index: int) -> LogEntry:
        return self.log[index - 1]

    def _become_follower(self, term: int, leader: str | None = None) -> None:
        stepped_down = self.role == "leader"
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
        self.role = "follower"
        if leader is not None:
            self.leader_hint = leader
        if stepped_down:
            # Discard speculative state (§A.2's "reload from a state
            # without speculative executions").
            self._spec_store = None
            self._fail_commit_waiters()
        self.serving = True
        self._start_election_timer()

    def _fail_commit_waiters(self) -> None:
        waiters, self._commit_waiters = self._commit_waiters, []
        for _index, event in waiters:
            if not event.triggered:
                event.fail(AppError("NOT_LEADER",
                                    {"hint": self.leader_hint,
                                     "term": self.current_term}))

    # ------------------------------------------------------------------
    # election timer / heartbeats
    # ------------------------------------------------------------------
    def _start_election_timer(self) -> None:
        self._election_epoch += 1
        epoch = self._election_epoch
        timeout = self.sim.rng.uniform(self.config.election_timeout_min,
                                       self.config.election_timeout_max)

        def fire() -> None:
            if (self.host.alive and epoch == self._election_epoch
                    and self.role != "leader"):
                self.host.spawn(self._run_election(), name="election")
        self.sim.schedule_callback(timeout, fire)

    def _run_election(self):
        self.role = "candidate"
        self.current_term += 1
        self.voted_for = self.name
        self.stats["elections"] += 1
        term = self.current_term
        self._start_election_timer()  # re-arm in case this one fails
        args = RequestVoteArgs(term=term, candidate=self.name,
                               last_log_index=self.last_log_index(),
                               last_log_term=self.last_log_term())
        votes = 1
        # Callback fan-out: replies land in the quorum join straight
        # from response delivery — no wrapper process per peer.
        others = [peer for peer in self.peers if peer != self.name]
        join = QuorumEvent(self.sim, len(others))
        for index, peer in enumerate(others):
            self.transport.call_cb(peer, "request_vote", args,
                                   join.child_result, index,
                                   timeout=self.config.rpc_timeout)
        replies = yield join
        if self.current_term != term or self.role != "candidate":
            return
        for reply in replies:
            if isinstance(reply, BaseException) or reply is None:
                continue  # unreachable peer
            reply_term, granted = reply
            if reply_term > self.current_term:
                self._become_follower(reply_term)
                return
            if granted:
                votes += 1
        if votes >= self.majority:
            yield from self._become_leader()

    def _handle_request_vote(self, args: RequestVoteArgs, ctx):
        if args.term > self.current_term:
            self._become_follower(args.term)
        if args.term < self.current_term:
            return (self.current_term, False)
        log_ok = (args.last_log_term, args.last_log_index) >= (
            self.last_log_term(), self.last_log_index())
        if log_ok and self.voted_for in (None, args.candidate):
            self.voted_for = args.candidate
            self._start_election_timer()
            return (self.current_term, True)
        return (self.current_term, False)

    # ------------------------------------------------------------------
    # leadership
    # ------------------------------------------------------------------
    def _become_leader(self):
        self.role = "leader"
        self.leader_hint = self.name
        self._leader_since = self.sim.now
        self._last_ack = {}
        for peer in self.peers:
            self._next_index[peer] = self.last_log_index() + 1
            self._match_index[peer] = 0
        # Speculative store = the whole local log applied (§A.2: the
        # leader's uncommitted tail will eventually commit under it).
        self._spec_store = KVStore()
        self._spec_results = {}
        for entry in self.log:
            if entry.op is not NOOP:
                result, _ = self._spec_store.execute(entry.op,
                                                     rpc_id=entry.rpc_id)
                self._spec_results[entry.index] = result
        # Term-start no-op (commits earlier terms' entries).
        self._append_local(NOOP, None)
        if self.config.curp:
            self.serving = False
            yield from self._witness_recovery()
            self.serving = True
        self.host.spawn(self._heartbeat_loop(), name="heartbeats")

    def _append_local(self, op, rpc_id) -> LogEntry:
        entry = LogEntry(term=self.current_term,
                         index=self.last_log_index() + 1,
                         op=op, rpc_id=rpc_id)
        self.log.append(entry)
        if rpc_id is not None:
            self._log_rpc_index[rpc_id] = entry.index
        return entry

    def _heartbeat_loop(self):
        term = self.current_term
        while (self.host.alive and self.role == "leader"
               and self.current_term == term):
            for peer in self.peers:
                if peer != self.name:
                    self._replicate_to(peer)
            yield self.sim.timeout(self.config.heartbeat_interval)

    def _replicate_to(self, peer: str) -> None:
        """Send one AppendEntries; the reply continuation runs straight
        from response delivery (no process per peer per round)."""
        if self.role != "leader":
            return
        next_index = self._next_index.get(peer, 1)
        prev_index = next_index - 1
        prev_term = self._entry(prev_index).term if prev_index >= 1 else 0
        entries = tuple(self.log[next_index - 1:])
        args = AppendEntriesArgs(term=self.current_term, leader=self.name,
                                 prev_index=prev_index, prev_term=prev_term,
                                 entries=entries,
                                 leader_commit=self.commit_index)
        self.transport.call_cb(peer, "append_entries", args,
                               self._on_append_reply, peer,
                               self.current_term,
                               timeout=self.config.rpc_timeout)

    def _on_append_reply(self, peer: str, sent_term: int, reply,
                         error) -> None:
        if error is not None:
            return  # peer unreachable; the next heartbeat retries
        term, success, match = reply
        if term > self.current_term:
            self._become_follower(term)
            return
        if (self.role != "leader" or sent_term != self.current_term
                or term != self.current_term):
            return
        if success:
            self._last_ack[peer] = self.sim.now
            self._match_index[peer] = max(self._match_index.get(peer, 0),
                                          match)
            self._next_index[peer] = self._match_index[peer] + 1
            self._advance_commit()
        else:
            self._next_index[peer] = max(1, self._next_index.get(peer, 1) - 1)

    def _advance_commit(self) -> None:
        for index in range(self.last_log_index(), self.commit_index, -1):
            if self._entry(index).term != self.current_term:
                break  # Raft commit restriction: current-term entries only
            replicated = 1 + sum(
                1 for peer in self.peers if peer != self.name
                and self._match_index.get(peer, 0) >= index)
            if replicated >= self.majority:
                previous = self.commit_index
                self.commit_index = index
                self._apply_committed()
                if self.config.curp:
                    self._gc_committed_from_witnesses(previous, index)
                break

    def _gc_committed_from_witnesses(self, from_index: int,
                                     to_index: int) -> None:
        """§3.5 applied to §A.2: once an entry is committed (durable in
        the Raft sense), its witness records are garbage — drop them
        from every replica's witness component, or repeated writes to
        the same key would be rejected (and lose the fast path)
        forever."""
        pairs = []
        for index in range(from_index + 1, to_index + 1):
            entry = self._entry(index)
            if entry.op is NOOP or entry.rpc_id is None:
                continue
            pairs.extend((key_hash_value, entry.rpc_id)
                         for key_hash_value in entry.op.key_hashes())
        if not pairs:
            return
        self.host.spawn(self._send_witness_gc(tuple(pairs)), name="w-gc")

    def _send_witness_gc(self, pairs):
        self.witness.gc(pairs)  # own component, locally
        for peer in self.peers:
            if peer == self.name:
                continue
            try:
                yield self.transport.call(peer, "w_gc", pairs,
                                          timeout=self.config.rpc_timeout)
            except RpcError:
                continue

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self._entry(self.last_applied)
            if entry.op is not NOOP:
                state, _saved = (self.registry.check(entry.rpc_id)
                                 if entry.rpc_id is not None
                                 else (DuplicateState.NEW, None))
                if state is DuplicateState.NEW:
                    result, _ = self.store.execute(entry.op,
                                                   rpc_id=entry.rpc_id)
                    if entry.rpc_id is not None:
                        self.registry.record(entry.rpc_id, result,
                                             log_position=entry.index)
        still = []
        for index, event in self._commit_waiters:
            if index <= self.commit_index:
                if not event.triggered:
                    event.succeed()
            else:
                still.append((index, event))
        self._commit_waiters = still

    def _handle_append_entries(self, args: AppendEntriesArgs, ctx):
        if args.term < self.current_term:
            return (self.current_term, False, 0)
        self._become_follower(args.term, leader=args.leader)
        # Log matching check.
        if args.prev_index > 0:
            if (self.last_log_index() < args.prev_index
                    or self._entry(args.prev_index).term != args.prev_term):
                return (self.current_term, False, 0)
        # Append / overwrite conflicting suffix.
        for entry in args.entries:
            if self.last_log_index() >= entry.index:
                if self._entry(entry.index).term != entry.term:
                    for dropped in self.log[entry.index - 1:]:
                        if dropped.rpc_id is not None:
                            self._log_rpc_index.pop(dropped.rpc_id, None)
                    del self.log[entry.index - 1:]
                else:
                    continue
            self.log.append(entry)
            if entry.rpc_id is not None:
                self._log_rpc_index[entry.rpc_id] = entry.index
        if args.leader_commit > self.commit_index:
            self.commit_index = min(args.leader_commit, self.last_log_index())
            self._apply_committed()
        return (self.current_term, True, self.last_log_index())

    # ------------------------------------------------------------------
    # client path
    # ------------------------------------------------------------------
    def _handle_status(self, args, ctx):
        return {"term": self.current_term, "leader": self.leader_hint,
                "role": self.role, "commit_index": self.commit_index}

    def _handle_propose(self, args: ProposeArgs, ctx):
        if self.role != "leader" or not self.serving:
            raise AppError("NOT_LEADER", {"hint": self.leader_hint,
                                          "term": self.current_term})
        if args.rpc_id is not None:
            self.registry.process_ack(args.rpc_id.client_id, args.ack_seq)
            # Duplicate? (committed or still in flight)
            state, saved = self.registry.check(args.rpc_id)
            if state is DuplicateState.COMPLETED:
                return ProposeReply(result=saved, synced=True,
                                    term=self.current_term)
            if state is DuplicateState.STALE:
                raise AppError("STALE_RPC", {})
            index = self._log_rpc_index.get(args.rpc_id)
            if index is not None:
                return self._reply_after_commit(
                    index, self._spec_results.get(index), ctx)
        op = args.op
        if isinstance(op, Read) or not op.is_update:
            # Leased fast path: a leader with a fresh majority lease and
            # no conflicting uncommitted op may answer locally — the
            # strong-leader read optimization §6 contrasts with EPaxos.
            if (self._read_lease_valid()
                    and not self._conflicts_with_uncommitted(op)):
                self.stats["lease_reads"] += 1
                result, _ = self.store.execute(op)
                return ProposeReply(result=result, synced=True,
                                    term=self.current_term)
            entry = self._append_local(op, None)
            result, _ = self._spec_store.execute(op)
            return self._reply_after_commit(entry.index, result, ctx)
        # Commutativity vs the uncommitted window (§A.2).
        conflict = self._conflicts_with_uncommitted(op)
        entry = self._append_local(op, args.rpc_id)
        result, _ = self._spec_store.execute(op, rpc_id=args.rpc_id)
        self._spec_results[entry.index] = result
        for peer in self.peers:
            if peer != self.name:
                self._replicate_to(peer)
        if not self.config.curp or conflict:
            self.stats["conflict_commits"] += 1
            return self._reply_after_commit(entry.index, result, ctx)
        self.stats["speculative"] += 1
        return ProposeReply(result=result, synced=False,
                            term=self.current_term)

    def _read_lease_valid(self) -> bool:
        """Majority-ack lease: safe to read locally (global sim clock).

        The leader must also have *held* leadership longer than one
        lease, so a deposed predecessor's lease cannot overlap ours.
        """
        lease = self.config.read_lease_duration
        if lease <= 0 or self.role != "leader":
            return False
        now = self.sim.now
        if now - self._leader_since < lease:
            return False
        fresh = sum(1 for t in self._last_ack.values()
                    if now - t <= lease)
        return 1 + fresh >= self.majority

    def _conflicts_with_uncommitted(self, op: Operation) -> bool:
        touched = set(op.touched_keys())
        for entry in self.log[self.commit_index:]:
            if entry.op is NOOP:
                continue
            other = entry.op
            if set(other.mutated_keys()) & touched:
                return True
            if set(op.mutated_keys()) & set(other.touched_keys()):
                return True
        return False

    def _reply_after_commit(self, index: int, result, ctx):
        def work():
            done = self.sim.event()
            if index <= self.commit_index:
                done.succeed()
            else:
                self._commit_waiters.append((index, done))
            yield done
            return ProposeReply(result=result, synced=True,
                                term=self.current_term)
        return work()

    def _handle_wait_commit(self, args, ctx):
        """Client slow path: wait until everything proposed so far (at
        this leader) is committed."""
        if self.role != "leader":
            raise AppError("NOT_LEADER", {"hint": self.leader_hint,
                                          "term": self.current_term})
        target = self.last_log_index()
        def work():
            done = self.sim.event()
            if target <= self.commit_index:
                done.succeed()
            else:
                self._commit_waiters.append((target, done))
            yield done
            return "COMMITTED"
        return work()

    # ------------------------------------------------------------------
    # witness component (§A.2)
    # ------------------------------------------------------------------
    def _handle_w_record(self, args: WitnessRecordArgs, ctx):
        if args.term < max(self.witness_term, self.current_term):
            # Stale term: zombie-leader client — reject and teach it.
            return ("REJECTED", self.current_term, self.leader_hint)
        if self.witness_frozen:
            return ("REJECTED", self.current_term, self.leader_hint)
        if args.term > self.witness_term:
            # First record of a newer term: earlier-term records are
            # obsolete (their leader change replayed or dropped them).
            self.witness.clear()
            self.witness_term = args.term
        accepted = self.witness.record(args.key_hashes, args.rpc_id,
                                       args.request)
        return ("ACCEPTED" if accepted else "REJECTED",
                self.current_term, self.leader_hint)

    def _handle_w_recovery(self, args, ctx):
        """New leader collecting witness data; freezes this witness."""
        term = args
        if term >= self.witness_term:
            self.witness_frozen = True
        return tuple(self.witness.all_requests())

    def _handle_w_reset(self, args, ctx):
        term = args
        if term >= self.witness_term:
            self.witness.clear()
            self.witness_term = term
            self.witness_frozen = False
        return "OK"

    def _handle_w_gc(self, args, ctx):
        pairs = args
        self.witness.gc(pairs)
        return "OK"

    def _witness_recovery(self):
        """§A.2 leadership-change replay: collect f+1 witness sets,
        replay requests present on ≥ ⌈f/2⌉+1 of them."""
        f = (len(self.peers) - 1) // 2
        need_quorum = f + 1
        need_majority = (f // 2) + (f % 2) + 1  # ⌈f/2⌉ + 1
        collected: list[tuple] = []
        # Own witness first (free), then peers until quorum.
        self.witness_frozen = True
        collected.append(tuple(self.witness.all_requests()))
        for peer in self.peers:
            if len(collected) >= need_quorum:
                break
            if peer == self.name:
                continue
            try:
                requests = yield self.transport.call(
                    peer, "w_recovery", self.current_term,
                    timeout=self.config.rpc_timeout)
                collected.append(requests)
            except RpcError:
                continue
        if len(collected) < need_quorum:
            # Cannot satisfy the §A.2 replay precondition; step down and
            # let another election happen when more replicas are up.
            self._become_follower(self.current_term)
            return
        counts: dict[typing.Any, typing.Any] = {}
        for requests in collected:
            for request in requests:
                entry = counts.setdefault(request.rpc_id, [0, request])
                entry[0] += 1
        for rpc_id, (count, request) in sorted(
                counts.items(), key=lambda kv: str(kv[0])):
            if count < need_majority:
                continue
            state, _ = self.registry.check(rpc_id)
            if state is not DuplicateState.NEW:
                continue
            if rpc_id in self._log_rpc_index:
                continue  # already in our log (will commit under us)
            entry = self._append_local(request.op, rpc_id)
            result, _ = self._spec_store.execute(request.op, rpc_id=rpc_id)
            self._spec_results[entry.index] = result
            self.stats["replayed"] += 1
        # Reset all reachable witnesses for the new term.
        for peer in self.peers:
            if peer == self.name:
                self.witness.clear()
                self.witness_term = self.current_term
                self.witness_frozen = False
                continue
            try:
                yield self.transport.call(peer, "w_reset", self.current_term,
                                          timeout=self.config.rpc_timeout)
            except RpcError:
                continue

    # ------------------------------------------------------------------
    # crash model
    # ------------------------------------------------------------------
    def _on_crash(self) -> None:
        # current_term / voted_for / log are persistent (real Raft
        # fsyncs them); everything else is volatile.
        self.role = "follower"
        self._spec_store = None
        self._spec_results = {}
        self._commit_waiters.clear()
        self.serving = True

    def _on_restart(self) -> None:
        # Rebuild volatile state from the persistent log.
        self.commit_index = 0
        self.last_applied = 0
        self.store = KVStore()
        self.registry = ResultRegistry()
        self._log_rpc_index = {e.rpc_id: e.index for e in self.log
                               if e.rpc_id is not None}
        self._start_election_timer()
