"""Latency statistics."""

from __future__ import annotations

import math
import typing


def percentile(sorted_samples: typing.Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of pre-sorted samples, p in [0,100]."""
    if not sorted_samples:
        raise ValueError("no samples")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile out of range: {p}")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = (p / 100.0) * (len(sorted_samples) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_samples[low]
    frac = rank - low
    base = sorted_samples[low]
    # a + (b-a)*frac rather than a*(1-f)+b*f: the latter underflows to 0
    # for subnormal samples (caught by a hypothesis property test).
    return base + (sorted_samples[high] - base) * frac


class LatencyRecorder:
    """Collects latency samples; answers median/percentile queries."""

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted: list[float] | None = None

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self._samples.append(latency)
        self._sorted = None

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def sorted_samples(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def percentile(self, p: float) -> float:
        return percentile(self.sorted_samples(), p)

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples")
        return sum(self._samples) / len(self._samples)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def summary(self) -> dict[str, float]:
        if not self._samples:
            return {"count": 0}
        return {
            "count": self.count,
            "median": self.median,
            "mean": self.mean,
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
            "min": self.sorted_samples()[0],
            "max": self.sorted_samples()[-1],
        }
