"""Figure 5: CCDF of 100 B write latency, five systems.

Paper numbers (medians): Original RAMCloud (f=3) 13.8 µs, CURP (f=3)
7.3 µs, Unreplicated 6.9 µs; CURP f≤2 indistinguishable from
unreplicated; CURP f=3 adds ~0.4 µs.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.experiments import fig5_write_latency
from repro.metrics import ccdf_points, format_table

PAPER_MEDIANS = {
    "Original RAMCloud (f=3)": 13.8,
    "CURP (f=3)": 7.3,
    "Unreplicated": 6.9,
}


def test_fig5_write_latency(benchmark, scale):
    n_ops = int(600 * scale)
    results = run_once(benchmark, lambda: fig5_write_latency(n_ops=n_ops))
    rows = []
    for label, recorder in results.items():
        rows.append([label, recorder.median, recorder.percentile(90),
                     recorder.p99, recorder.percentile(99.9),
                     PAPER_MEDIANS.get(label, "-")])
    print()
    print(format_table(
        ["system", "median(us)", "p90", "p99", "p99.9", "paper median"],
        rows, title="Figure 5 — write latency distribution"))
    print("\nCCDF sample points (latency_us, fraction >= x):")
    for label in ("Original RAMCloud (f=3)", "CURP (f=3)", "Unreplicated"):
        points = ccdf_points(results[label].samples, points=8)
        rendered = ", ".join(f"({x:.1f}, {y:.3f})" for x, y in points)
        print(f"  {label}: {rendered}")

    curp = results["CURP (f=3)"].median
    original = results["Original RAMCloud (f=3)"].median
    unreplicated = results["Unreplicated"].median
    # Shape assertions from the paper's headline claims.
    assert 1.6 < original / curp < 2.4, "CURP should ~halve write latency"
    assert curp - unreplicated < 1.0, "CURP f=3 overhead should be sub-us"
    assert results["CURP (f=1)"].median - unreplicated < 0.5
    benchmark.extra_info["curp_f3_median_us"] = curp
    benchmark.extra_info["original_median_us"] = original
    benchmark.extra_info["unreplicated_median_us"] = unreplicated
