"""Availability under injected faults: the self-healing loop, measured.

Four canned :class:`~repro.net.faults.FaultPlan` scenarios run against
the same small cluster while the open-loop engine offers steady
traffic and the cluster watchdog (``FailureDetector`` with data-path
probes) watches every member:

- **kill-master** — the master host dies for good; the watchdog must
  detect within its probe budget and drive a supervised recovery onto
  a standby.  This is the scenario that produces a real unavailability
  window, and ``availability.unavailability_window`` is the CI-gated
  lower-is-better headline.
- **gray-witness** — the witness keeps answering pings but drops all
  data-path traffic.  A ping-only detector would wait forever; the
  data probes convict it inside the evidence window and replace it.
  Meanwhile clients ride the 2-RTT sync fallback, so goodput holds.
- **one-way-partition** — master → backup traffic is blocked one way.
  The nastiest of the four: syncs stall, so the first conflicting
  updates wedge the worker pool *forever* while the master still
  answers pings — a textbook gray failure.  The watchdog's master
  data probes (reads through the worker pool) convict the wedged
  host and recover onto the standby, whose backup link works; the
  overload defenses keep the retry storm from collapsing the queue
  in the meantime.
- **slow-disk** — the backup's disk gets an order of magnitude slower
  mid-run (storage model enabled for this scenario only).  The
  speculative 1-RTT path hides it; sync acks queue behind the slow
  disk and drain later — the cluster rides through.

Acceptance (ISSUE 8): for kill-master and gray-witness,
time-to-detect ≤ the configured probe budget and goodput retained
≥ 80% outside the unavailability window.  All virtual-time,
deterministic per seed.
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import run_once
from repro.baselines import curp_config
from repro.cluster import FailureDetector
from repro.core.config import OverloadConfig, StorageProfile
from repro.harness.builder import build_cluster
from repro.harness.profiles import TEST_PROFILE
from repro.metrics import AvailabilityTracker, format_table
from repro.net.faults import (FaultPlan, GrayHost, HostFlap, OneWayPartition,
                              SlowDisk)
from repro.workload.openloop import ConstantRate, OpenLoopEngine, TenantSpec
from repro.workload.ycsb import YcsbWorkload

#: 2 workers × 50 µs/op ≈ 40k ops/s of capacity; we offer half that so
#: every goodput dip is attributable to the fault, not saturation
AVAIL_PROFILE = dataclasses.replace(TEST_PROFILE, name="availability",
                                    master_workers=2, execute_time=50.0)
RATE_OPS_PER_SEC = 20_000.0

#: wide key space keeps update conflicts (which force sync-path waits)
#: rare, so the riding-through scenarios measure the fault, not zipf
MIX = YcsbWorkload(name="avail-mix", read_fraction=0.5, item_count=2_000,
                   value_size=8)

FAULT_START = 20_000.0
FAULT_END = 35_000.0          # transient scenarios heal here
DURATION = 70_000.0
MEASURE_START = 5_000.0       # client connect/ramp excluded from baseline
SLO = 30_000.0

#: watchdog tuning, and the probe budget its detections are held to:
#: miss_threshold failing checks (each burning up to an interval plus
#: a full probe deadline) plus one cycle of phase.  The data-probe SLO
#: is looser than the ping timeout — a master probe rides through the
#: worker queue, and ordinary queueing must not read as gray.
INTERVAL = 500.0
MISS_THRESHOLD = 3
PING_TIMEOUT = 200.0
DATA_PROBE_SLO = 1_000.0
PROBE_BUDGET = (MISS_THRESHOLD + 1) * (INTERVAL + DATA_PROBE_SLO)

#: the PR-6 overload defenses, on: fault windows breed retry storms,
#: and without admission control the master's worker queue grows
#: seconds deep during an outage — goodput then never recovers after
#: the heal (congestion collapse), which is exactly what these bound
OVERLOAD = OverloadConfig(enabled=True, max_queue_depth=16,
                          retry_after=300.0, retry_after_cap=3_000.0)
MAX_QUEUE_WAIT = 5_000.0


def _config(storage: StorageProfile | None = None):
    overrides = dict(rpc_timeout=500.0, max_attempts=40,
                     retry_backoff=100.0, idle_sync_delay=200.0,
                     overload=OVERLOAD)
    if storage is not None:
        overrides["storage"] = storage
    return curp_config(1, **overrides)


def _run_scenario(make_plan, storage: StorageProfile | None = None,
                  seed: int = 17, duration: float = DURATION) -> dict:
    """Build a cluster + watchdog, inject ``make_plan(cluster)``, offer
    open-loop traffic, and score the run."""
    cluster = build_cluster(_config(storage), profile=AVAIL_PROFILE,
                            seed=seed)
    master_standby = cluster.add_host("avail-m-standby", role="master")
    witness_standby = cluster.add_host("avail-w-standby", role="witness")
    backup_standby = cluster.add_host("avail-b-standby", role="backup")
    detector = FailureDetector(
        cluster.coordinator, [master_standby],
        interval=INTERVAL, miss_threshold=MISS_THRESHOLD,
        ping_timeout=PING_TIMEOUT,
        witness_standbys=[witness_standby],
        backup_standbys=[backup_standby],
        data_probes=True, data_probe_slo=DATA_PROBE_SLO,
        gray_threshold=MISS_THRESHOLD)
    detector.start()
    plan = make_plan(cluster)
    injector = cluster.inject_faults(plan)
    engine = OpenLoopEngine(
        cluster,
        [TenantSpec("avail", ConstantRate(RATE_OPS_PER_SEC), MIX,
                    n_clients=8)],
        max_window=64, max_queue_wait=MAX_QUEUE_WAIT, slo=SLO,
        record_timeline=True)
    result = engine.run(duration=duration)
    detector.stop()
    injector.heal_all()

    tracker = AvailabilityTracker(cluster.sim)
    tracker.mark_fault(FAULT_START)
    tracker.observe_watchdog(detector)
    completions = result["per_tenant"]["avail"]["completions"]
    report = tracker.report(completions, measure_end=duration,
                            measure_start=MEASURE_START)
    report["goodput"] = result["goodput"]
    report["failed"] = result["failed"]
    report["detector"] = {
        "recoveries_completed": detector.recoveries_completed,
        "witnesses_replaced": detector.witnesses_replaced,
        "backups_replaced": detector.backups_replaced,
        "gray_detected": detector.gray_detected,
    }
    return report


# ----------------------------------------------------------------------
# the canned plans
# ----------------------------------------------------------------------
def kill_master_plan(cluster) -> FaultPlan:
    """Permanent master kill: only the watchdog brings service back."""
    master_host = cluster.coordinator.masters["m0"].host
    return FaultPlan(events=(HostFlap(host=master_host,
                                      start=FAULT_START),), seed=5)


def gray_witness_plan(cluster) -> FaultPlan:
    """The witness stays pingable but its data path goes dark."""
    witness = cluster.coordinator.masters["m0"].witnesses[0]
    return FaultPlan(events=(GrayHost(host=witness, allow=("ping",),
                                      start=FAULT_START),), seed=5)


def one_way_partition_plan(cluster) -> FaultPlan:
    """master → backup blocked one way, transient; CURP rides through."""
    managed = cluster.coordinator.masters["m0"]
    return FaultPlan(events=(OneWayPartition(src=managed.host,
                                             dst=managed.backups[0],
                                             start=FAULT_START,
                                             end=FAULT_END),), seed=5)


def slow_disk_plan(cluster) -> FaultPlan:
    """The backup's disk degrades 10×, transient (fail-slow).

    10× is the ride-through regime: sync batches drain slower but
    conflict-path worker holds stay under the data-probe SLO.  A much
    slower disk (50×+) pushes sync waits past the SLO and the watchdog
    *escalates* — it convicts the starved master as gray and recovers,
    which is the right call when the data path is that degraded but is
    not what this scenario measures."""
    backup = cluster.coordinator.masters["m0"].backups[0]
    return FaultPlan(events=(SlowDisk(host=backup, multiplier=10.0,
                                      start=FAULT_START,
                                      end=FAULT_END),), seed=5)


def availability_suite(seed: int = 17) -> dict:
    """All four canned scenarios; the snapshot/gate series reads this."""
    reports = {
        "kill_master": _run_scenario(kill_master_plan, seed=seed),
        "gray_witness": _run_scenario(gray_witness_plan, seed=seed),
        "one_way_partition": _run_scenario(one_way_partition_plan,
                                           seed=seed),
        "slow_disk": _run_scenario(
            slow_disk_plan, seed=seed,
            storage=StorageProfile(enabled=True, append_time=0.5,
                                   rotation_time=20.0)),
    }
    return {
        "probe_budget": PROBE_BUDGET,
        "scenarios": reports,
        "unavailability_window":
            reports["kill_master"]["unavailability_window"],
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def test_availability_under_faults(benchmark, scale):
    series = run_once(benchmark, availability_suite)
    scenarios = series["scenarios"]

    rows = []
    for name, report in scenarios.items():
        rows.append([
            name,
            "-" if report["time_to_detect"] is None
            else round(report["time_to_detect"]),
            "-" if report["mttr"] is None else round(report["mttr"]),
            round(report["unavailability_window"]),
            f"{report['goodput_retained']:.2f}",
            round(report["baseline_goodput"]),
        ])
    print()
    print(format_table(
        ["scenario", "detect (µs)", "mttr (µs)", "unavailable (µs)",
         "goodput retained", "baseline/s"],
        rows,
        title=f"Availability under canned fault plans "
              f"(probe budget {round(series['probe_budget'])} µs)"))

    kill = scenarios["kill_master"]
    gray = scenarios["gray_witness"]
    # ISSUE 8 acceptance: detection within the probe budget...
    assert kill["time_to_detect"] is not None \
        and kill["time_to_detect"] <= PROBE_BUDGET, \
        f"kill-master detect {kill['time_to_detect']} > {PROBE_BUDGET}"
    assert gray["time_to_detect"] is not None \
        and gray["time_to_detect"] <= PROBE_BUDGET, \
        f"gray-witness detect {gray['time_to_detect']} > {PROBE_BUDGET}"
    # ...the self-healing loop actually repaired...
    assert kill["detector"]["recoveries_completed"] == 1
    assert gray["detector"]["gray_detected"] == 1
    assert gray["detector"]["witnesses_replaced"] == 1
    # ...and goodput outside the unavailability window held ≥ 80%.
    assert kill["goodput_retained"] >= 0.8, \
        f"kill-master retained only {kill['goodput_retained']:.2f}"
    assert gray["goodput_retained"] >= 0.8, \
        f"gray-witness retained only {gray['goodput_retained']:.2f}"
    # One-way partition: the wedged master (pings fine, workers stuck
    # syncing into the blocked link) is convicted gray by the data
    # probes and recovered onto the standby — service returns while
    # the partition persists, not when it happens to heal.
    oneway = scenarios["one_way_partition"]
    assert oneway["time_to_detect"] is not None \
        and oneway["time_to_detect"] <= PROBE_BUDGET, \
        f"one-way detect {oneway['time_to_detect']} > {PROBE_BUDGET}"
    assert oneway["detector"]["gray_detected"] == 1
    assert oneway["detector"]["recoveries_completed"] == 1
    assert oneway["goodput_retained"] >= 0.8, \
        f"one-way retained only {oneway['goodput_retained']:.2f}"
    assert oneway["unavailability_window"] <= 10_000.0, \
        f"one-way dark for {oneway['unavailability_window']} µs " \
        f"(self-healing should beat the 15 ms fault duration)"
    # Slow disk at 10× is the ride-through regime: the 1-RTT path does
    # not wait for backups, nothing to detect, nothing replaced.
    slow = scenarios["slow_disk"]
    assert slow["detector"]["gray_detected"] == 0
    assert slow["goodput_retained"] >= 0.8, \
        f"slow-disk retained only {slow['goodput_retained']:.2f}"
    assert slow["unavailability_window"] <= 4_000.0, \
        f"slow-disk went dark for {slow['unavailability_window']} µs"
    benchmark.extra_info["unavailability_window"] = \
        series["unavailability_window"]
    benchmark.extra_info["kill_master_detect"] = kill["time_to_detect"]
