"""Linearizability of the CURP consensus extension (§A.2) under leader
crashes and partitions, checked with the Wing–Gong machinery."""

from __future__ import annotations

import pytest

from repro.consensus import RaftConfig, RaftCurpClient, RaftNode
from repro.kvstore import Write
from repro.net import Network
from repro.net.latency import LatencyModel
from repro.sim import Fixed, Simulator
from repro.verify import History, check_linearizable


class RaftHistoryClient:
    """Records RaftCurpClient operations into a verify.History."""

    def __init__(self, client: RaftCurpClient, history: History):
        self.client = client
        self.history = history
        self.sim = client.sim

    def write(self, key, value):
        record = self.history.begin(self.client.tracker.client_id, key,
                                    "write", value, self.sim.now)
        try:
            yield from self.client.update(Write(key, value))
        except Exception:
            return  # pending: may or may not have happened
        self.history.complete(record, value, self.sim.now)

    def read(self, key):
        record = self.history.begin(self.client.tracker.client_id, key,
                                    "read", None, self.sim.now)
        try:
            value = yield from self.client.read(key)
        except Exception:
            return
        self.history.complete(record, value, self.sim.now)
        return value


def build(n=3, seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=LatencyModel(Fixed(20.0)))
    names = [f"r{i}" for i in range(n)]
    nodes = [RaftNode(network.add_host(name), name, names,
                      config=RaftConfig(curp=True))
             for name in names]
    return sim, network, nodes


def wait_leader(sim, nodes, deadline=300_000.0):
    end = sim.now + deadline
    while sim.now < end:
        sim.run(until=sim.now + 1_000.0)
        leaders = [n for n in nodes
                   if n.role == "leader" and n.serving and n.host.alive]
        if len(leaders) == 1:
            return leaders[0]
    raise AssertionError("no leader")


@pytest.mark.parametrize("seed", [1, 2])
def test_concurrent_consensus_clients_linearizable(seed):
    sim, network, nodes = build(seed=seed)
    wait_leader(sim, nodes)
    history = History()
    keys = ["a", "b"]
    processes = []
    for index in range(3):
        host = network.add_host(f"client{index}")
        client = RaftHistoryClient(
            RaftCurpClient(host, [n.name for n in nodes]), history)

        def script(client=client, index=index):
            rng = sim.rng
            for op_number in range(10):
                key = keys[rng.randrange(len(keys))]
                if rng.random() < 0.5:
                    yield from client.write(key, f"c{index}-{op_number}")
                else:
                    yield from client.read(key)
        processes.append(sim.process(script()))
    deadline = sim.now + 10_000_000.0
    while not all(p.triggered for p in processes):
        if sim.now > deadline or not sim.step():
            break
    check_linearizable(history)


@pytest.mark.parametrize("seed", [4, 5])
def test_consensus_linearizable_across_leader_crash(seed):
    sim, network, nodes = build(seed=seed)
    wait_leader(sim, nodes)
    history = History()
    processes = []
    for index in range(2):
        host = network.add_host(f"client{index}")
        client = RaftHistoryClient(
            RaftCurpClient(host, [n.name for n in nodes],
                           max_attempts=60), history)

        def script(client=client, index=index):
            rng = sim.rng
            for op_number in range(10):
                key = ["a", "b"][rng.randrange(2)]
                if rng.random() < 0.6:
                    yield from client.write(key, f"c{index}-{op_number}")
                else:
                    yield from client.read(key)
                yield sim.timeout(rng.uniform(0, 300.0))
        processes.append(sim.process(script()))

    def chaos():
        yield sim.timeout(1_500.0)
        leader = next((n for n in nodes
                       if n.role == "leader" and n.host.alive), None)
        if leader is not None:
            leader.host.crash()
    chaos_process = sim.process(chaos())
    deadline = sim.now + 30_000_000.0
    while not all(p.triggered for p in processes + [chaos_process]):
        if sim.now > deadline or not sim.step():
            break
    assert all(p.triggered for p in processes), "clients stuck"
    completed = sum(1 for r in history.records if not r.is_pending)
    assert completed >= 12  # most ops survived the crash window
    check_linearizable(history)
