"""Benchmark scaling knobs.

Every per-figure benchmark runs at CI scale by default (tens of
seconds for the whole directory).  Set ``REPRO_BENCH_SCALE`` to scale
the op counts / durations up for paper-fidelity runs:

    REPRO_BENCH_SCALE=10 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def run_once(benchmark, fn):
    """Run a simulation experiment exactly once under pytest-benchmark
    (the virtual-time results are deterministic; wall-clock timing of
    one round is all the timing that makes sense)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
