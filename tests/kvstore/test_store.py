"""Unit and property tests for the log-structured store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import (
    ConditionalWrite,
    Delete,
    Increment,
    KVStore,
    MultiWrite,
    Read,
    Write,
)
from repro.rifl import RpcId


def test_write_read_roundtrip():
    store = KVStore()
    result, entry = store.execute(Write("k", "v"), now=1.0)
    assert result == 1  # version
    assert entry is not None and entry.index == 1
    assert store.read("k") == "v"
    value, no_entry = store.execute(Read("k"))
    assert value == "v" and no_entry is None


def test_read_missing_returns_none():
    store = KVStore()
    assert store.execute(Read("ghost"))[0] is None


def test_versions_increment_per_key():
    store = KVStore()
    store.execute(Write("a", 1))
    store.execute(Write("b", 1))
    result, _ = store.execute(Write("a", 2))
    assert result == 2
    assert store.version("a") == 2
    assert store.version("b") == 1


def test_increment_from_missing_starts_at_zero():
    store = KVStore()
    assert store.execute(Increment("c", 5))[0] == 5
    assert store.execute(Increment("c", -2))[0] == 3


def test_increment_type_error_on_non_integer():
    store = KVStore()
    store.execute(Write("s", "text"))
    with pytest.raises(TypeError):
        store.execute(Increment("s"))


def test_conditional_write_matches_version():
    store = KVStore()
    store.execute(Write("k", "v1"))
    ok, _ = store.execute(ConditionalWrite("k", "v2", expected_version=1))
    assert ok == ("OK", 2)
    fail, entry = store.execute(ConditionalWrite("k", "v3", expected_version=1))
    assert fail == ("MISMATCH", 2)
    assert entry is not None and entry.effects == ()  # logged, no effects
    assert store.read("k") == "v2"


def test_delete_removes_and_versions_survive():
    store = KVStore()
    store.execute(Write("k", "v"))
    store.execute(Delete("k"))
    assert store.read("k") is None
    assert store.version("k") == 0
    result, _ = store.execute(Write("k", "v2"))
    assert result == 3  # version counter survived the delete


def test_delete_missing_is_noop_entry():
    store = KVStore()
    result, entry = store.execute(Delete("nope"))
    assert result is True
    assert entry is not None and entry.effects == ()


def test_multiwrite_atomic_versions():
    store = KVStore()
    result, entry = store.execute(MultiWrite((("x", 1), ("y", 2))))
    assert result == (1, 1)
    assert entry is not None and len(entry.effects) == 2
    assert store.read("x") == 1 and store.read("y") == 2


def test_unsynced_tracking():
    store = KVStore()
    store.execute(Write("a", 1))  # position 1
    store.execute(Write("b", 2))  # position 2
    assert store.is_unsynced("a", synced_position=0)
    assert not store.is_unsynced("a", synced_position=1)
    assert store.is_unsynced("b", synced_position=1)
    assert not store.is_unsynced("ghost", synced_position=0)


def test_log_positions_and_entries_after():
    store = KVStore()
    for i in range(5):
        store.execute(Write(f"k{i}", i))
    assert store.log.end == 5
    tail = store.log.entries_after(3)
    assert [e.index for e in tail] == [4, 5]
    assert store.log.entry(1).effects[0][0] == "k0"
    with pytest.raises(IndexError):
        store.log.entry(6)


def test_rpc_ids_and_results_ride_the_log():
    store = KVStore()
    rpc = RpcId(1, 1)
    result, entry = store.execute(Write("k", "v"), rpc_id=rpc)
    assert entry.rpc_id == rpc
    assert entry.result == result


def test_rebuild_from_entries_reconstructs_state():
    original = KVStore()
    original.execute(Write("a", 1), now=1.0)
    original.execute(Increment("c", 10), now=2.0)
    original.execute(Write("a", 2), now=3.0)
    original.execute(Delete("c"), now=4.0)
    recovered = KVStore()
    last = recovered.rebuild_from_entries(original.log.all_entries())
    assert last == 4
    assert recovered.read("a") == 2
    assert recovered.read("c") is None
    assert recovered.version("a") == 2
    assert recovered.log.end == 4
    # The recovered store keeps appending at the right position.
    _, entry = recovered.execute(Write("d", 1))
    assert entry.index == 5


def test_rebuild_detects_gaps():
    original = KVStore()
    original.execute(Write("a", 1))
    original.execute(Write("b", 2))
    entries = original.log.all_entries()[1:]  # missing entry 1
    with pytest.raises(ValueError, match="gap"):
        KVStore().rebuild_from_entries(entries)


def test_rebuild_requires_empty_store():
    store = KVStore()
    store.execute(Write("a", 1))
    with pytest.raises(RuntimeError):
        store.rebuild_from_entries([])


@given(st.lists(st.tuples(st.sampled_from("abcde"),
                          st.integers(-5, 5)), max_size=40))
@settings(max_examples=100)
def test_property_rebuild_equals_original(writes):
    """Replaying the log always reproduces the exact object state."""
    original = KVStore()
    for i, (key, value) in enumerate(writes):
        if value == 0:
            original.execute(Delete(key), now=float(i))
        else:
            original.execute(Write(key, value), now=float(i))
    recovered = KVStore()
    recovered.rebuild_from_entries(original.log.all_entries())
    for key in "abcde":
        assert recovered.read(key) == original.read(key)
        assert recovered.version(key) == original.version(key)
        assert recovered.last_position_of(key) == original.last_position_of(key)


# ----------------------------------------------------------------------
# cross-shard transaction slices (§B.2): TxnPrepare / TxnCompensate
# ----------------------------------------------------------------------
def test_txn_prepare_applies_and_returns_undo():
    from repro.kvstore import KEEP, TxnPrepare
    store = KVStore()
    store.execute(Write("a", 1))  # version 1
    op = TxnPrepare(items=(("a", 10, 1), ("g", KEEP, 0)), txn_id="t1")
    result, _entry = store.execute(op, now=1.0)
    assert result[0] == "OK"
    assert result[1] == (("a", 1, 1, 2),)  # (key, old, old_ver, new_ver)
    assert store.read("a") == 10
    assert store.pending_txns == {"t1": result[1]}


def test_txn_prepare_requires_txn_id():
    from repro.kvstore import TxnPrepare
    with pytest.raises(ValueError):
        TxnPrepare(items=(("a", 1, 0),))


def test_txn_prepare_mismatch_has_no_effects():
    from repro.kvstore import TxnPrepare
    store = KVStore()
    store.execute(Write("a", 1))
    result, _ = store.execute(TxnPrepare(items=(("a", 10, 99),),
                                         txn_id="t1"))
    assert result == ("MISMATCH", (("a", 1),))
    assert store.read("a") == 1
    assert store.pending_txns == {}


def test_txn_compensate_restores_values_and_tombstones():
    from repro.kvstore import TxnPrepare, TxnCompensate
    store = KVStore()
    store.execute(Write("a", 1))
    result, _ = store.execute(
        TxnPrepare(items=(("a", 10, 1), ("fresh", "x", 0)), txn_id="t"))
    undo = result[1]
    result, _ = store.execute(TxnCompensate(txn_id="t", items=undo))
    assert result == ("OK", (("a", "UNDONE"), ("fresh", "UNDONE")))
    assert store.read("a") == 1
    assert store.read("fresh") is None  # deleted again, not None-valued
    # The version counter never rewinds: a re-created key gets a
    # strictly larger version than the prepared write had.
    recreate, _ = store.execute(Write("fresh", "again"))
    assert recreate > 2
    assert store.pending_txns == {}


def test_txn_compensate_skips_superseded_keys():
    from repro.kvstore import TxnPrepare, TxnCompensate
    store = KVStore()
    store.execute(Write("a", 1))
    result, _ = store.execute(TxnPrepare(items=(("a", 10, 1),),
                                         txn_id="t"))
    undo = result[1]
    store.execute(Write("a", "committed-later"))  # supersedes
    result, _ = store.execute(TxnCompensate(txn_id="t", items=undo))
    assert result == ("OK", (("a", "SUPERSEDED"),))
    assert store.read("a") == "committed-later"  # never clobbered


def test_pending_prepare_blocks_foreign_cas():
    """The saga dirty-read guard: CAS-family ops must not validate
    against a version created by an unresolved prepare — committing on
    it would bake an aborted transaction's value into committed state."""
    from repro.kvstore import ConditionalMultiWrite, TxnPrepare
    store = KVStore()
    store.execute(Write("a", 1))
    store.execute(TxnPrepare(items=(("a", 10, 1),), txn_id="t1"))
    pending_version = store.version("a")
    # Foreign CAS against the prepared version: rejected.
    result, _ = store.execute(
        ConditionalMultiWrite(items=(("a", 99, pending_version),)))
    assert result[0] == "MISMATCH"
    result, _ = store.execute(ConditionalWrite("a", 99, pending_version))
    assert result[0] == "MISMATCH"
    result, _ = store.execute(
        TxnPrepare(items=(("a", 99, pending_version),), txn_id="t2"))
    assert result[0] == "MISMATCH"
    # Resolution lifts the guard.
    assert store.resolve_txn("t1")
    result, _ = store.execute(
        ConditionalMultiWrite(items=(("a", 99, pending_version),)))
    assert result[0] == "OK"


def test_stale_pending_marker_is_not_a_conflict():
    """A blind write superseding the prepared value un-wedges the key
    even if the txn_resolve notification was lost."""
    from repro.kvstore import ConditionalMultiWrite, TxnPrepare
    store = KVStore()
    store.execute(TxnPrepare(items=(("a", 10, 0),), txn_id="t1"))
    store.execute(Write("a", "blind"))  # supersedes the prepared value
    version = store.version("a")
    result, _ = store.execute(
        ConditionalMultiWrite(items=(("a", 99, version),)))
    assert result[0] == "OK"  # marker stale: validating is safe
