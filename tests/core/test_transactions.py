"""Tests for §A.3 optimistic transactions over CURP."""

from __future__ import annotations

import pytest

from repro.core.config import CurpConfig, ReplicationMode
from repro.core.transactions import (
    OptimisticTransaction,
    TransactionAborted,
    run_transaction,
)
from repro.harness import build_cluster
from repro.kvstore import ConditionalMultiWrite, Write
from repro.kvstore.operations import KEEP


def curp_cluster(**kwargs):
    defaults = dict(f=3, mode=ReplicationMode.CURP, min_sync_batch=50,
                    idle_sync_delay=200.0, retry_backoff=10.0,
                    rpc_timeout=200.0)
    defaults.update(kwargs)
    return build_cluster(CurpConfig(**defaults))


# ----------------------------------------------------------------------
# the ConditionalMultiWrite operation itself
# ----------------------------------------------------------------------
def test_cmw_applies_when_versions_match():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))  # version 1
    op = ConditionalMultiWrite(items=(("a", 10, 1), ("b", 20, 0)))
    outcome = cluster.run(client.update(op))
    assert outcome.result[0] == "OK"
    assert cluster.run(client.read("a")) == 10
    assert cluster.run(client.read("b")) == 20


def test_cmw_rejects_on_any_mismatch():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    op = ConditionalMultiWrite(items=(("a", 10, 99), ("b", 20, 0)))
    outcome = cluster.run(client.update(op))
    assert outcome.result[0] == "MISMATCH"
    assert cluster.run(client.read("a")) == 1   # untouched
    assert cluster.run(client.read("b")) is None  # atomicity


def test_cmw_keep_validates_without_writing():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("guard", "g")))  # version 1
    op = ConditionalMultiWrite(items=(("target", "t", 0),
                                      ("guard", KEEP, 1)))
    outcome = cluster.run(client.update(op))
    assert outcome.result[0] == "OK"
    assert cluster.run(client.read("guard")) == "g"  # value unchanged
    assert cluster.run(client.read("target")) == "t"


def test_cmw_witness_slots_cover_read_set():
    """The record must conflict with writes to validate-only keys."""
    op = ConditionalMultiWrite(items=(("w", 1, 0), ("r", KEEP, 0)))
    assert len(op.key_hashes()) == 2
    assert op.mutated_keys() == ("w",)
    assert set(op.touched_keys()) == {"w", "r"}


# ----------------------------------------------------------------------
# the transaction layer
# ----------------------------------------------------------------------
def test_transaction_commit_applies_atomically():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("acct:a", 100)))
    cluster.run(client.update(Write("acct:b", 50)))

    def transfer():
        txn = OptimisticTransaction(client)
        a = yield from txn.read("acct:a")
        b = yield from txn.read("acct:b")
        txn.write("acct:a", a - 30)
        txn.write("acct:b", b + 30)
        yield from txn.commit()
    cluster.run(cluster.sim.process(transfer()))
    assert cluster.run(client.read("acct:a")) == 70
    assert cluster.run(client.read("acct:b")) == 80


def test_transaction_aborts_on_concurrent_write():
    cluster = curp_cluster()
    client_a = cluster.new_client()
    client_b = cluster.new_client()
    cluster.run(client_a.update(Write("x", 1)))

    def doomed():
        txn = OptimisticTransaction(client_a)
        value = yield from txn.read("x")
        # A competing client sneaks in a write before the commit.
        yield from client_b.update(Write("x", 999))
        txn.write("x", value + 1)
        yield from txn.commit()
    with pytest.raises(TransactionAborted):
        cluster.run(cluster.sim.process(doomed()))
    assert cluster.run(client_a.read("x")) == 999  # competitor won


def test_transaction_read_own_staged_write():
    cluster = curp_cluster()
    client = cluster.new_client()

    def body():
        txn = OptimisticTransaction(client)
        txn.write("k", "staged")
        value = yield from txn.read("k")
        assert value == "staged"
        yield from txn.commit()
    cluster.run(cluster.sim.process(body()))
    assert cluster.run(client.read("k")) == "staged"


def test_run_transaction_retries_until_success():
    """Two clients transferring concurrently: retries keep the sum
    invariant (the classic bank test)."""
    cluster = curp_cluster()
    clients = [cluster.new_client() for _ in range(3)]
    setup = clients[0]
    cluster.run(setup.update(Write("bank:a", 300)))
    cluster.run(setup.update(Write("bank:b", 300)))

    def transfer_body(amount):
        def body(txn):
            a = yield from txn.read("bank:a")
            b = yield from txn.read("bank:b")
            txn.write("bank:a", a - amount)
            txn.write("bank:b", b + amount)
            return amount
        return body

    processes = []
    for i, client in enumerate(clients):
        def script(client=client, i=i):
            for j in range(5):
                yield from run_transaction(client, transfer_body(1 + i))
        processes.append(client.host.spawn(script(), name=f"txn{i}"))
    cluster.run(cluster.sim.all_of(processes), timeout=10_000_000.0)
    a = cluster.run(setup.read("bank:a"))
    b = cluster.run(setup.read("bank:b"))
    assert a + b == 600  # invariant held under contention
    moved = 5 * (1 + 2 + 3)
    assert b == 300 + moved


def test_for_update_read_skips_durability_wait():
    """§A.3: the preparation read returns an unsynced value without
    forcing a sync."""
    cluster = curp_cluster(min_sync_batch=1000, idle_sync_delay=1e9)
    client = cluster.new_client()
    cluster.run(client.update(Write("k", "unsynced")))
    master = cluster.master()
    assert master.unsynced_count == 1
    value = cluster.run(client.read("k", for_update=True))
    assert value == "unsynced"
    assert master.unsynced_count == 1  # read did NOT force a sync
    # A plain read does.
    value = cluster.run(client.read("k"))
    assert value == "unsynced"
    assert master.unsynced_count == 0


def test_version_floor_prevents_aba_across_recovery():
    """A transaction prepared against an unsynced value that dies with
    the master must abort, even if the key is rewritten after
    recovery (the versions must not collide)."""
    cluster = curp_cluster(min_sync_batch=1000, idle_sync_delay=1e9)
    client = cluster.new_client()
    cluster.run(client.update(Write("k", "v1")))  # synced via witness...
    # Read for update: sees version of the (witnessed) unsynced write.
    value, version = cluster.run(client.read_versioned("k",
                                                       for_update=True))
    assert value == "v1"
    # Crash; the witnessed write is replayed, but suppose a fresh write
    # lands after recovery: its version must exceed the old one.
    cluster.master().host.crash()
    standby = cluster.add_host("standby", role="master")
    cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master("m0", standby)),
        timeout=10_000_000.0)
    cluster.run(client.update(Write("k", "v2")), timeout=10_000_000.0)
    _v, new_version = cluster.run(client.read_versioned("k"))
    assert new_version > version  # floor jumped: no reuse
    # The stale transaction aborts.
    op = ConditionalMultiWrite(items=(("k", "stale-commit", version),))
    outcome = cluster.run(client.update(op), timeout=10_000_000.0)
    assert outcome.result[0] == "MISMATCH"


def test_transaction_survives_master_crash_mid_flight():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("k", 10)))

    def body(txn):
        value = yield from txn.read("k")
        txn.write("k", value + 1)
        return value

    def chaos():
        yield cluster.sim.timeout(30.0)
        cluster.master().host.crash()
        yield cluster.sim.timeout(100.0)
        standby = cluster.add_host("standby-tx", role="master")
        yield cluster.sim.process(
            cluster.coordinator.recover_master("m0", standby))

    txn_process = cluster.sim.process(
        run_transaction(client, body))
    chaos_process = cluster.sim.process(chaos())
    cluster.run(cluster.sim.all_of([txn_process, chaos_process]),
                timeout=10_000_000.0)
    assert cluster.run(client.read("k"), timeout=1_000_000.0) == 11
