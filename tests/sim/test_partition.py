"""Partitioned simulation (ISSUE 9): mailbox, runner, builder, and
cross-partition protocol traffic.

The golden byte-identity and two-run digest-equality tests live in
``test_scheduler_determinism.py`` next to the pins they defend; this
file covers the machinery itself.
"""

from __future__ import annotations

import sys

import pytest

from repro.baselines import curp_config
from repro.harness.builder import (
    build_cluster,
    build_partitioned_cluster,
    partition_masters,
)
from repro.kvstore.operations import Write
from repro.net.latency import LatencyModel
from repro.net.mailbox import CrossPartitionMailbox, LookaheadViolation
from repro.net.network import Network
from repro.sim.distributions import (
    Exponential,
    Fixed,
    LogNormal,
    Shifted,
    Uniform,
)
from repro.sim.partition import (
    BackendUnavailable,
    PartitionedSimulation,
    available_backends,
    subinterpreters_supported,
)
from repro.sim.simulator import Simulator
from repro.workload.partitioned import (
    build_openloop_partition,
    keys_for_master,
)


# ----------------------------------------------------------------------
# lookahead derivation
# ----------------------------------------------------------------------
def test_distribution_lower_bounds():
    assert Fixed(3.5).lower_bound() == 3.5
    assert Uniform(1.0, 9.0).lower_bound() == 1.0
    assert Exponential(5.0).lower_bound() == 0.0
    assert LogNormal(median=2.0, sigma=0.3).lower_bound() == 0.0
    assert LogNormal(median=2.0, sigma=0.0).lower_bound() == 2.0
    assert Shifted(1.18, LogNormal(1.05, 0.18)).lower_bound() == 1.18


def test_latency_model_min_latency_includes_overrides():
    model = LatencyModel(Fixed(5.0))
    assert model.min_latency() == 5.0
    model.set_pair("a", "b", Uniform(2.0, 4.0))
    assert model.min_latency() == 2.0
    model.set_pair("a", "c", Exponential(9.0))
    assert model.min_latency() == 0.0


# ----------------------------------------------------------------------
# mailbox semantics
# ----------------------------------------------------------------------
def _bare_network(seed: int = 1) -> Network:
    return Network(Simulator(seed=seed), latency=LatencyModel(Fixed(2.0)))


def test_mailbox_registration_guards():
    network = _bare_network()
    network.add_host("local")
    mailbox = CrossPartitionMailbox(network, 0)
    with pytest.raises(ValueError):
        mailbox.register_remote("local", 1)  # exists locally
    with pytest.raises(ValueError):
        mailbox.register_remote("elsewhere", 0)  # own partition
    with pytest.raises(ValueError):
        mailbox.register_remote_prefix("p0-", 0)
    mailbox.register_remote("elsewhere", 1)
    mailbox.register_remote_prefix("p2-", 2)
    assert mailbox.route("elsewhere") == 1
    assert mailbox.route("p2-client9") == 2
    assert mailbox.route("p2-client9") == 2  # cached exact hit
    assert mailbox.route("unknown") is None


def test_unknown_destination_still_raises_with_mailbox():
    network = _bare_network()
    host = network.add_host("a")
    CrossPartitionMailbox(network, 0).register_remote("b", 1)
    host.send("b", "ok")  # remote: exported
    with pytest.raises(KeyError):
        host.send("nowhere", "boom")


def test_remote_send_exports_latency_stamped_envelope():
    network = _bare_network()
    host = network.add_host("a")
    mailbox = CrossPartitionMailbox(network, 0)
    mailbox.register_remote("b", 1)
    host.send("b", "payload", size_bytes=64)
    assert mailbox.exported == 1
    env = mailbox.outbox[0]
    assert env.dst == "b" and env.src_partition == 0
    assert env.deliver_at == 2.0  # Fixed(2.0) wire latency from t=0
    # sender-side stats count the transmission exactly like a local one
    assert network.stats.messages_sent == 1
    assert network.stats.bytes_sent == 64
    assert network.stats.per_host_sent["a"] == 1


def test_mailbox_apply_orders_and_checks_lookahead():
    network = _bare_network()
    got = []
    host = network.add_host("b")
    host.set_message_handler(lambda m: got.append((network.sim.now, m)))
    mailbox = CrossPartitionMailbox(network, 1)
    from repro.net.mailbox import Envelope
    # Deliberately shuffled: apply() must sort by (deliver_at,
    # src_partition, seq).
    envelopes = [Envelope(5.0, 2, 1, "b", "late"),
                 Envelope(3.0, 0, 7, "b", "early"),
                 Envelope(5.0, 0, 2, "b", "mid")]
    mailbox.apply(envelopes)
    network.sim.run(until=10.0)
    assert [payload for _, payload in got] == ["early", "mid", "late"]
    assert [t for t, _ in got] == [3.0, 5.0, 5.0]
    assert mailbox.imported == 3
    # An envelope in the receiver's past is a conservative-window bug.
    network.sim.run(until=20.0)
    with pytest.raises(LookaheadViolation):
        mailbox.apply([Envelope(15.0, 0, 9, "b", "stale")])


# ----------------------------------------------------------------------
# the runner, on bare two-host partitions
# ----------------------------------------------------------------------
class _PairDriver:
    """One host per partition; records everything it receives."""

    def __init__(self, partition_id: int, n_partitions: int):
        self.sim = Simulator(seed=partition_id + 1)
        self.network = Network(self.sim, latency=LatencyModel(Fixed(2.0)))
        self.mailbox = CrossPartitionMailbox(self.network, partition_id)
        self.host = self.network.add_host(f"h{partition_id}")
        self.received: list[tuple[float, str]] = []
        self.host.set_message_handler(
            lambda m: self.received.append((self.sim.now, m.payload)))
        for q in range(n_partitions):
            if q != partition_id:
                self.mailbox.register_remote(f"h{q}", q)

    def send(self, dst: str, payload: str) -> None:
        self.host.send(dst, payload)

    def got(self) -> list:
        return list(self.received)


def _pair_setup(partition_id: int, n_partitions: int, _args):
    return _PairDriver(partition_id, n_partitions)


def test_runner_delivers_cross_partition_at_stamped_time():
    with PartitionedSimulation(_pair_setup, 2, backend="inline") as psim:
        assert psim.lookahead == 2.0  # derived from Fixed(2.0)
        psim.call_on(0, "send", "h1", "hello")
        psim.call_on(1, "send", "h0", "reply")
        psim.advance(10.0)
        got = psim.call("got")
    assert got[0] == [(2.0, "reply")]
    assert got[1] == [(2.0, "hello")]


def test_runner_boundary_drain_delivers_at_exact_until():
    """An envelope due exactly at ``until`` arrives before advance()
    returns — phase boundaries see the same state a serial run would."""
    with PartitionedSimulation(_pair_setup, 2, backend="inline") as psim:
        psim.call_on(0, "send", "h1", "edge")
        psim.advance(2.0)  # deliver_at == until exactly
        got = psim.call_on(1, "got")
    assert got == [(2.0, "edge")]


def test_runner_rejects_backward_advance_and_bad_backend():
    with PartitionedSimulation(_pair_setup, 1, backend="inline") as psim:
        psim.advance(5.0)
        with pytest.raises(ValueError):
            psim.advance(1.0)
    with pytest.raises(ValueError):
        PartitionedSimulation(_pair_setup, 2, backend="teleport")
    with pytest.raises(ValueError):
        PartitionedSimulation(_pair_setup, 0)


def test_subinterpreter_backend_gated_on_312():
    assert {"inline", "process"} <= set(available_backends())
    if sys.version_info < (3, 12):
        assert not subinterpreters_supported()
        with pytest.raises(BackendUnavailable):
            PartitionedSimulation(_pair_setup, 2, backend="subinterpreter")
    elif not subinterpreters_supported():  # pragma: no cover
        with pytest.raises(BackendUnavailable):
            PartitionedSimulation(_pair_setup, 2, backend="subinterpreter")
    else:  # pragma: no cover - 3.12+ only
        with PartitionedSimulation(_pair_setup, 2,
                                   backend="subinterpreter") as psim:
            psim.call_on(0, "send", "h1", "hello")
            psim.advance(10.0)
            assert psim.call_on(1, "got") == [(2.0, "hello")]


def test_zero_lookahead_requires_explicit_value():
    def setup(partition_id, n_partitions, _args):
        driver = _PairDriver(partition_id, n_partitions)
        driver.network.latency = LatencyModel(Exponential(2.0))
        return driver
    with pytest.raises(ValueError):
        PartitionedSimulation(setup, 2, backend="inline")
    with PartitionedSimulation(setup, 2, backend="inline",
                               lookahead=0.5) as psim:
        assert psim.lookahead == 0.5


# ----------------------------------------------------------------------
# the partition-aware builder
# ----------------------------------------------------------------------
def test_partition_masters_split_is_contiguous_and_complete():
    for n_masters, n_partitions in ((4, 2), (4, 4), (5, 2), (7, 3)):
        seen = []
        for p in range(n_partitions):
            block = partition_masters(p, n_partitions, n_masters)
            assert len(block) >= 1
            seen.extend(block)
        assert seen == list(range(n_masters))


def test_build_partitioned_single_partition_is_serial_build():
    serial = build_cluster(curp_config(1), n_masters=2, seed=9)
    sliced = build_partitioned_cluster(0, 1, config=curp_config(1),
                                       n_masters=2, seed=9)
    assert sliced.coordinator.host.name == "coordinator"
    assert sliced.network.mailbox is None
    assert sliced.client_prefix == ""
    assert sorted(sliced.network.hosts) == sorted(serial.network.hosts)
    assert sliced.shard_map.tablets() == serial.shard_map.tablets()


def test_build_partitioned_slice_topology():
    config = curp_config(1)
    slice0 = build_partitioned_cluster(0, 2, config=config,
                                       n_masters=4, seed=9)
    slice1 = build_partitioned_cluster(1, 2, config=config,
                                       n_masters=4, seed=9)
    assert sorted(slice0.masters) == ["m0", "m1"]
    assert sorted(slice1.masters) == ["m2", "m3"]
    # Each slice's shard map still covers the whole keyspace...
    assert (slice0.shard_map.tablets() == slice1.shard_map.tablets())
    assert slice0.shard_map.tablets()[0][0] == 0
    assert slice0.shard_map.tablets()[-1][1] == 2 ** 64
    # ...with remote shards routed through the mailbox.
    assert slice0.network.mailbox.route("m2-host") == 1
    assert slice0.network.mailbox.route("m2-witness0") == 1
    assert slice0.network.mailbox.route("p1-coordinator") == 1
    assert slice0.network.mailbox.route("p1-client3") == 1
    assert slice0.network.mailbox.route("m0-host") is None
    # Local hosts exist; remote ones don't.
    assert "m0-host" in slice0.network.hosts
    assert "m2-host" not in slice0.network.hosts
    with pytest.raises(ValueError):
        build_partitioned_cluster(2, 2, config=config, n_masters=4)
    with pytest.raises(ValueError):
        build_partitioned_cluster(0, 3, config=config, n_masters=2)


def test_partitioned_client_names_are_prefixed():
    cluster = build_partitioned_cluster(0, 2, config=curp_config(1),
                                        n_masters=2, seed=9)
    client = cluster.new_client()
    assert client.host.name == "p0-client1"


# ----------------------------------------------------------------------
# cross-partition protocol traffic (a CURP update spanning partitions)
# ----------------------------------------------------------------------
class _SliceDriver:
    def __init__(self, cluster):
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network
        self.client = None
        self.outcome = None

    def connect(self) -> None:
        if self.cluster.partition_id == 0:
            self.client = self.cluster.new_client()

    def write(self, key: str, value: str) -> None:
        def op():
            outcome = yield from self.client.update(Write(key, value))
            self.outcome = (self.sim.now, outcome.result)
        self.client.host.spawn(op())

    def get_outcome(self):
        return self.outcome

    def read_local(self, master_id: str, key: str):
        master = self.cluster.master(master_id)
        return master.store.read(key)


def _slice_setup(partition_id: int, n_partitions: int, _args):
    cluster = build_partitioned_cluster(partition_id, n_partitions,
                                        config=curp_config(1),
                                        n_masters=2, seed=7)
    return _SliceDriver(cluster)


def test_cross_partition_curp_update_completes():
    """A client in partition 0 updates a key whose shard lives entirely
    in partition 1: the update RPC, witness records, replication and
    all replies cross the mailbox — and the op completes with the value
    durable on the remote master."""
    with PartitionedSimulation(_slice_setup, 2, backend="inline") as psim:
        psim.call("connect")
        # m1 lives in partition 1; pick a key it owns.
        cluster0 = psim._parts[0].driver.cluster
        key = keys_for_master(cluster0, "m1", 1)[0]
        psim.call_on(0, "write", key, "over-the-wire")
        psim.advance(psim.now + 500.0)
        outcome = psim.call_on(0, "get_outcome")
        stored = psim.call_on(1, "read_local", "m1", key)
        exported = psim._parts[0].mailbox.exported
    assert outcome is not None and outcome[1] is not None
    assert stored == "over-the-wire"
    assert exported >= 2  # at least the update RPC + a witness record


def test_process_backend_matches_inline():
    """The multiprocessing backend reproduces the inline backend's run
    bit-for-bit: same completions, same digests, same export counts."""
    args = {"n_masters": 2, "seed": 31, "rate_per_shard": 30_000.0,
            "n_clients": 2, "keys_per_shard": 8, "remote_fraction": 0.25}

    def run(backend: str):
        with PartitionedSimulation(build_openloop_partition, 2,
                                   setup_args=args,
                                   backend=backend) as psim:
            psim.call("start")
            psim.advance(psim.now + 1_000.0)
            psim.call("reset")
            start = psim.now
            psim.advance(start + 5_000.0)
            psim.call("stop")
            results = psim.call("results", 5_000.0)
            digests = psim.call("digest")
        return ([r["completed"] for r in results],
                [r["partition"]["exported"] for r in results],
                digests)

    assert run("inline") == run("process")
