"""RPC error types."""

from __future__ import annotations

import typing


class RpcError(Exception):
    """Base class for everything the RPC layer can raise at a caller."""


class RpcTimeout(RpcError):
    """No response within the caller's deadline.

    Indistinguishable (by design, §3.2.1) from a crashed server, a
    dropped request or a dropped response — callers must retry, and
    exactly-once semantics come from RIFL, not the transport.
    """

    def __init__(self, dst: str, method: str, timeout: float):
        super().__init__(f"rpc {method} to {dst} timed out after {timeout}us")
        self.dst = dst
        self.method = method
        self.timeout = timeout


class AppError(RpcError):
    """A typed application-level error that crosses the wire.

    Handlers raise ``AppError(code, info)``; the transport serializes
    the code and info and re-raises an equivalent AppError at the
    caller.  CURP uses codes like ``WRONG_WITNESS_VERSION``,
    ``WRONG_SHARD`` and ``WITNESS_IMMUTABLE``.
    """

    def __init__(self, code: str, info: typing.Any = None):
        super().__init__(f"{code}: {info!r}")
        self.code = code
        self.info = info


class RemoteError(RpcError):
    """An unexpected exception escaped a server-side handler."""

    def __init__(self, dst: str, method: str, description: str):
        super().__init__(f"remote error in {method} at {dst}: {description}")
        self.dst = dst
        self.method = method
        self.description = description
