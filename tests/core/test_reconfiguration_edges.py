"""Reconfiguration edge cases (§3.6) beyond the happy paths."""

from __future__ import annotations

from repro.core.config import CurpConfig, ReplicationMode
from repro.harness import build_cluster
from repro.kvstore import Write, key_hash


def curp_cluster(**kwargs):
    defaults = dict(f=3, mode=ReplicationMode.CURP, min_sync_batch=50,
                    idle_sync_delay=200.0, retry_backoff=10.0,
                    rpc_timeout=100.0)
    defaults.update(kwargs)
    return build_cluster(CurpConfig(**defaults))


def test_double_witness_replacement_bumps_version_twice():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    for round_number in (1, 2):
        old = cluster.coordinator.masters["m0"].witnesses[0]
        spare = cluster.add_host(f"w-spare{round_number}", role="witness")
        cluster.run(cluster.sim.process(
            cluster.coordinator.replace_witness("m0", old, spare)),
            timeout=10_000_000.0)
    assert cluster.coordinator.masters["m0"].witness_list_version == 2
    assert cluster.master().witness_list_version == 2
    # A twice-stale client still converges (two bounces max).
    outcome = cluster.run(client.update(Write("b", 2)))
    assert outcome.result >= 1
    assert outcome.attempts <= 3


def test_replacement_during_unsynced_window_preserves_data():
    """The §3.6 order matters: the master syncs *before* adopting the
    new witness list, so ops recorded only on the old witnesses are
    durable by the time those witnesses stop being consulted."""
    cluster = curp_cluster(min_sync_batch=1000, idle_sync_delay=1e9)
    client = cluster.new_client()
    for i in range(5):
        outcome = cluster.run(client.update(Write(f"k{i}", i)))
        assert outcome.fast_path
    assert cluster.master().unsynced_count == 5
    old = cluster.coordinator.masters["m0"].witnesses[0]
    spare = cluster.add_host("w-spare", role="witness")
    cluster.run(cluster.sim.process(
        cluster.coordinator.replace_witness("m0", old, spare)),
        timeout=10_000_000.0)
    # The replacement forced the sync.
    assert cluster.master().unsynced_count == 0
    # Crash now: backups alone carry everything (old witnesses gone).
    cluster.master().host.crash()
    standby = cluster.add_host("standby", role="master")
    cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master("m0", standby)),
        timeout=10_000_000.0)
    recovered = cluster.coordinator.masters["m0"].master
    for i in range(5):
        assert recovered.store.read(f"k{i}") == i


def test_migrate_entire_keyspace():
    cluster = build_cluster(CurpConfig(
        f=1, mode=ReplicationMode.CURP, min_sync_batch=50,
        idle_sync_delay=200.0, rpc_timeout=100.0), n_masters=2)
    client = cluster.new_client()
    keys = [f"key-{i}" for i in range(8)]
    m0_keys = [k for k in keys
               if cluster.coordinator.current_view().master_for_hash(
                   key_hash(k)) == "m0"]
    for key in keys:
        cluster.run(client.update(Write(key, f"v-{key}")))
    # Move all of m0's range to m1.
    view = cluster.coordinator.current_view()
    lo, hi = next((lo, hi) for lo, hi, m in view.tablets if m == "m0")
    moved = cluster.run(cluster.sim.process(
        cluster.coordinator.migrate("m0", "m1", lo, hi)),
        timeout=10_000_000.0)
    assert moved == len(m0_keys)
    assert cluster.master("m0").owned_ranges == []
    # Every key (old and new owner) still reads correctly.
    for key in keys:
        assert cluster.run(client.read(key), timeout=10_000_000.0) \
            == f"v-{key}"
    # And writes to migrated keys go to m1.
    if m0_keys:
        before = cluster.master("m1").stats.updates
        cluster.run(client.update(Write(m0_keys[0], "after")),
                    timeout=10_000_000.0)
        assert cluster.master("m1").stats.updates == before + 1


def test_recovery_during_migration_window_filters_moved_keys():
    """Crash after the tablet map moved but while an old witness still
    holds a record for a migrated key: replay must skip it (§3.6's
    'masters will ignore such requests during replay')."""
    cluster = build_cluster(CurpConfig(
        f=1, mode=ReplicationMode.CURP, min_sync_batch=50,
        idle_sync_delay=200.0, rpc_timeout=100.0), n_masters=2)
    client = cluster.new_client()
    key = next(f"key-{i}" for i in range(100)
               if cluster.coordinator.current_view().master_for_hash(
                   key_hash(f"key-{i}")) == "m0")
    cluster.run(client.update(Write(key, "pre-migration")))
    h = key_hash(key)
    cluster.run(cluster.sim.process(
        cluster.coordinator.migrate("m0", "m1", h, h + 1)),
        timeout=10_000_000.0)
    # Sneak a stale record for the migrated key into m0's witness (a
    # delayed packet from a pre-migration client).
    from repro.core.messages import RecordedRequest
    from repro.rifl import RpcId
    witness = cluster.coordinator.witness_servers[
        cluster.witness_hosts["m0"][0]]
    stale_rpc = RpcId(777, 1)
    witness.cache.record([h], stale_rpc,
                         RecordedRequest(op=Write(key, "stale!"),
                                         rpc_id=stale_rpc))
    cluster.master("m0").host.crash()
    standby = cluster.add_host("standby", role="master")
    stats = cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master("m0", standby)),
        timeout=10_000_000.0)
    assert stats["filtered"] >= 1
    # The migrated key's value on m1 is untouched by the stale replay.
    assert cluster.run(client.read(key), timeout=10_000_000.0) \
        == "pre-migration"
