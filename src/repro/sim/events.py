"""Events: the unit of synchronization in the simulator.

An :class:`Event` starts *pending*, becomes *triggered* exactly once
(either succeeded with a value or failed with an exception), and then
invokes its callbacks.  Processes wait on events by ``yield``-ing them;
the simulator resumes the process when the event triggers.

Combinators:

- :class:`AllOf` triggers when every child has triggered (used by CURP
  clients that must hear from the master *and* all f witnesses).
- :class:`AnyOf` triggers when the first child triggers (used for
  timeouts racing a response).
- :class:`QuorumEvent` is the allocation-free hot-path join: armed with
  ``need``/``total`` counts, children report through bound-method
  callbacks, and results land in a pre-sized list — no per-trigger dict
  and no child-watcher closures.  The CURP 1 + f fan-out makes one of
  these per update, so its footprint matters (docs/PERFORMANCE.md).

Completion paths: a process *yields* an event (the simulator resumes
the generator), or a plain callback waits via :meth:`Event.add_callback`
/ :meth:`Event.when_done` — the direct-callback path skips generator
resumption entirely and is what ``RpcTransport.call_cb`` and
:class:`QuorumEvent` build on.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


class EventFailed(Exception):
    """Raised inside a process when the event it waited on failed."""


class Event:
    """A one-shot occurrence at a point in virtual time."""

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[typing.Callable[[Event], None]] | None = []
        self._value: typing.Any = None
        self._exception: BaseException | None = None
        self._triggered = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> typing.Any:
        """The success value (or raises the failure exception)."""
        if not self._triggered:
            raise RuntimeError("event has not triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: typing.Any = None) -> "Event":
        """Trigger the event successfully; callbacks run at `now`."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._enqueue_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure; waiters see the exception."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._enqueue_triggered(self)
        return self

    def add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already ran its callbacks, the callback fires on the
        next simulator step (still at the current virtual time).
        """
        if self.callbacks is None:
            # Already dispatched: schedule an immediate delivery.
            self.sim.schedule_callback(0.0, callback, self)
        else:
            self.callbacks.append(callback)

    def when_done(self, callback: typing.Callable[..., None],
                  *args: typing.Any) -> None:
        """Run ``callback(event, *args)`` when the event triggers.

        The direct-callback completion path: like :meth:`add_callback`
        but carrying arguments in the callback record, so continuation-
        style waiters (the protocol fast paths) need no closure per
        wait.  Dispatch ordering is identical to ``add_callback``.
        """
        if self.callbacks is None:
            self.sim.schedule_callback(0.0, callback, self, *args)
        else:
            self.callbacks.append((callback, args))

    def _dispatch(self) -> None:
        """Invoked by the simulator to run callbacks (exactly once)."""
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            if type(callback) is tuple:
                callback[0](self, *callback[1])
            else:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._triggered:
            state = "ok" if self._exception is None else "failed"
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: typing.Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim._schedule_timeout(self, delay, value)


class _Condition(Event):
    """Base for AllOf/AnyOf: watches child events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.triggered:
                # Deliver through the queue for deterministic ordering.
                self.sim.schedule_callback(0.0, self._child_done, event)
            else:
                event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError

    def _values(self) -> dict[Event, typing.Any]:
        return {e: e._value for e in self.events if e.triggered and e.ok}


class AllOf(_Condition):
    """Triggers when all children triggered.

    Succeeds with ``{event: value}`` for all children.  Fails as soon as
    any child fails (remaining children keep running).
    """

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._values())


class AnyOf(_Condition):
    """Triggers when the first child triggers (success or failure)."""

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self.succeed(self._values())


class QuorumEvent(Event):
    """Allocation-free join of ``total`` children, done after ``need``.

    The hot-path replacement for :class:`AllOf` on the CURP operation
    path (one join per update: master reply + f witness records).
    Differences that make it cheap:

    - results land in a **pre-sized list** (``results[i]`` is child
      ``i``'s value, or its exception instance on failure) — no
      ``{event: value}`` dict per trigger;
    - children report through **bound-method callbacks** —
      :meth:`child_result` for ``RpcTransport.call_cb`` completions
      (no child :class:`Event` at all), :meth:`watch` for existing
      events — no per-child watcher closure;
    - succeeds with the results list once ``need`` children reported
      (default: all of them); later reports are ignored.

    ``fail_fast=True`` reproduces :class:`AllOf`'s failure contract:
    the first child *exception* fails the join immediately (remaining
    children keep running and are ignored).  With the default
    ``fail_fast=False`` exceptions are stored in ``results`` and the
    join always completes — protocol code inspects per-child outcomes,
    which is exactly what the CURP client needs (a witness timeout is
    data, not an error).
    """

    __slots__ = ("results", "need", "_reported", "_fail_fast", "_children")

    def __init__(self, sim: "Simulator", total: int,
                 need: int | None = None, fail_fast: bool = False):
        super().__init__(sim)
        if total < 0:
            raise ValueError(f"total must be >= 0: {total}")
        self.need = total if need is None else need
        if not 0 <= self.need <= total:
            raise ValueError(f"need {self.need} outside [0, {total}]")
        self.results: list[typing.Any] = [None] * total
        self._reported = 0
        self._fail_fast = fail_fast
        #: children registered via watch(), aligned with result indexes
        self._children: list[Event] | None = None
        if self.need == 0:
            self.succeed(self.results)

    def child_result(self, index: int, value: typing.Any,
                     error: BaseException | None = None) -> None:
        """Bound-method reporter: child ``index`` finished.

        Pass this (plus the index) straight to ``call_cb`` — the RPC
        layer invokes it with ``(value, error)`` on completion.
        """
        if self._triggered:
            return  # already done (need < total) or failed fast
        if error is not None:
            if self._fail_fast:
                self.fail(error)
                return
            self.results[index] = error
        else:
            self.results[index] = value
        self._reported += 1
        if self._reported >= self.need:
            self.succeed(self.results)

    def watch(self, event: Event) -> Event:
        """Observe a child event; its outcome lands at the next index.

        Generator-path bridge: lets existing event-producing code (test
        shims, cold paths) join through a QuorumEvent with dispatch
        ordering identical to ``AllOf`` over the same children.
        """
        if self._children is None:
            self._children = []
        index = len(self._children)
        if index >= len(self.results):
            raise ValueError("watch() called more times than total")
        self._children.append(event)
        if event.triggered:
            # Deliver through the queue — the same deterministic
            # ordering AllOf gives already-triggered children.
            self.sim.schedule_callback(0.0, self._on_child, event, index)
        else:
            event.when_done(self._on_child, index)
        return event

    def _on_child(self, event: Event, index: int) -> None:
        if event.ok:
            self.child_result(index, event._value)
        else:
            self.child_result(index, None, event.exception)
