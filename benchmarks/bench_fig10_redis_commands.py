"""Figure 10: median latency of SET / HMSET / INCR, 0-2 witnesses.

Paper shape: all three command types take the fast path (per-key
commutativity covers every Redis data structure, §5.5); 1-witness
overhead is small; 2 witnesses add ~10 µs from TCP tail latency.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.redis_experiments import fig10_command_latency
from repro.metrics import format_table


def test_fig10_redis_commands(benchmark, scale):
    n_ops = int(400 * scale)
    results = run_once(benchmark,
                       lambda: fig10_command_latency(n_ops=n_ops))
    commands = ("SET", "HMSET", "INCR")
    rows = [[label] + [medians[c] for c in commands]
            for label, medians in results.items()]
    print()
    print(format_table(["system"] + list(commands), rows,
                       title="Figure 10 — median latency by command (us)"))

    base = results["Original Redis (non-durable)"]
    one = results["CURP (1 witness)"]
    two = results["CURP (2 witnesses)"]
    for command in commands:
        # Small overhead with 1 witness, larger with 2 — for every
        # command type.
        assert one[command] - base[command] < 10.0
        assert two[command] >= one[command] - 1.0
    benchmark.extra_info["set_overhead_1w"] = one["SET"] - base["SET"]
