"""Witness servers (Figure 4 API).

A witness lives for one master at a time.  Life cycle:

- ``start(masterId)`` (coordinator): begin a fresh *normal-mode* life.
- ``record`` (clients): save commutative requests; REJECTED on
  conflict, capacity, wrong master or recovery mode.
- ``gc`` (master): drop synced requests; report stale suspects.
- ``gc_batch`` (master): the batched variant — pairs coalesced across
  sync rounds, with a ``rounds`` count that keeps stale-suspect aging
  honest under coalescing.
- ``getRecoveryData`` (recovery master): irreversibly freeze into
  *recovery mode* and return saved requests (§4.1, §4.6).
- ``end`` (coordinator): decommission.

Plus ``probe`` for the consistent-backup-read protocol of §A.1.

Witness storage is non-volatile (§3.2.2: flash-backed DRAM): it
survives host crash + restart.  While the host is down, clients'
record RPCs time out and they fall back to the 2-RTT sync path —
availability degrades, consistency never does.

Two deployment shapes share the serving logic:

- :class:`WitnessServer` — the classic one-master-at-a-time endpoint
  (optionally sharing a colocated backup's transport, Figure 2);
- :class:`WitnessEndpoint` — the *multi-tenant* endpoint: one host
  serving several masters'/shards' witness sets behind a single rx
  handler, one :class:`WitnessServer` tenant (own cache, own
  life cycle) per master, routed by the ``master_id`` every witness
  RPC already carries.  ``gc_batch`` flushes arriving from different
  masters within one virtual instant apply as one merged batch at the
  end-of-instant boundary (``WitnessStats.gc_merged``) — the
  receive-side half of the cross-master gc coalescing whose sending
  edge is ``config.gc_piggyback``.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.messages import (
    GcArgs,
    GcBatchArgs,
    GetRecoveryDataArgs,
    ProbeArgs,
    PROBE_COMMUTE,
    PROBE_CONFLICT,
    RECORD_ACCEPTED,
    RECORD_REJECTED,
    RecordArgs,
    SetRangesArgs,
    StartArgs,
)
from repro.core.witness_cache import WitnessCache
from repro.kvstore.operations import is_transactional
from repro.rpc import AppError, RpcTransport

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


MODE_UNCONFIGURED = "unconfigured"
MODE_NORMAL = "normal"
MODE_RECOVERY = "recovery"


#: the witness wire API (Figure 4 + probe): one registration table
#: shared by the single-tenant server and the multi-tenant endpoint so
#: a future RPC cannot be added to one deployment and silently missed
#: by the other — both classes must implement every handler attribute.
_WITNESS_RPC_HANDLERS: tuple[tuple[str, str], ...] = (
    ("record", "_handle_record"),
    ("gc", "_handle_gc"),
    ("gc_batch", "_handle_gc_batch"),
    ("get_recovery_data", "_handle_recovery_data"),
    ("probe", "_handle_probe"),
    ("start", "_handle_start"),
    ("set_ranges", "_handle_set_ranges"),
    ("end", "_handle_end"),
)


@dataclasses.dataclass
class WitnessStats:
    """Counters for a multi-tenant :class:`WitnessEndpoint`."""

    records: int = 0
    #: record RPCs rejected by per-tenant fair admission (the windowed
    #: budget; only moves when the endpoint was built with
    #: ``window_records > 0`` — i.e. ``config.overload`` fairness on)
    records_throttled: int = 0
    gcs: int = 0
    gc_batches: int = 0
    #: gc_batch flushes that applied inside a cross-master merged
    #: batch (≥ 2 masters' flushes landed in the same virtual instant)
    gc_merged: int = 0
    #: merged apply passes (one per instant with flushes from ≥ 2 masters)
    gc_merge_batches: int = 0


class WitnessServer:
    """One witness endpoint on a host.

    ``register=False`` builds a *tenant*: the serving logic without any
    transport registration, for a :class:`WitnessEndpoint` that routes
    several masters' traffic through one rx handler.
    """

    def __init__(self, host: "Host", slots: int = 4096, associativity: int = 4,
                 stale_threshold: int = 3, record_time: float = 0.0,
                 transport: RpcTransport | None = None,
                 register: bool = True):
        self.host = host
        self.sim = host.sim
        self.mode = MODE_UNCONFIGURED
        self.master_id: str | None = None
        #: the served master's owned key-hash ranges, when known: records
        #: for hashes outside them are rejected (a stale-routed client
        #: racing a migration, §3.6).  None = accept any hash.
        self.owned_ranges: tuple[tuple[int, int], ...] | None = None
        #: records evicted because their key hash left the master's
        #: ownership (set_ranges at migration cutover)
        self.records_evicted = 0
        self.cache = WitnessCache(slots=slots, associativity=associativity,
                                  stale_threshold=stale_threshold)
        #: CPU time to process one record RPC (profiles; §5.2 measures
        #: 1270k records/s ≈ 0.8 µs each)
        self.record_time = record_time
        self.records_processed = 0
        self.gcs_processed = 0
        self.gc_batches_processed = 0
        #: accepted records carrying cross-shard saga operations
        #: (TxnPrepare / TxnCompensate, §B.2) — these occupy slots and
        #: replay on recovery exactly like any other update record
        self.txn_records = 0
        # Witnesses are lightweight and can share a host (and its RPC
        # endpoint) with a backup — Figure 2's colocated deployment.
        self.transport = transport or RpcTransport(host)
        if register:
            for method, handler in _WITNESS_RPC_HANDLERS:
                self.transport.register(method, getattr(self, handler))
            # Control-path liveness for the cluster watchdog; guarded
            # because a colocated backup may share this transport.
            if "ping" not in self.transport._handlers:
                self.transport.register("ping", lambda args, ctx: "PONG")
        # NVM: no crash hook — cache contents survive crash/restart.

    # ------------------------------------------------------------------
    # client-facing
    # ------------------------------------------------------------------
    def _handle_record(self, args: RecordArgs, ctx):
        if self.record_time > 0:
            # Charge the CPU time without spawning a process per record
            # (the witness sees one of these per update per client —
            # hot path).  The incarnation guard reproduces the old
            # generator's crash semantics: a record in flight when the
            # host dies is dropped, not replied to.
            self.sim.schedule_callback(self.record_time,
                                       self._record_deferred, args, ctx,
                                       self.host.incarnation)
            return RpcTransport.DEFERRED
        return self._record_now(args)

    def _record_deferred(self, args: RecordArgs, ctx,
                         incarnation: int) -> None:
        if not self.host.alive or self.host.incarnation != incarnation:
            return
        try:
            ctx.reply(self._record_now(args))
        except Exception as error:  # noqa: BLE001 - serialize to caller,
            # matching the generator path's REMOTE_ERROR containment
            if not ctx.replied:
                ctx.reply_error("REMOTE_ERROR",
                                f"{type(error).__name__}: {error}")

    def _record_now(self, args: RecordArgs) -> str:
        self.records_processed += 1
        if self.mode != MODE_NORMAL or args.master_id != self.master_id:
            # Wrong master, decommissioned, or frozen for recovery: the
            # client cannot complete in 1 RTT through this witness.
            return RECORD_REJECTED
        ranges = self.owned_ranges
        if ranges is not None and not all(
                any(lo <= h < hi for lo, hi in ranges)
                for h in args.key_hashes):
            # The key migrated away from this witness's master: the op
            # can never complete here, and an accepted record would pin
            # a slot the owning master's gc cycle can no longer reach.
            return RECORD_REJECTED
        accepted = self.cache.record(args.key_hashes, args.rpc_id, args.request)
        if accepted and args.request is not None \
                and is_transactional(args.request.op):
            self.txn_records += 1
        return RECORD_ACCEPTED if accepted else RECORD_REJECTED

    def _handle_probe(self, args: ProbeArgs, ctx):
        """§A.1: COMMUTE means a backup's value for these keys is fresh.

        Conservative in every non-normal state: recovery mode or a
        different master ⇒ CONFLICT, pushing the reader to the master.
        """
        if self.mode != MODE_NORMAL or args.master_id != self.master_id:
            return PROBE_CONFLICT
        if self.cache.commutes_with(args.key_hashes):
            return PROBE_COMMUTE
        return PROBE_CONFLICT

    # ------------------------------------------------------------------
    # master-facing
    # ------------------------------------------------------------------
    def _handle_gc(self, args: GcArgs, ctx):
        if self.mode != MODE_NORMAL or args.master_id != self.master_id:
            raise AppError("WRONG_WITNESS_STATE", {"mode": self.mode})
        self.gcs_processed += 1
        stale = self.cache.gc(args.pairs)
        return tuple(stale)

    def _handle_gc_batch(self, args: GcBatchArgs, ctx):
        """Batched drop: pairs coalesced across sync rounds.  Unknown
        RpcIds are a harmless no-op (the record may have been rejected
        or already collected)."""
        stale = self.apply_gc_batch(args.master_id, args.pairs, args.rounds)
        if stale is None:
            raise AppError("WRONG_WITNESS_STATE", {"mode": self.mode})
        return stale

    def apply_gc_batch(self, master_id: str, pairs, rounds: int):
        """Apply a gc batch delivered by any route — the ``gc_batch``
        RPC or merged into a colocated backup's ``replicate``
        (config.gc_piggyback).  Returns the stale-suspect tuple, or
        ``None`` when this witness no longer serves ``master_id`` (the
        RPC path turns that into WRONG_WITNESS_STATE; the piggyback
        path drops the batch, as a standalone error would)."""
        if self.mode != MODE_NORMAL or master_id != self.master_id:
            return None
        self.gcs_processed += 1
        self.gc_batches_processed += 1
        return tuple(self.cache.gc_batch(pairs, rounds=rounds))

    # ------------------------------------------------------------------
    # recovery-facing
    # ------------------------------------------------------------------
    def _handle_recovery_data(self, args: GetRecoveryDataArgs, ctx):
        if self.master_id != args.master_id or self.mode == MODE_UNCONFIGURED:
            raise AppError("WRONG_WITNESS_STATE",
                           {"mode": self.mode, "master": self.master_id})
        # Irreversible (§4.1): even a duplicate getRecoveryData keeps the
        # witness frozen; record RPCs are rejected from now on.
        self.mode = MODE_RECOVERY
        return tuple(self.cache.all_requests())

    # ------------------------------------------------------------------
    # coordinator-facing
    # ------------------------------------------------------------------
    def start_for(self, master_id: str,
                  owned_ranges: typing.Sequence[tuple[int, int]] | None = None,
                  ) -> None:
        """Begin a fresh life for (possibly another) master."""
        self.master_id = master_id
        self.mode = MODE_NORMAL
        self.owned_ranges = (None if owned_ranges is None
                             else tuple(owned_ranges))
        self.cache.clear()

    def set_ranges(self,
                   owned_ranges: typing.Sequence[tuple[int, int]]) -> int:
        """Adopt the master's post-reconfiguration ownership (§3.6
        migration cutover / tablet split) *without* clearing the cache.

        Records whose key hash left the ranges are evicted: the
        migration synced the source before cutover, so every completed
        update among them is already durable, and nothing that can
        still complete is lost.  Returns the eviction count."""
        self.owned_ranges = tuple(owned_ranges)
        dropped = self.cache.drop_outside(self.owned_ranges)
        self.records_evicted += dropped
        return dropped

    def _handle_start(self, args: StartArgs, ctx):
        self.start_for(args.master_id, args.owned_ranges)
        return "SUCCESS"

    def _handle_set_ranges(self, args: SetRangesArgs, ctx):
        if self.mode != MODE_NORMAL or args.master_id != self.master_id:
            raise AppError("WRONG_WITNESS_STATE", {"mode": self.mode})
        return self.set_ranges(args.owned_ranges)

    def _handle_end(self, args, ctx):
        self.master_id = None
        self.mode = MODE_UNCONFIGURED
        self.owned_ranges = None
        self.cache.clear()
        return None


class WitnessEndpoint:
    """Multi-tenant witness host: several masters' witness sets behind
    one rx handler.

    Each served master gets a :class:`WitnessServer` *tenant* with its
    own cache and life cycle (start / recovery freeze / end apply per
    tenant — a recovering master must not disturb its neighbours), all
    routed by the ``master_id`` every witness RPC carries.  Capacity is
    per tenant, matching the paper's per-master witness sizing (§4.2).

    Receive-side cross-master gc merge: ``gc_batch`` flushes are
    buffered for the current virtual instant and applied together at
    the end-of-instant boundary, so flushes arriving from different
    masters in one instant — e.g. unpacked from one coalesced frame,
    or landing in the same scheduling quantum under load — cost one
    merged apply pass instead of N independent dispatches.  Each
    master still receives exactly its own stale-suspect list on its
    own reply.  Merged flushes are counted in
    ``WitnessStats.gc_merged``.  Timing is unchanged: the merge runs
    within the same instant the flushes arrived.
    """

    def __init__(self, host: "Host", slots: int = 4096,
                 associativity: int = 4, stale_threshold: int = 3,
                 record_time: float = 0.0,
                 transport: RpcTransport | None = None,
                 fair_window: float = 0.0, window_records: int = 0):
        self.host = host
        self.sim = host.sim
        self.slots = slots
        self.associativity = associativity
        self.stale_threshold = stale_threshold
        self.record_time = record_time
        self.tenants: dict[str, WitnessServer] = {}
        self.stats = WitnessStats()
        # -- per-tenant fair admission (config.overload) ---------------
        #: accounting window length (µs); with ``window_records == 0``
        #: fairness is off and records flow exactly as before
        self.fair_window = fair_window
        #: record admissions per window across all tenants
        self.window_records = window_records
        self._window_start = 0.0
        self._window_counts: dict[str, int] = {}
        self._window_total = 0
        #: cumulative per-tenant admitted / throttled records (the
        #: fairness series in benchmarks reads these)
        self.tenant_records: dict[str, int] = {}
        self.tenant_throttled: dict[str, int] = {}
        #: gc_batch flushes awaiting this instant's merged apply
        self._pending_gc: list[tuple[GcBatchArgs, typing.Any]] = []
        self._merge_armed = False
        self.transport = transport or RpcTransport(host)
        for method, handler in _WITNESS_RPC_HANDLERS:
            self.transport.register(method, getattr(self, handler))
        # Control-path liveness for the cluster watchdog; guarded
        # because a colocated backup may share this transport.
        if "ping" not in self.transport._handlers:
            self.transport.register("ping", lambda args, ctx: "PONG")
        # Tenant caches are NVM and survive the crash, but flushes
        # buffered for a merge die with the host like any in-flight
        # request — and the armed flag must reset so the *next*
        # incarnation's first flush arms a fresh hook instead of
        # relying on the stale one (which no-ops on its guard).
        host.on_crash(self._on_crash)

    def _on_crash(self) -> None:
        self._pending_gc.clear()
        self._merge_armed = False

    # ------------------------------------------------------------------
    # tenancy
    # ------------------------------------------------------------------
    def serve(self, master_id: str,
              owned_ranges: typing.Sequence[tuple[int, int]] | None = None,
              ) -> WitnessServer:
        """Start (or restart, §3.6) serving ``master_id``'s witness set."""
        tenant = self.tenants.get(master_id)
        if tenant is None:
            tenant = WitnessServer(
                self.host, slots=self.slots,
                associativity=self.associativity,
                stale_threshold=self.stale_threshold,
                record_time=self.record_time, transport=self.transport,
                register=False)
            self.tenants[master_id] = tenant
        tenant.start_for(master_id, owned_ranges)
        return tenant

    def _tenant(self, master_id: str) -> WitnessServer | None:
        return self.tenants.get(master_id)

    # ------------------------------------------------------------------
    # routed handlers
    # ------------------------------------------------------------------
    def _handle_record(self, args: RecordArgs, ctx):
        tenant = self.tenants.get(args.master_id)
        if tenant is None:
            # Unknown master: same contract as a reconfigured witness —
            # the client falls back to the 2-RTT sync path.
            return RECORD_REJECTED
        self.stats.records += 1
        if not self._admit(args.master_id):
            # Fair-admission rejection is indistinguishable on the wire
            # from a capacity/conflict REJECTED: the hot tenant's
            # client takes the 2-RTT sync path (and, if it runs a
            # backpressure driver, shrinks its window) — the other
            # tenants' fast path stays open.  Rejecting *before* the
            # tenant's record_time charge keeps the throttle cheap.
            return RECORD_REJECTED
        return tenant._handle_record(args, ctx)

    def _admit(self, master_id: str) -> bool:
        """Windowed per-tenant fair admission (config.overload).

        The window resets on demand from ``sim.now`` — no timer, no
        event, so a fairness-off endpoint (``window_records == 0``, the
        default) adds nothing to any trace.  A tenant *below* its fair
        share (``window_records / n_tenants``) is always admitted, even
        once the global window budget is spent — so a hot tenant can
        exhaust the budget without ever starving a quiet one; only
        tenants at/over fair share are throttled.  The bounded
        overshoot (at most one fair share per under-share tenant) is
        the price of that guarantee.
        """
        if self.window_records <= 0:
            return True
        now = self.sim.now
        if now - self._window_start >= self.fair_window:
            self._window_start = now
            self._window_counts.clear()
            self._window_total = 0
        count = self._window_counts.get(master_id, 0)
        fair_share = self.window_records / max(1, len(self.tenants))
        if self._window_total >= self.window_records and count >= fair_share:
            self.stats.records_throttled += 1
            self.tenant_throttled[master_id] = (
                self.tenant_throttled.get(master_id, 0) + 1)
            return False
        self._window_counts[master_id] = count + 1
        self._window_total += 1
        self.tenant_records[master_id] = (
            self.tenant_records.get(master_id, 0) + 1)
        return True

    def _handle_probe(self, args: ProbeArgs, ctx):
        tenant = self.tenants.get(args.master_id)
        if tenant is None:
            return PROBE_CONFLICT
        return tenant._handle_probe(args, ctx)

    def _handle_gc(self, args: GcArgs, ctx):
        tenant = self.tenants.get(args.master_id)
        if tenant is None:
            raise AppError("WRONG_WITNESS_STATE",
                           {"mode": MODE_UNCONFIGURED,
                            "master": args.master_id})
        self.stats.gcs += 1
        return tenant._handle_gc(args, ctx)

    def _handle_gc_batch(self, args: GcBatchArgs, ctx):
        """Buffer the flush; all of this instant's flushes apply as one
        merged batch once the instant quiesces."""
        if args.master_id not in self.tenants:
            raise AppError("WRONG_WITNESS_STATE",
                           {"mode": MODE_UNCONFIGURED,
                            "master": args.master_id})
        self._pending_gc.append((args, ctx))
        if not self._merge_armed:
            self._merge_armed = True
            self.sim.at_instant_end(self._apply_gc_merge,
                                    self.host.incarnation)
        return RpcTransport.DEFERRED

    def _apply_gc_merge(self, incarnation: int) -> None:
        """End-of-instant: apply every buffered gc_batch flush.

        Replies go out in arrival order, each carrying only its own
        master's stale suspects.  A crash since arming drops the lot —
        the masters time out and re-send, and a witness that already
        applied a batch treats the re-sent pairs as no-ops.
        """
        if not self.host.alive or self.host.incarnation != incarnation:
            # Stale hook from a previous life: the crash hook already
            # dropped that life's buffer, and anything pending now was
            # accepted by the next incarnation, whose own hook owns it
            # — touch nothing.
            return
        self._merge_armed = False
        pending, self._pending_gc = self._pending_gc, []
        if len({args.master_id for args, _ctx in pending}) > 1:
            self.stats.gc_merged += len(pending)
            self.stats.gc_merge_batches += 1
        for args, ctx in pending:
            self.stats.gc_batches += 1
            tenant = self.tenants.get(args.master_id)
            stale = None
            if tenant is not None:
                stale = tenant.apply_gc_batch(args.master_id, args.pairs,
                                              args.rounds)
            if stale is None:
                mode = MODE_UNCONFIGURED if tenant is None else tenant.mode
                ctx.reply_error("WRONG_WITNESS_STATE", {"mode": mode})
            else:
                ctx.reply(stale)

    def _handle_recovery_data(self, args: GetRecoveryDataArgs, ctx):
        tenant = self.tenants.get(args.master_id)
        if tenant is None:
            raise AppError("WRONG_WITNESS_STATE",
                           {"mode": MODE_UNCONFIGURED,
                            "master": args.master_id})
        # Freezes only this master's tenant; neighbours keep serving.
        return tenant._handle_recovery_data(args, ctx)

    def _handle_start(self, args: StartArgs, ctx):
        self.serve(args.master_id, args.owned_ranges)
        return "SUCCESS"

    def _handle_set_ranges(self, args: SetRangesArgs, ctx):
        tenant = self.tenants.get(args.master_id)
        if tenant is None:
            raise AppError("WRONG_WITNESS_STATE",
                           {"mode": MODE_UNCONFIGURED,
                            "master": args.master_id})
        return tenant._handle_set_ranges(args, ctx)

    def _handle_end(self, args, ctx):
        """Decommission one tenant (args carry a master_id) or, with
        ``None`` args (the single-tenant wire contract), every tenant."""
        master_id = getattr(args, "master_id", args)
        if master_id is None:
            tenants, self.tenants = list(self.tenants.values()), {}
            for tenant in tenants:
                tenant._handle_end(None, ctx)
            return None
        tenant = self.tenants.pop(master_id, None)
        if tenant is not None:
            tenant._handle_end(args, ctx)
        return None
