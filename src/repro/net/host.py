"""Hosts: machines with NICs, crash semantics, and resident processes.

Crash model (fail-stop, §3.1): ``crash()`` interrupts every process
running on the host, bumps the host *incarnation* so stale callbacks
from the previous life are ignored, and makes the network stop
delivering to/from the host.  Volatile state owned by servers on the
host must be dropped by the server's own ``on_crash`` hook; witnesses
keep their storage across crashes because the paper places it in
non-volatile memory (§3.2.2).

NIC serialization: each outgoing message occupies the host's TX path
for ``tx_cost`` µs before it reaches the wire.  A client that fires an
update RPC plus f record RPCs back-to-back therefore staggers them by
tx_cost — this is the mechanism behind the paper's observed 0.4 µs
median penalty at f=3 (Figure 5).

Frame coalescing (``Network(frame_coalescing=True)``): instead of
transmitting immediately, ``send`` packs same-instant messages to the
same destination into a per-destination buffer that flushes as one
:class:`~repro.net.message.Frame` at the end-of-instant boundary
(``Simulator.at_instant_end``).  One frame costs one NIC TX occupation,
one latency sample, one delivery record and one rx dispatch regardless
of how many messages ride in it.  A crash discards every pending
buffer — a restarted incarnation must not flush its previous life's
RPCs — and a flush armed before the crash is dropped by an incarnation
guard.
"""

from __future__ import annotations

import typing

from repro.net.message import Frame, Message
from repro.sim.processes import Process, ProcessGenerator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.sim.simulator import Simulator


class Host:
    """A simulated machine attached to a :class:`Network`."""

    def __init__(self, sim: "Simulator", network: "Network", name: str,
                 tx_cost: float = 0.0, rx_cost: float = 0.0,
                 shared_dispatch: bool = False):
        self.sim = sim
        self.network = network
        self.name = name
        #: NIC serialization cost per outgoing / incoming message (µs)
        self.tx_cost = tx_cost
        self.rx_cost = rx_cost
        #: True = one thread serializes both directions (RAMCloud's
        #: dispatch-thread model, §4.4 — the masters' bottleneck in the
        #: throughput figures); False = independent TX and RX paths
        self.shared_dispatch = shared_dispatch
        self.alive = True
        #: bumped on every crash; schedules from a previous incarnation
        #: compare against it and become no-ops
        self.incarnation = 0
        self._nic_free_at = 0.0
        self._rx_free_at = 0.0
        #: frame coalescing (owned by the network, copied here so the
        #: send hot path pays one attribute probe): when True, sends
        #: buffer per destination and flush as one Frame per instant
        self._coalesce = network.frame_coalescing
        #: per-destination coalescing buffers; a non-empty list means a
        #: flush hook is armed for the current instant
        self._frame_buffers: dict[str, list[Message]] = {}
        self._processes: set[Process] = set()
        self._message_handler: typing.Callable[..., None] | None = None
        self._crash_hooks: list[typing.Callable[[], None]] = []
        self._restart_hooks: list[typing.Callable[[], None]] = []

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, generator: ProcessGenerator, name: str | None = None) -> Process:
        """Run a process tied to this host's lifetime.

        The process is interrupted if the host crashes.
        """
        process = self.sim.process(generator, name=f"{self.name}:{name or 'proc'}")
        self._processes.add(process)
        process.add_callback(lambda _e: self._processes.discard(process))
        return process

    # ------------------------------------------------------------------
    # crash / restart
    # ------------------------------------------------------------------
    def on_crash(self, hook: typing.Callable[[], None]) -> None:
        """Register a hook run when the host crashes (drop volatile state)."""
        self._crash_hooks.append(hook)

    def on_restart(self, hook: typing.Callable[[], None]) -> None:
        self._restart_hooks.append(hook)

    def crash(self) -> None:
        """Fail-stop: kill processes, stop sending/receiving."""
        if not self.alive:
            return
        self.alive = False
        self.incarnation += 1
        # Discard pending (unflushed) coalescing buffers: a frame that
        # never reached the NIC dies with the host, and a restarted
        # incarnation must not flush its previous life's RPCs.  The
        # already-armed flush hook no-ops on the incarnation guard.
        if self._frame_buffers:
            self._frame_buffers.clear()
        for process in list(self._processes):
            process.interrupt("host crashed")
        self._processes.clear()
        for hook in self._crash_hooks:
            hook()

    def restart(self) -> None:
        """Bring the host back (a new, empty incarnation)."""
        if self.alive:
            return
        self.alive = True
        self._nic_free_at = self.sim.now
        self._rx_free_at = self.sim.now
        for hook in self._restart_hooks:
            hook()

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def set_message_handler(self, handler: typing.Callable[..., None]) -> None:
        """Install the (single) inbound message handler — the RPC layer."""
        self._message_handler = handler

    def send(self, dst: str, payload: typing.Any, size_bytes: int = 100) -> None:
        """Queue a message for transmission (fire and forget).

        The message leaves the NIC after serialization; the network adds
        wire latency and delivers to ``dst`` if it is reachable and
        alive at arrival time.  With frame coalescing the message is
        buffered instead and leaves inside this instant's frame to
        ``dst`` at the end-of-instant flush.
        """
        if not self.alive:
            return
        if self._coalesce:
            buffer = self._frame_buffers.get(dst)
            if buffer is None:
                buffer = self._frame_buffers[dst] = []
            if not buffer:
                # First message to dst this instant: arm the flush.
                # Probe the destination now so an unknown host raises
                # at the call site, as the uncoalesced path does —
                # not out of the end-of-instant flush with the
                # sender's stack long gone.
                network = self.network
                if dst not in network.hosts and (
                        network.mailbox is None
                        or not network.mailbox.is_remote(dst)):
                    raise KeyError(f"unknown destination host: {dst}")
                self.sim.at_instant_end(self._flush_frame, dst,
                                        self.incarnation)
            buffer.append(Message(self.name, dst, payload, size_bytes,
                                  self.sim.now))
            return
        now = self.sim.now
        nic_free = self._nic_free_at
        departs = (now if nic_free <= now else nic_free) + self.tx_cost
        self._nic_free_at = departs
        if self.shared_dispatch and self._rx_free_at < departs:
            self._rx_free_at = departs
        self.network._transmit(self, dst, payload, size_bytes, departs)

    def _flush_frame(self, dst: str, incarnation: int) -> None:
        """End-of-instant: transmit the buffered frame to ``dst``.

        The frame occupies the NIC once (one tx_cost) however many
        messages it carries.  A crash since arming discards the flush:
        ``crash()`` already cleared the pre-crash buffer, and a buffer
        refilled by the *next* incarnation within the same instant is
        flushed by that incarnation's own hook, not this stale one.
        """
        if not self.alive or self.incarnation != incarnation:
            return
        messages = self._frame_buffers.get(dst)
        if not messages:
            return
        self._frame_buffers[dst] = []
        now = self.sim.now
        nic_free = self._nic_free_at
        departs = (now if nic_free <= now else nic_free) + self.tx_cost
        self._nic_free_at = departs
        if self.shared_dispatch and self._rx_free_at < departs:
            self._rx_free_at = departs
        self.network._transmit_frame(self, dst, messages, departs)

    def _deliver(self, message: "typing.Any") -> None:
        """Called by the network when a message arrives at this host."""
        if not self.alive or self._message_handler is None:
            return
        if self.rx_cost <= 0:
            if type(message) is Frame:
                self._handle_frame(message)
            else:
                self._message_handler(message)
            return
        # Serialize inbound processing through the RX path (models the
        # cost of taking a packet off the NIC); with shared_dispatch the
        # same accumulator also covers sends, so one thread's worth of
        # µs bounds total message handling — RAMCloud's dispatch model.
        # A Frame passes through whole: rx_cost is charged once per
        # transmission, which is the coalescing win on the rx side.
        now = self.sim.now
        done = max(now, self._rx_free_at) + self.rx_cost
        self._rx_free_at = done
        if self.shared_dispatch:
            self._nic_free_at = max(self._nic_free_at, done)
        self.sim.schedule_callback(done - now, self._dispatch_rx, message,
                                   self.incarnation)

    def _dispatch_rx(self, message: "typing.Any", incarnation: int) -> None:
        """RX-path completion; drops messages from a previous life."""
        if self.alive and self.incarnation == incarnation \
                and self._message_handler is not None:
            if type(message) is Frame:
                self._handle_frame(message)
            else:
                self._message_handler(message)

    def _handle_frame(self, frame: Frame) -> None:
        """Unpack a coalesced frame: contained messages dispatch in
        send order.  A handler that crashes this host mid-frame stops
        the unpack — the tail is lost with the host, exactly as
        separately-transmitted messages would be refused on arrival."""
        for message in frame.messages:
            if not self.alive or self._message_handler is None:
                return
            self._message_handler(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<Host {self.name} {state}>"
