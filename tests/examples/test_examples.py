"""Every example must run clean end to end (they double as system
tests: crash recovery, geo reads, consensus fast path...)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: pathlib.Path):
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}")
    assert result.stdout.strip(), f"{script.name} printed nothing"
    if script.name == "redis_durability.py":
        # The WAL act must actually drive the storage model: segments
        # seal, the cleaner reclaims, recovery partitions, nothing lost.
        assert "segmented WAL" in result.stdout
        assert "cleaner compacted" in result.stdout
        assert "partitioned recovery" in result.stdout
        assert "surviving the crash: 20/20" in result.stdout
    if script.name == "quickstart.py":
        assert "all acknowledged updates survived" in result.stdout
