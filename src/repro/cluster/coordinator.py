"""The cluster configuration manager.

Owns everything the paper assigns to the "system configuration
manager" (§3.6): the tablet map, each master's backup and witness
lists, the monotonically increasing *WitnessListVersion* per master,
master epochs for zombie fencing (§4.7), and client leases (RIFL).

It both *builds* clusters (test/benchmark setup helpers that construct
master/backup/witness servers on hosts) and *operates* them at runtime
(crash recovery, witness replacement, backup replacement, migration) —
the runtime paths go through real RPCs so they exercise the same code a
wire implementation would.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.config import CurpConfig
from repro.core.master import CurpMaster, FULL_RANGE
from repro.core.messages import (
    AbsorbPartitionArgs,
    ClusterView,
    GetRecoveryDataArgs,
    MasterInfo,
    SetRangesArgs,
    StartArgs,
)
from repro.core.recovery import (
    RecoveryFailed,
    build_recovery_master,
    plan_partitions,
    recover,
)
from repro.core.witness import WitnessEndpoint, WitnessServer
from repro.cluster.shard_map import ShardMap
from repro.kvstore.backup import BackupServer, PartitionReadArgs
from repro.rifl import LeaseServer
from repro.rpc import RpcError, RpcTransport, backoff_delay
from repro.sim.events import AllOf

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.network import Network


@dataclasses.dataclass
class ManagedMaster:
    """The coordinator's mutable record of one master."""

    master_id: str
    host: str
    backups: list[str]
    witnesses: list[str]
    witness_list_version: int
    epoch: int
    owned_ranges: list[tuple[int, int]]
    #: direct reference for test inspection (None after its host died)
    master: CurpMaster | None = None
    recovering: bool = False


class Coordinator:
    """Configuration manager for a CURP cluster."""

    def __init__(self, host: "Host", network: "Network", config: CurpConfig,
                 lease_duration: float = 10_000_000.0):
        self.host = host
        self.sim = host.sim
        self.network = network
        self.config = config
        self.lease_server = LeaseServer(host.sim, lease_duration=lease_duration)
        self.masters: dict[str, ManagedMaster] = {}
        self.backup_servers: dict[str, BackupServer] = {}
        self.witness_servers: dict[str, WitnessServer] = {}
        #: multi-tenant witness endpoints by host name: one host serving
        #: several masters' witness sets (``add_witness_endpoint``)
        self.witness_endpoints: dict[str, WitnessEndpoint] = {}
        #: spare hosts used to restore the replication factor when a
        #: backup dies during/before a master recovery
        self.backup_spares: list["Host"] = []
        self.config_version = 0
        #: lazily rebuilt routing snapshot; invalidated by version bumps
        self._shard_map: ShardMap | None = None
        self.transport = RpcTransport(host)
        self.transport.register("register_client", self._handle_register_client)
        self.transport.register("renew_lease", self._handle_renew_lease)
        self.transport.register("get_config", self._handle_get_config)

    # ------------------------------------------------------------------
    # client-facing RPCs
    # ------------------------------------------------------------------
    def _handle_register_client(self, args, ctx):
        return self.lease_server.register_client()

    def _handle_renew_lease(self, args, ctx):
        return self.lease_server.renew(args)

    def _handle_get_config(self, args, ctx):
        return self.current_view()

    @property
    def shard_map(self) -> ShardMap:
        """The routing snapshot for the current configuration version."""
        if (self._shard_map is None
                or self._shard_map.version != self.config_version):
            tablets = [(lo, hi, managed.master_id)
                       for managed in self.masters.values()
                       for lo, hi in managed.owned_ranges]
            self._shard_map = ShardMap.from_tablets(
                tablets, version=self.config_version)
        return self._shard_map

    def current_view(self) -> ClusterView:
        tablets = []
        masters = {}
        for managed in self.masters.values():
            for lo, hi in managed.owned_ranges:
                tablets.append((lo, hi, managed.master_id))
            masters[managed.master_id] = MasterInfo(
                master_id=managed.master_id, host=managed.host,
                backups=tuple(managed.backups),
                witnesses=tuple(managed.witnesses),
                witness_list_version=managed.witness_list_version,
                epoch=managed.epoch)
        return ClusterView(tablets=tuple(tablets), masters=masters,
                           version=self.config_version,
                           shard_map=self.shard_map)

    # ------------------------------------------------------------------
    # cluster building (setup-time, direct construction)
    # ------------------------------------------------------------------
    def create_master(self, master_id: str, master_host: "Host",
                      backup_hosts: typing.Sequence["Host"] = (),
                      witness_hosts: typing.Sequence["Host"] = (),
                      owned_ranges: typing.Sequence[tuple[int, int]] = FULL_RANGE,
                      backup_process_time: float = 0.0,
                      witness_record_time: float = 0.0,
                      **master_kwargs) -> CurpMaster:
        """Build a master with its backups and witnesses."""
        if master_id in self.masters:
            raise ValueError(f"duplicate master id {master_id}")
        if self.config.uses_backups and len(backup_hosts) != self.config.f:
            raise ValueError(f"mode {self.config.mode} with f={self.config.f} "
                             f"requires {self.config.f} backups, got "
                             f"{len(backup_hosts)}")
        witness_hosts = witness_hosts if self.config.uses_witnesses else ()
        transports = {}
        for backup_host in backup_hosts:
            server = BackupServer(backup_host, master_id=master_id,
                                  process_time=backup_process_time,
                                  storage=self.config.storage)
            self.backup_servers[backup_host.name] = server
            transports[backup_host.name] = server.transport
        for witness_host in witness_hosts:
            endpoint = self.witness_endpoints.get(witness_host.name)
            if endpoint is not None:
                # Multi-tenant endpoint: this master becomes one more
                # tenant behind the host's existing rx handler.
                endpoint.serve(master_id, tuple(owned_ranges))
                continue
            server = self.witness_servers.get(witness_host.name)
            if server is None:
                # A witness colocated with a backup (Figure 2) shares
                # the host's RPC endpoint; method names are disjoint.
                server = WitnessServer(
                    witness_host, slots=self.config.witness_slots,
                    associativity=self.config.witness_associativity,
                    stale_threshold=self.config.gc_stale_threshold,
                    record_time=witness_record_time,
                    transport=transports.get(witness_host.name))
                self.witness_servers[witness_host.name] = server
            server.start_for(master_id, tuple(owned_ranges))
            if witness_host.name in transports:
                # Colocated with this master's backup (Figure 2): let
                # replicate RPCs carry merged gc batches to the witness
                # (config.gc_piggyback — the sending-edge merge).
                self.backup_servers[witness_host.name].witness_sink = server
        master = CurpMaster(
            master_host, master_id, self.config,
            backups=[h.name for h in backup_hosts],
            witnesses=[h.name for h in witness_hosts],
            witness_list_version=0, epoch=0,
            lease_server=None,  # masters check leases via expiry RPCs in
                                # tests; wired explicitly where needed
            owned_ranges=owned_ranges, **master_kwargs)
        self.masters[master_id] = ManagedMaster(
            master_id=master_id, host=master_host.name,
            backups=[h.name for h in backup_hosts],
            witnesses=[h.name for h in witness_hosts],
            witness_list_version=0, epoch=0,
            owned_ranges=list(owned_ranges), master=master)
        self.config_version += 1
        return master

    def register_external_master(
            self, master_id: str, host: str,
            backups: typing.Sequence[str] = (),
            witnesses: typing.Sequence[str] = (),
            owned_ranges: typing.Sequence[tuple[int, int]] = FULL_RANGE,
    ) -> ManagedMaster:
        """Record a master whose servers live in another simulation
        partition (sim/partition.py).

        Nothing is built — the hosts named here exist in a different
        partition's network, reachable only through the cross-partition
        mailbox.  The record is what matters: it puts the shard's
        tablets in this coordinator's :class:`ShardMap` and its hosts
        in the :class:`ClusterView`, so local clients route reads and
        updates (and witness records) straight to the remote shard.
        ``managed.master`` stays ``None``; recovery of a remote shard
        belongs to the partition that owns it.
        """
        if master_id in self.masters:
            raise ValueError(f"duplicate master id {master_id}")
        managed = ManagedMaster(
            master_id=master_id, host=host,
            backups=list(backups), witnesses=list(witnesses),
            witness_list_version=0, epoch=0,
            owned_ranges=list(owned_ranges), master=None)
        self.masters[master_id] = managed
        self.config_version += 1
        return managed

    def add_witness_host(self, witness_host: "Host",
                         record_time: float = 0.0) -> WitnessServer:
        """Register a standby witness server (for replacements)."""
        if witness_host.name in self.witness_endpoints:
            # Symmetric to the add_witness_endpoint guard: a new
            # WitnessServer would steal the host's message handler and
            # orphan every tenant behind the endpoint.
            raise ValueError(f"{witness_host.name} already hosts a "
                             f"multi-tenant witness endpoint")
        server = WitnessServer(
            witness_host, slots=self.config.witness_slots,
            associativity=self.config.witness_associativity,
            stale_threshold=self.config.gc_stale_threshold,
            record_time=record_time)
        self.witness_servers[witness_host.name] = server
        return server

    def add_witness_endpoint(self, witness_host: "Host",
                             record_time: float = 0.0) -> WitnessEndpoint:
        """Register a multi-tenant witness endpoint on ``witness_host``.

        Masters subsequently created (or recovered) with this host in
        their witness list are served as tenants of the one endpoint —
        the shared-host deployment that lets f witness hosts serve an
        entire multi-shard cluster.
        """
        if witness_host.name in self.witness_servers:
            raise ValueError(f"{witness_host.name} already hosts a "
                             f"single-tenant witness")
        overload = self.config.overload
        endpoint = WitnessEndpoint(
            witness_host, slots=self.config.witness_slots,
            associativity=self.config.witness_associativity,
            stale_threshold=self.config.gc_stale_threshold,
            record_time=record_time,
            # Per-tenant fair admission rides the overload defenses:
            # off (window_records=0) unless config.overload enables it.
            fair_window=(overload.witness_window
                         if overload.enabled else 0.0),
            window_records=(overload.witness_window_records
                            if overload.enabled else 0))
        self.witness_endpoints[witness_host.name] = endpoint
        return endpoint

    # ------------------------------------------------------------------
    # master crash recovery (§3.3, §4.6)
    # ------------------------------------------------------------------
    def recover_master(self, master_id: str, new_host: "Host",
                       rpc_timeout: float = 2_000.0):
        """Generator: full recovery of a crashed master onto new_host."""
        managed = self.masters[master_id]
        if managed.recovering:
            raise RecoveryFailed(f"{master_id} already recovering")
        managed.recovering = True
        try:
            # 1. Fence: no zombie sync may complete from here on (§4.7).
            # A sync needs *all* f backups to ack, so fencing any one
            # live backup suffices; dead backups cannot ack either.
            # (BackupServer.min_epoch is durable, so a fenced backup
            # stays fenced across restarts.)
            managed.epoch += 1
            reachable = []
            for backup in managed.backups:
                try:
                    yield self.transport.call(backup, "fence", managed.epoch,
                                              timeout=rpc_timeout)
                    reachable.append(backup)
                except RpcError:
                    continue
            if not reachable:
                raise RecoveryFailed(
                    f"could not fence any backup of {master_id}")
            # 2+3. Restore from a backup, replay from a witness.  The
            # new master starts with the reachable backups; dead ones
            # are replaced from spares below.
            new_master = build_recovery_master(
                new_host, master_id, self.config, reachable,
                epoch=managed.epoch, owned_ranges=managed.owned_ranges)
            stats = yield from recover(new_master, reachable,
                                       managed.witnesses,
                                       rpc_timeout=rpc_timeout)
            managed.backups = list(reachable)
            # 4. Fresh witnesses (reset on the same hosts), new version.
            # Unreachable witness hosts are dropped from the list (the
            # clients then use the remaining ones; replace_witness
            # restores full strength later).  An empty list is safe:
            # clients fall back to the 2-RTT sync path.
            started_ranges = tuple(managed.owned_ranges)
            if self.config.uses_witnesses:
                live_witnesses = []
                for witness in managed.witnesses:
                    try:
                        yield self.transport.call(
                            witness, "start",
                            StartArgs(master_id=master_id,
                                      owned_ranges=started_ranges),
                            timeout=rpc_timeout)
                        live_witnesses.append(witness)
                    except RpcError:
                        continue
                managed.witnesses = live_witnesses
                managed.witness_list_version += 1
            new_master.witnesses = list(managed.witnesses)
            new_master.witness_list_version = managed.witness_list_version
            # 5. Go live.  Re-read the tablet bookkeeping first: a
            # migration that completed *during* this recovery already
            # moved ranges, and an activation with the stale pre-crash
            # list would let this master accept keys another master now
            # owns (split brain for stale-map clients).  If the ranges
            # did move since the witnesses were started, re-assert the
            # fresh snapshot on them too — they were started with
            # ``started_ranges`` and would otherwise filter records
            # against stale ownership forever.
            new_master.owned_ranges = list(managed.owned_ranges)
            new_master.active = True
            if (self.config.uses_witnesses
                    and tuple(managed.owned_ranges) != started_ranges):
                yield from self._set_witness_ranges(
                    managed.witnesses, master_id,
                    tuple(managed.owned_ranges), rpc_timeout,
                    best_effort=True)
            old_host = managed.host
            managed.host = new_host.name
            managed.master = new_master
            self.config_version += 1
            # Best-effort depose notice to the replaced host: fencing
            # already blocks its syncs, but a zombie that cannot reach
            # its backups (one-way partition) never learns it was
            # fenced and would shed clients with retryable pushback
            # forever.  Fire-and-forget — dead hosts just time out.
            if old_host != new_host.name:
                self.host.spawn(
                    self._depose_zombie(old_host, managed.epoch,
                                        rpc_timeout),
                    name=f"depose-{old_host}")
            # 6. Restore the replication factor from spares, if any died.
            missing = self.config.f - len(managed.backups)
            while missing > 0 and self.backup_spares:
                spare = self.backup_spares.pop(0)
                server = BackupServer(spare, master_id=master_id,
                                      storage=self.config.storage)
                server.min_epoch = managed.epoch
                self.backup_servers[spare.name] = server
                new_list = managed.backups + [spare.name]
                yield from self._call_until_ok(
                    managed.host, "update_backup_config", tuple(new_list),
                    rpc_timeout)
                managed.backups = new_list
                missing -= 1
            return stats
        finally:
            managed.recovering = False

    def _depose_zombie(self, old_host: str, epoch: int,
                       rpc_timeout: float):
        try:
            yield self.transport.call(old_host, "depose", epoch,
                                      timeout=rpc_timeout)
        except RpcError:
            pass  # dead, unreachable, or already deposed — all fine

    # ------------------------------------------------------------------
    # partitioned fast recovery (RAMCloud-style, docs/STORAGE.md)
    # ------------------------------------------------------------------
    def recover_master_partitioned(self, master_id: str,
                                   recovery_masters: typing.Sequence[str],
                                   rpc_timeout: float = 2_000.0):
        """Generator: recover a crashed master by partitioning its
        tablets across ``recovery_masters`` (surviving masters).

        The scalable half of the recovery story: the dead master's hash
        span is cut into one partition per recovery master (partitions
        spanned by a single witnessed multi-key request are merged),
        every reachable backup scans its *stripe* of the log exactly
        once — bucketing entries for all partitions in one pass, the
        reply gated by its virtual disk — and the recovery masters
        absorb their partitions in parallel: install, RIFL-filtered
        witness replay, re-replication to their own backups.  Recovery
        time therefore scales with backups × recovery masters, not
        with the dead master's data volume on one machine.

        Bookkeeping cuts over per partition as each absorb acks, so a
        mid-flight failure leaves the recovered partitions routable and
        the remainder still owned by the dead master's (retryable)
        entry.  When everything drains, the dead master is removed from
        the map and its witnesses are decommissioned.  Returns a dict
        of recovery statistics.
        """
        managed = self.masters[master_id]
        if managed.recovering:
            raise RecoveryFailed(f"{master_id} already recovering")
        if not recovery_masters:
            raise ValueError("need at least one recovery master")
        if len(set(recovery_masters)) != len(recovery_masters):
            raise ValueError("duplicate recovery master ids")
        targets = []
        for recovery_id in recovery_masters:
            if recovery_id == master_id:
                raise ValueError("cannot recover a master onto itself")
            targets.append(self.masters[recovery_id])
        managed.recovering = True
        try:
            # 1. Fence (§4.7) — same argument as recover_master: a
            # zombie sync needs every backup, so one fenced live backup
            # suffices; dead backups cannot ack either.
            managed.epoch += 1
            reachable = []
            for backup in managed.backups:
                try:
                    yield self.transport.call(backup, "fence", managed.epoch,
                                              timeout=rpc_timeout)
                    reachable.append(backup)
                except RpcError:
                    continue
            if not reachable:
                raise RecoveryFailed(
                    f"could not fence any backup of {master_id}")
            # 2. Witness harvest (freezes the chosen witness, §4.6).
            requests = None
            for witness in managed.witnesses:
                try:
                    requests = yield self.transport.call(
                        witness, "get_recovery_data",
                        GetRecoveryDataArgs(master_id=master_id),
                        timeout=rpc_timeout)
                    break
                except RpcError:
                    continue
            if requests is None and managed.witnesses:
                raise RecoveryFailed(f"no witness reachable among "
                                     f"{list(managed.witnesses)}")
            requests = tuple(requests or ())
            # 3. Log extent from one backup's segment index.
            index = None
            for backup in reachable:
                try:
                    index = yield self.transport.call(
                        backup, "get_segment_index", None,
                        timeout=rpc_timeout)
                    break
                except RpcError:
                    continue
            if index is None:
                raise RecoveryFailed("no backup reachable for the "
                                     "segment index")
            log_end = max((info.last_index for info in index), default=0)
            log_entries = sum(info.entry_count for info in index)
            # 4. Plan the partitions and read the stripes.
            partitions = plan_partitions(managed.owned_ranges,
                                         len(targets), requests)
            entry_buckets = yield from self._read_stripes(
                reachable, log_end, log_entries, partitions, rpc_timeout)
            # 5. Absorb in parallel; bookkeeping cuts over per
            # partition as each ack lands.
            outcomes: dict[int, typing.Any] = {}
            absorbers = []
            for i, partition in enumerate(partitions):
                absorbers.append(self.sim.process(self._absorb_partition(
                    managed, targets[i], partition, entry_buckets[i],
                    rpc_timeout, outcomes, i)))
            if absorbers:
                yield AllOf(self.sim, absorbers)
            failures = [error for error in outcomes.values()
                        if isinstance(error, Exception)]
            if failures:
                raise RecoveryFailed(
                    f"{len(failures)}/{len(partitions)} partitions failed "
                    f"to absorb: {failures[0]!r}")
            # 6. Fully drained: decommission the dead master's frozen
            # witnesses (best effort) and drop it from the map.
            for witness in managed.witnesses:
                try:
                    yield self.transport.call(
                        witness, "end",
                        GetRecoveryDataArgs(master_id=master_id),
                        timeout=rpc_timeout)
                except RpcError:
                    continue
            del self.masters[master_id]
            self.config_version += 1
            return {
                "partitions": len(partitions),
                "recovery_masters": [t.master_id
                                     for t in targets[:len(partitions)]],
                "log_end": log_end,
                "witness_requests": len(requests),
                "absorbed": {targets[i].master_id: stats
                             for i, stats in outcomes.items()},
            }
        finally:
            if master_id in self.masters:
                managed.recovering = False

    def _recovery_read_deadline(self, est_entries: int,
                                rpc_timeout: float) -> float:
        """Deadline for one recovery stripe read, derived from the
        backup's modeled disk service time (docs/STORAGE.md caveat).

        A stripe reply is gated on the disk draining the scan; with a
        slow ``read_entry_time`` that can exceed a fixed ``rpc_timeout``
        and the retry then *re-charges* the disk — each retry queues
        behind the previous scan and times out even harder (a retry
        storm that reads every stripe many times over).  So the
        deadline budgets the worst-case scan — every log entry, since
        a stripe may overlap all segments — doubled for disk time the
        scan queues behind (appends, the cleaner, a retried sibling
        stripe), floored at ``rpc_timeout`` for the pure network
        round-trip.  Purely a timeout bound: no extra rng, no effect
        when storage is disabled."""
        storage = self.config.storage
        if not storage.enabled or est_entries <= 0:
            return rpc_timeout
        return rpc_timeout + 2.0 * est_entries * storage.read_entry_time

    def _read_stripes(self, reachable: list[str], log_end: int,
                      log_entries: int, partitions, rpc_timeout: float):
        """Generator: read the dead master's log once across the
        backup set — each backup scans one index stripe, bucketing for
        every partition — retrying failed stripes on surviving backups.
        Returns one merged entry list per partition."""
        buckets: list[list] = [[] for _ in partitions]
        if log_end == 0 or not partitions:
            return buckets
        read_deadline = self._recovery_read_deadline(log_entries,
                                                     rpc_timeout)
        ranges = tuple(p.ranges for p in partitions)
        pool = list(reachable)
        count = len(pool)
        bounds = [1 + (log_end * i) // count for i in range(count)]
        bounds.append(log_end + 1)
        pending = [(bounds[i], bounds[i + 1]) for i in range(count)
                   if bounds[i] < bounds[i + 1]]
        while pending:
            if not pool:
                raise RecoveryFailed(
                    "every backup failed during partitioned stripe reads")
            outcomes: dict[tuple[int, int], typing.Any] = {}
            readers = []
            assignment = {}
            for i, window in enumerate(pending):
                backup = pool[i % len(pool)]
                assignment[window] = backup
                readers.append(self.sim.process(self._read_one_stripe(
                    backup, window, ranges, read_deadline, outcomes)))
            yield AllOf(self.sim, readers)
            failed = []
            dead = set()
            for window, backup in assignment.items():
                reply = outcomes.get(window)
                if reply is None:
                    failed.append(window)
                    dead.add(backup)
                    continue
                for bucket, stripe_entries in zip(buckets, reply):
                    bucket.extend(stripe_entries)
            pool = [b for b in pool if b not in dead]
            pending = failed
        return buckets

    def _read_one_stripe(self, backup: str, window: tuple[int, int],
                         ranges, deadline: float, outcomes: dict):
        """Process body: one stripe read; failure leaves no outcome."""
        try:
            outcomes[window] = yield self.transport.call(
                backup, "read_partitions",
                PartitionReadArgs(index_lo=window[0], index_hi=window[1],
                                  partitions=ranges),
                timeout=deadline)
        except RpcError:
            pass

    def _absorb_partition(self, managed: ManagedMaster,
                          target: ManagedMaster, partition, entries,
                          rpc_timeout: float, outcomes: dict, i: int):
        """Process body: recover one partition onto ``target``.

        The target's witnesses are widened *before* the absorb (as in
        migration: an early record for the new ranges is harmless, a
        rejected one after cutover would break the 1-RTT path), and the
        coordinator's tablet bookkeeping moves only after the absorb
        acks — the ack means the partition is installed, replayed, and
        re-replicated on the target's own backups.
        """
        try:
            if self.config.uses_witnesses:
                yield from self._set_witness_ranges(
                    target.witnesses, target.master_id,
                    tuple(target.owned_ranges) + tuple(partition.ranges),
                    rpc_timeout)
            stats = yield from self._call_until_ok(
                lambda: target.host, "absorb_partition",
                AbsorbPartitionArgs(
                    dead_master_id=managed.master_id, epoch=managed.epoch,
                    ranges=tuple(partition.ranges),
                    entries=tuple(entries),
                    requests=tuple(partition.requests)),
                rpc_timeout)
            for cut in partition.ranges:
                managed.owned_ranges = _subtract(managed.owned_ranges, cut)
                if cut not in target.owned_ranges:
                    target.owned_ranges.append(cut)
            self.config_version += 1
            if self.config.uses_witnesses:
                # Heal any witness that restarted (losing the widening)
                # while the absorb was in flight.
                yield from self._set_witness_ranges(
                    target.witnesses, target.master_id,
                    tuple(target.owned_ranges), rpc_timeout,
                    best_effort=True)
            outcomes[i] = stats
        except Exception as error:  # noqa: BLE001 - collected, reraised
            # by the caller as RecoveryFailed with the partition kept
            # on the dead master's (retryable) bookkeeping
            outcomes[i] = error

    # ------------------------------------------------------------------
    # witness replacement (§3.6)
    # ------------------------------------------------------------------
    def replace_witness(self, master_id: str, dead_witness: str,
                        new_witness_host: "Host",
                        rpc_timeout: float = 2_000.0):
        """Generator: decommission a crashed witness, install a fresh one.

        Order per §3.6: start the new witness, tell the master (which
        syncs to backups before acknowledging — that sync makes durable
        everything whose only record was on the dead witness), and only
        then publish the new list+version to clients.
        """
        managed = self.masters[master_id]
        if dead_witness not in managed.witnesses:
            raise ValueError(f"{dead_witness} is not a witness of {master_id}")
        if new_witness_host.name not in self.witness_servers:
            self.add_witness_host(new_witness_host)
        yield from self._call_until_ok(
            new_witness_host.name, "start",
            StartArgs(master_id=master_id,
                      owned_ranges=tuple(managed.owned_ranges)),
            rpc_timeout)
        new_list = [new_witness_host.name if w == dead_witness else w
                    for w in managed.witnesses]
        new_version = managed.witness_list_version + 1
        yield from self._call_until_ok(
            managed.host, "update_witness_config", (tuple(new_list), new_version),
            rpc_timeout)
        managed.witnesses = new_list
        managed.witness_list_version = new_version
        self.config_version += 1
        return new_list

    # ------------------------------------------------------------------
    # backup replacement (§3.6: unchanged from standard primary-backup)
    # ------------------------------------------------------------------
    def replace_backup(self, master_id: str, dead_backup: str,
                       new_backup_host: "Host",
                       rpc_timeout: float = 2_000.0):
        managed = self.masters[master_id]
        if dead_backup not in managed.backups:
            raise ValueError(f"{dead_backup} is not a backup of {master_id}")
        server = BackupServer(new_backup_host, master_id=master_id,
                              storage=self.config.storage)
        server.min_epoch = 0
        self.backup_servers[new_backup_host.name] = server
        new_list = [new_backup_host.name if b == dead_backup else b
                    for b in managed.backups]
        yield from self._call_until_ok(
            managed.host, "update_backup_config", tuple(new_list), rpc_timeout)
        managed.backups = new_list
        self.config_version += 1
        return new_list

    # ------------------------------------------------------------------
    # data migration (§3.6)
    # ------------------------------------------------------------------
    def migrate(self, src_master_id: str, dst_master_id: str,
                lo: int, hi: int, rpc_timeout: float = 2_000.0):
        """Generator: move key-hash range [lo, hi) between masters.

        Per §3.6 the source syncs before the final step; stale records
        for migrated keys are filtered during any later replay by the
        ownership check.  The source's witnesses keep their caches
        through the move — clearing them in place (the old protocol)
        opened a crash window where a speculative update acknowledged
        just before the clear lost its only trace — and only their
        *version* advances, forcing stale clients through the refresh
        path.  After cutover the witnesses on both sides learn the new
        ownership (``set_ranges``): the destination's accept the
        migrated range, the source's reject new records for keys that
        left and evict the old ones — safe, because ``migrate_out``
        synced the source, so every completed update in the range is
        already durable.

        Master-addressed steps re-resolve ``managed.host`` per attempt,
        so a source that crashes mid-migration and recovers onto a new
        host lets the retry loop converge instead of hammering the dead
        address until :class:`RecoveryFailed`.
        """
        src = self.masters[src_master_id]
        dst = self.masters[dst_master_id]
        # An abort anywhere before cutover rolls back (best effort —
        # stale-suspect aging reclaims whatever a crashed witness
        # misses, and a crashed source recovers with the coordinator's
        # unsubtracted bookkeeping): the destination's witnesses are
        # narrowed back, and if the source already executed
        # migrate_out, the range is handed straight back to it so
        # [lo, hi) can never end up owned by nobody.
        objects = None
        try:
            # Widen the destination's witnesses *first*: a record for
            # the migrating range arriving there early is harmless (the
            # dst master still answers WRONG_SHARD until cutover, so
            # nothing can complete through it), but rejecting records
            # after cutover because the witnesses lag would break the
            # 1-RTT path.
            if self.config.uses_witnesses:
                yield from self._set_witness_ranges(
                    dst.witnesses, dst_master_id,
                    tuple(dst.owned_ranges) + ((lo, hi),), rpc_timeout)
            # Bump the source's witness-list version (same list, caches
            # intact, witnesses_reset=False keeps the master's gc
            # bookkeeping); the master syncs before acknowledging.
            if self.config.uses_witnesses:
                new_version = src.witness_list_version + 1
                yield from self._call_until_ok(
                    lambda: src.host, "update_witness_config",
                    (tuple(src.witnesses), new_version, False), rpc_timeout)
                src.witness_list_version = new_version
            else:
                yield from self._call_until_ok(lambda: src.host, "sync",
                                               None, rpc_timeout)
            # Final step: stop service on the range, move the objects.
            objects = yield from self._call_until_ok(
                lambda: src.host, "migrate_out", (lo, hi), rpc_timeout)
            yield from self._call_until_ok(
                lambda: dst.host, "migrate_in", (lo, hi, objects),
                rpc_timeout)
        except Exception:
            if objects is not None:
                # migrate_out succeeded but the handover failed: the
                # source subtracted the range from its own ownership,
                # and with the coordinator's map still routing there,
                # clients would WRONG_SHARD-loop forever.  Re-own it on
                # the source (idempotent migrate_in; the source still
                # holds the objects), after asking a half-reached
                # destination to relinquish any partial application.
                try:
                    yield from self._call_until_ok(
                        lambda: dst.host, "migrate_out", (lo, hi),
                        rpc_timeout, max_attempts=2)
                except RecoveryFailed:
                    pass  # unreachable dst — nothing applied to undo
                try:
                    yield from self._call_until_ok(
                        lambda: src.host, "migrate_in", (lo, hi, objects),
                        rpc_timeout, max_attempts=5)
                except RecoveryFailed:
                    pass  # source down too: recovery re-owns it anyway
            if self.config.uses_witnesses:
                yield from self._set_witness_ranges(
                    dst.witnesses, dst_master_id,
                    tuple(dst.owned_ranges), rpc_timeout, best_effort=True)
            raise
        src.owned_ranges = _subtract(src.owned_ranges, (lo, hi))
        if (lo, hi) not in dst.owned_ranges:
            dst.owned_ranges.append((lo, hi))
        self.config_version += 1
        # Cutover done: shrink the source's witnesses to the new
        # ownership, evicting stragglers recorded for migrated keys
        # (safe: migrate_out synced the source, so every completed
        # update in the range is durable) — and re-assert the
        # destination's, healing any witness that restarted (and lost
        # the pre-cutover widening) while the move was in flight.
        if self.config.uses_witnesses:
            yield from self._set_witness_ranges(
                src.witnesses, src_master_id, tuple(src.owned_ranges),
                rpc_timeout)
            yield from self._set_witness_ranges(
                dst.witnesses, dst_master_id, tuple(dst.owned_ranges),
                rpc_timeout)
        return len(objects)

    def _set_witness_ranges(self, witnesses, master_id: str,
                            owned_ranges: tuple[tuple[int, int], ...],
                            rpc_timeout: float,
                            best_effort: bool = False):
        """Generator: push an ownership snapshot to a witness list.
        ``best_effort`` tries each witness once and swallows failures
        (abort paths must not mask the original error)."""
        args = SetRangesArgs(master_id=master_id, owned_ranges=owned_ranges)
        for witness in witnesses:
            if best_effort:
                try:
                    yield self.transport.call(witness, "set_ranges", args,
                                              timeout=rpc_timeout)
                except RpcError:
                    continue
            else:
                yield from self._call_until_ok(witness, "set_ranges", args,
                                               rpc_timeout)

    # ------------------------------------------------------------------
    # tablet splitting / merging (rebalancer bookkeeping)
    # ------------------------------------------------------------------
    def split_tablet(self, master_id: str, lo: int, hi: int, split: int,
                     rpc_timeout: float = 2_000.0):
        """Generator: split owned tablet [lo, hi) at ``split``.

        Pure bookkeeping — ownership of every hash is unchanged, no
        data moves, witnesses keep their ranges.  The split creates the
        tablet boundary a subsequent :meth:`migrate` moves."""
        managed = self.masters[master_id]
        if (lo, hi) not in managed.owned_ranges:
            raise ValueError(f"{master_id} does not own tablet "
                             f"[{lo}, {hi})")
        if not lo < split < hi:
            raise ValueError(f"split {split} outside ({lo}, {hi})")
        yield from self._call_until_ok(
            lambda: managed.host, "split_range", (lo, hi, split),
            rpc_timeout)
        index = managed.owned_ranges.index((lo, hi))
        managed.owned_ranges[index:index + 1] = [(lo, split), (split, hi)]
        self.config_version += 1
        return (lo, split), (split, hi)

    def merge_tablets(self, master_id: str, rpc_timeout: float = 2_000.0):
        """Generator: coalesce a master's adjacent owned tablets (the
        inverse bookkeeping of split: long split/migrate histories must
        not grow the tablet map without bound).  The map version only
        moves when something actually coalesced."""
        managed = self.masters[master_id]
        before = sorted(managed.owned_ranges)
        merged = yield from self._call_until_ok(
            lambda: managed.host, "merge_ranges", None, rpc_timeout)
        managed.owned_ranges = [tuple(r) for r in merged]
        if managed.owned_ranges != before:
            self.config_version += 1
        return tuple(managed.owned_ranges)

    # ------------------------------------------------------------------
    def _call_until_ok(self, dst, method: str, args,
                       rpc_timeout: float, max_attempts: int = 20):
        """``dst`` may be a host name or a zero-arg callable re-resolved
        per attempt (a master that recovers onto a new host mid-retry
        lets the loop converge on the new address).  Retries back off
        exponentially (base rpc_timeout/8, capped at 2×rpc_timeout)
        with jitter, so several coordinator retry loops aimed at one
        recovering host spread out instead of synchronizing."""
        last: Exception | None = None
        for attempt in range(max_attempts):
            target = dst() if callable(dst) else dst
            try:
                value = yield self.transport.call(target, method, args,
                                                  timeout=rpc_timeout)
                return value
            except RpcError as error:
                last = error
                yield self.sim.timeout(backoff_delay(
                    attempt, rpc_timeout / 8, rpc_timeout * 2,
                    self.sim.rng))
        raise RecoveryFailed(f"{method} to {target} kept failing: {last!r}")


def _subtract(ranges: list[tuple[int, int]],
              cut: tuple[int, int]) -> list[tuple[int, int]]:
    from repro.core.master import _subtract_range
    return _subtract_range(ranges, cut)
