"""Operation histories for linearizability checking."""

from __future__ import annotations

import dataclasses
import itertools
import typing


@dataclasses.dataclass
class OpRecord:
    """One client-observed operation.

    ``invoked_at``/``completed_at`` bound the linearization point.  An
    operation whose client crashed (or never saw the response) has
    ``completed_at=None``: the checker may linearize it anywhere after
    the invocation *or drop it entirely* — the standard treatment of
    pending operations.
    """

    client: int
    key: str
    #: "read" | "write" | "increment"
    kind: str
    #: written value / increment delta (None for reads)
    argument: typing.Any
    #: observed result (reads: the value; increments: the new value)
    result: typing.Any
    invoked_at: float
    completed_at: float | None

    @property
    def is_pending(self) -> bool:
        return self.completed_at is None


class History:
    """A set of OpRecords collected from concurrent clients.

    Discrete simulated time can make a client's next invocation
    coincide *exactly* with its previous response; under strict
    Herlihy–Wing semantics touching intervals are concurrent, which
    would let the checker reorder a single client's sequential ops.  A
    real client spends nonzero time between response and next call, so
    ``begin``/``complete`` nudge timestamps by ε to keep per-client
    program order strict.
    """

    _EPSILON = 1e-6

    def __init__(self) -> None:
        self.records: list[OpRecord] = []
        self._counter = itertools.count()
        self._client_last_end: dict[int, float] = {}

    def begin(self, client: int, key: str, kind: str,
              argument: typing.Any, now: float) -> OpRecord:
        invoked = now
        last_end = self._client_last_end.get(client)
        if last_end is not None and invoked <= last_end:
            invoked = last_end + self._EPSILON
        record = OpRecord(client=client, key=key, kind=kind,
                          argument=argument, result=None,
                          invoked_at=invoked, completed_at=None)
        self.records.append(record)
        return record

    def complete(self, record: OpRecord, result: typing.Any,
                 now: float) -> None:
        record.result = result
        record.completed_at = max(now, record.invoked_at + self._EPSILON)
        last = self._client_last_end.get(record.client, 0.0)
        self._client_last_end[record.client] = max(last,
                                                   record.completed_at)

    def by_key(self) -> dict[str, list[OpRecord]]:
        """Partition into per-key subhistories (KV ops on distinct keys
        are independent, so linearizability composes per key)."""
        partitions: dict[str, list[OpRecord]] = {}
        for record in self.records:
            partitions.setdefault(record.key, []).append(record)
        return partitions

    def __len__(self) -> int:
        return len(self.records)
