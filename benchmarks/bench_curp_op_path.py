"""The CURP operation lifecycle, end to end, in wall-clock terms.

Committed-ops/s for the full client → master → witness → backup-sync
path at f ∈ {1, 3}, under both completion models:

- **legacy**: one wrapper process per RPC, joined by ``AllOf`` (the
  seed protocol shape, ``fast_completion=False``);
- **fast**: the callback path — ``call_cb`` into a slotted
  ``QuorumEvent`` on the client, continuation-passing update lifecycle
  on the master (``fast_completion=True``).

Virtual-time results are identical (the single-client trace test pins
that); the delta is pure Python overhead per operation, which is what
the tentpole of ISSUE 3 targets.  ``tools/bench_snapshot.py`` records
the series into ``BENCH_core.json``.
"""

from __future__ import annotations

import dataclasses
import time

from benchmarks.conftest import run_once
from repro.baselines import curp_config
from repro.harness.builder import build_cluster
from repro.workload import run_closed_loop
from repro.workload.ycsb import YcsbWorkload

#: write-only: every op takes the full 1 + f fan-out plus batched sync
OP_PATH_WORKLOAD = YcsbWorkload(name="op-path-writes", read_fraction=0.0,
                                item_count=10_000, value_size=100,
                                distribution="uniform")


def op_path_rate(f: int, fast: bool, duration: float = 4_000.0,
                 n_clients: int = 8, seed: int = 5
                 ) -> tuple[int, float, float]:
    """(committed ops, wall seconds, messages/update) for one run.

    The third element is the closed-loop per-message floor
    (``TrafficStats.messages_per_update``): ~2 × (1 + f) wire
    transmissions per committed update, plus amortized sync/gc — the
    number frame coalescing attacks (``bench_frame_coalescing.py``)."""
    config = dataclasses.replace(curp_config(f), fast_completion=fast)
    started = time.perf_counter()
    cluster = build_cluster(config, seed=seed)
    result = run_closed_loop(cluster, OP_PATH_WORKLOAD,
                             n_clients=n_clients, duration=duration,
                             warmup=500.0)
    elapsed = time.perf_counter() - started
    updates = sum(client.completed_updates for client in cluster.clients)
    return (result["operations"], elapsed,
            cluster.network.stats.messages_per_update(updates))


def op_path_series_one(f: int, scale: float = 1.0,
                       repeats: int = 1) -> dict:
    """Best-of-N ops/s for one f, both completion modes, plus speedup."""
    duration = 4_000.0 * scale
    rates = {}
    messages_per_update = 0.0
    for label, fast in (("legacy", False), ("fast", True)):
        best = 0.0
        for _ in range(repeats):
            ops, elapsed, mpu = op_path_rate(f, fast, duration=duration)
            best = max(best, ops / elapsed)
            if fast:
                messages_per_update = mpu  # deterministic per seed
        rates[label] = best
    return {
        "ops_per_sec": round(rates["fast"]),
        "ops_per_sec_legacy": round(rates["legacy"]),
        "speedup": round(rates["fast"] / rates["legacy"], 2),
        "messages_per_update": round(messages_per_update, 2),
    }


def op_path_series(scale: float = 1.0, repeats: int = 2) -> dict:
    """The BENCH_core.json series: f ∈ {1, 3}."""
    return {f"f{f}": op_path_series_one(f, scale=scale, repeats=repeats)
            for f in (1, 3)}


# ----------------------------------------------------------------------
# pytest entry points (CI smoke pass)
# ----------------------------------------------------------------------
def test_op_path_f1(benchmark, scale):
    series, _ = run_once(benchmark, lambda: (op_path_series_one(1, scale),
                                             None))
    print(f"\nCURP op path f=1: {series['ops_per_sec']:,} ops/s fast, "
          f"{series['ops_per_sec_legacy']:,} legacy "
          f"({series['speedup']}x); "
          f"{series['messages_per_update']} messages/update")
    benchmark.extra_info.update(series)
    assert series["speedup"] > 1.0  # the fast path must never lose


def test_op_path_f3(benchmark, scale):
    series, _ = run_once(benchmark, lambda: (op_path_series_one(3, scale),
                                             None))
    print(f"\nCURP op path f=3: {series['ops_per_sec']:,} ops/s fast, "
          f"{series['ops_per_sec_legacy']:,} legacy "
          f"({series['speedup']}x); "
          f"{series['messages_per_update']} messages/update")
    benchmark.extra_info.update(series)
    assert series["speedup"] > 1.0
    # The closed-loop floor the coalescing bench cuts: ~8 at f = 3.
    assert 6.0 < series["messages_per_update"] < 10.0
