"""The simulator: virtual clock + event queue.

Time is a float; the repository convention is **microseconds**, matching
the paper's latency scale.  Scheduling order is a deterministic global
FIFO tiebreaker: two entries at the same instant dispatch in the order
they were scheduled, tracked by a monotonically increasing sequence
number.  Combined with a single seeded RNG this makes whole-cluster
experiments reproducible.

Hot-path design (see docs/PERFORMANCE.md):

- Entries scheduled **at the current instant** (zero-delay callbacks,
  triggered-event dispatch — the bulk of traffic once an RPC arrives)
  go on a FIFO *now queue* (a deque) instead of the binary heap, so the
  common case is O(1) append/popleft rather than O(log n) heap churn.
- Future entries live on a heap of ``(time, seq, kind, a, b)`` records;
  no closure is allocated per scheduled item.  ``kind`` selects one of
  three dispatch shapes inlined in the run loop.
- The now queue and the heap are merged by sequence number when both
  hold entries at the current time, so dispatch order is *identical* to
  a single global ``(time, seq)`` heap (the pre-refactor scheduler);
  the golden-trace test pins this equivalence.
- ``run()`` drains entries inline instead of calling ``step()`` per
  event; ``step()`` remains for callers that single-step.
- ``at_instant_end(fn, *args)`` registers an **end-of-instant hook**:
  it runs once every entry at the current instant (now queue *and*
  same-time heap entries) has dispatched, before virtual time
  advances.  The network's frame-coalescing flush boundary: dirty
  per-destination frame buffers drain here, so one simulated
  transmission can carry every same-instant message to a destination.
  Hooks may enqueue more same-instant work (and more hooks), which is
  drained before time moves.  Hooks are not counted in
  ``processed_events``.
"""

from __future__ import annotations

import heapq
import random
import typing
from collections import deque

from repro.sim.events import AllOf, AnyOf, Event, QuorumEvent, Timeout
from repro.sim.processes import Process, ProcessGenerator

#: queue-record kinds: payload slots (a, b) per kind are
#: CALLBACK → (fn, args tuple), TIMEOUT → (event, value),
#: DISPATCH → (event, None), DELIVER → (host, message)
_CALLBACK = 0
_TIMEOUT = 1
_DISPATCH = 2
_DELIVER = 3

_INFINITY = float("inf")


class Simulator:
    """Event queue, virtual clock and the root of all randomness."""

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self.seed = seed
        #: when True (default) a crashing process fails its Process event
        #: instead of propagating out of run(); tests may disable it.
        self.capture_process_errors = True
        #: future entries: (time, seq, kind, a, b)
        self._heap: list[tuple] = []
        #: entries at the current instant: (seq, kind, a, b)
        self._now_queue: deque[tuple] = deque()
        #: end-of-instant hooks: (fn, args), drained once the current
        #: instant's entries quiesce (frame-coalescing flush boundary)
        self._instant_hooks: deque[tuple] = deque()
        self._sequence = 0
        self._processed = 0

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A manually-triggered event (a future)."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """An event that triggers ``delay`` µs from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str | None = None) -> Process:
        """Start a cooperative process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        return AnyOf(self, events)

    def quorum(self, total: int, need: int | None = None,
               fail_fast: bool = False) -> QuorumEvent:
        """An allocation-free N-way join (the hot-path AllOf)."""
        return QuorumEvent(self, total, need=need, fail_fast=fail_fast)

    # ------------------------------------------------------------------
    # scheduling internals
    # ------------------------------------------------------------------
    def schedule_callback(self, delay: float,
                          fn: typing.Callable[..., None],
                          *args: typing.Any) -> None:
        """Low-level: run ``fn(*args)`` after ``delay`` µs.

        Passing arguments here instead of closing over them keeps the
        hot path allocation-free (no lambda per scheduled call).
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._sequence += 1
        if delay == 0.0:
            self._now_queue.append((self._sequence, _CALLBACK, fn, args))
        else:
            heapq.heappush(self._heap,
                           (self.now + delay, self._sequence, _CALLBACK,
                            fn, args))

    def _schedule_timeout(self, event: Timeout, delay: float,
                          value: typing.Any) -> None:
        self._sequence += 1
        if delay == 0.0:
            self._now_queue.append((self._sequence, _TIMEOUT, event, value))
        else:
            heapq.heappush(self._heap,
                           (self.now + delay, self._sequence, _TIMEOUT,
                            event, value))

    def _enqueue_triggered(self, event: Event) -> None:
        """Queue callback dispatch for an event triggered at `now`."""
        self._sequence += 1
        self._now_queue.append((self._sequence, _DISPATCH, event, None))

    def at_instant_end(self, fn: typing.Callable[..., None],
                       *args: typing.Any) -> None:
        """Run ``fn(*args)`` once the current instant quiesces.

        "Quiesces" means every queue entry at the current virtual time
        (now queue and same-time heap entries) has dispatched; the hook
        runs before the clock advances.  Hooks run in registration
        order and may enqueue further same-instant work — including
        more hooks — all of which drains before time moves.  This is
        the frame-coalescing flush boundary (``net/host.py``) and the
        multi-tenant witness endpoint's cross-master gc merge point
        (``core/witness.py``).
        """
        self._instant_hooks.append((fn, args))

    def _schedule_deliver(self, delay: float, host: typing.Any,
                          message: typing.Any) -> None:
        """Message-delivery record: ``host._deliver(message)`` after
        ``delay``.  A dedicated kind so the network's per-message
        schedule allocates one record tuple and nothing else."""
        self._sequence += 1
        if delay == 0.0:
            self._now_queue.append((self._sequence, _DELIVER, host, message))
        else:
            heapq.heappush(self._heap,
                           (self.now + delay, self._sequence, _DELIVER,
                            host, message))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _dispatch(self, kind: int, a: typing.Any, b: typing.Any) -> None:
        self._processed += 1
        if kind == _CALLBACK:
            a(*b)
        elif kind == _DELIVER:
            a._deliver(b)
        elif kind == _TIMEOUT:
            a._triggered = True
            a._value = b
            a._dispatch()
        else:
            a._dispatch()

    def step(self) -> bool:
        """Dispatch one queue entry; False when the queue is empty.

        The now queue (entries scheduled at the current instant) and the
        heap are merged by sequence number so dispatch order matches a
        single global ``(time, seq)`` queue exactly.  Once the current
        instant quiesces, each end-of-instant hook runs as one step
        (returning True, but not counted in ``processed_events``),
        before the heap advances the clock.
        """
        now_queue = self._now_queue
        heap = self._heap
        if now_queue:
            if heap and heap[0][0] <= self.now \
                    and heap[0][1] < now_queue[0][0]:
                _at, _seq, kind, a, b = heapq.heappop(heap)
            else:
                _seq, kind, a, b = now_queue.popleft()
            self._dispatch(kind, a, b)
            return True
        if heap and heap[0][0] <= self.now:
            _at, _seq, kind, a, b = heapq.heappop(heap)
            self._dispatch(kind, a, b)
            return True
        if self._instant_hooks:
            # One hook is one unit of single-stepped work (it may
            # enqueue same-instant entries the next step() picks up);
            # not counted in processed_events.
            fn, args = self._instant_hooks.popleft()
            fn(*args)
            return True
        if heap:
            at, _seq, kind, a, b = heapq.heappop(heap)
            if at < self.now:  # pragma: no cover - defensive
                raise RuntimeError("time went backwards")
            self.now = at
            self._dispatch(kind, a, b)
            return True
        return False

    def run(self, until: float | Event | None = None,
            max_steps: int | None = None) -> typing.Any:
        """Run the simulation.

        ``until`` may be:

        - None: run until the queue drains.
        - a float: run until the clock reaches that time (clock is set to
          ``until`` on return even if the queue drained earlier).
        - an :class:`Event`: run until the event triggers, and return its
          value (or raise its failure).  Raises ``RuntimeError`` if the
          queue drains first — that means deadlock.
        """
        # The three modes share one inlined drain loop; per-event work is
        # a merged pop plus a three-way kind switch, with no per-event
        # method call.  Locals are bound up front — this loop is the
        # hottest code in the repository.
        now_queue = self._now_queue
        popleft = now_queue.popleft
        heap = self._heap
        heappop = heapq.heappop
        instant_hooks = self._instant_hooks
        bound = _INFINITY if max_steps is None else max_steps
        steps = 0
        hook_steps = 0

        if isinstance(until, Event):
            deadline = _INFINITY
            stop_event: Event | None = until
        elif until is None:
            deadline = _INFINITY
            stop_event = None
        else:
            deadline = float(until)
            stop_event = None
            if deadline < self.now:
                raise ValueError(
                    f"until={deadline} is in the past (now={self.now})")

        # ``steps`` is flushed into the processed counter in the finally
        # block (additive, so nested run()/step() calls stay correct).
        try:
            while True:
                if stop_event is not None and stop_event._triggered:
                    return stop_event.value
                if now_queue:
                    # Merge: a heap entry at the current time with a
                    # smaller sequence number was scheduled earlier and
                    # must win.
                    if heap and heap[0][0] <= self.now \
                            and heap[0][1] < now_queue[0][0]:
                        entry = heappop(heap)
                        kind, a, b = entry[2], entry[3], entry[4]
                    else:
                        _seq, kind, a, b = popleft()
                elif heap and heap[0][0] <= self.now:
                    # Remaining heap entries at the current instant:
                    # still part of this instant, so they dispatch
                    # before any end-of-instant hook runs.
                    entry = heappop(heap)
                    kind, a, b = entry[2], entry[3], entry[4]
                elif instant_hooks:
                    # The instant quiesced: drain end-of-instant hooks
                    # (frame flushes, witness gc merges).  They may
                    # enqueue more same-instant entries and hooks, all
                    # handled before time advances.  Not counted as
                    # processed events, but they do consume max_steps
                    # budget — the runaway backstop must also catch a
                    # hook that keeps re-arming itself.
                    fn, args = instant_hooks.popleft()
                    fn(*args)
                    hook_steps += 1
                    if steps + hook_steps >= bound:
                        raise RuntimeError(
                            f"exceeded max_steps={max_steps}")
                    continue
                elif heap and heap[0][0] <= deadline:
                    at, _seq, kind, a, b = heappop(heap)
                    if at < self.now:  # pragma: no cover - defensive
                        raise RuntimeError("time went backwards")
                    self.now = at
                else:
                    break
                # Count before dispatching (as step() does) so an entry
                # whose callback raises is still counted as processed.
                steps += 1
                if kind == _CALLBACK:
                    a(*b)
                elif kind == _DELIVER:
                    a._deliver(b)
                elif kind == _TIMEOUT:
                    a._triggered = True
                    a._value = b
                    a._dispatch()
                else:
                    a._dispatch()
                if steps >= bound:
                    raise RuntimeError(f"exceeded max_steps={max_steps}")
        finally:
            self._processed += steps

        if stop_event is not None:
            raise RuntimeError(
                f"simulation deadlocked waiting for {stop_event!r}")
        if deadline is not _INFINITY:
            self.now = deadline
        return None

    @property
    def queue_length(self) -> int:
        return len(self._now_queue) + len(self._heap)

    @property
    def processed_events(self) -> int:
        return self._processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now} queue={self.queue_length}>"
