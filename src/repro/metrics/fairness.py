"""Fairness and time-series helpers for multi-tenant overload studies.

Jain's index (Jain, Chiu & Hawe 1984) summarizes how evenly a resource
was shared: (Σx)² / (n·Σx²) is 1.0 when every tenant got the same
amount and 1/n when one tenant got everything.  The bucketed series
turn an open-loop run's (completion-time, latency) stream into
goodput-over-time and tail-latency-over-time curves — the pictures
that show a flash crowd arriving, defenses engaging, and goodput
holding flat instead of collapsing.
"""

from __future__ import annotations

import typing

from repro.metrics.stats import percentile


def jain_fairness(values: typing.Sequence[float]) -> float:
    """Jain's fairness index over per-tenant allocations, in (0, 1].

    1.0 = perfectly even; 1/n = maximally unfair.  Empty input and
    all-zero allocations degenerate to 1.0 (nothing was shared
    unevenly because nothing was shared).
    """
    values = list(values)
    if not values:
        return 1.0
    if any(v < 0 for v in values):
        raise ValueError("allocations must be non-negative")
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


def bucketed_rates(events: typing.Sequence[tuple[float, float]],
                   bucket: float, start: float,
                   end: float) -> list[tuple[float, float]]:
    """Events/s per time bucket: [(bucket_start, rate), ...].

    ``events`` is a sequence of (time, _) pairs (the second element is
    ignored — pass an :class:`~repro.workload.openloop.OpenLoopEngine`
    completion timeline directly); times in µs, rates in events/s.
    Buckets cover [start, end); empty buckets report 0.0.
    """
    if bucket <= 0:
        raise ValueError(f"bucket must be > 0: {bucket}")
    n_buckets = max(1, int((end - start) / bucket + 0.5))
    counts = [0] * n_buckets
    for t, _ in events:
        index = int((t - start) / bucket)
        if 0 <= index < n_buckets:
            counts[index] += 1
    seconds = bucket / 1e6
    return [(start + i * bucket, counts[i] / seconds)
            for i in range(n_buckets)]


def bucketed_percentiles(events: typing.Sequence[tuple[float, float]],
                         bucket: float, start: float, end: float,
                         p: float = 99.9) -> list[tuple[float, float | None]]:
    """Per-bucket latency percentile: [(bucket_start, p-th), ...].

    ``events`` is (completion time, latency) pairs; a bucket with no
    completions reports None (distinct from a fast bucket — during a
    total stall nothing completes at all).
    """
    if bucket <= 0:
        raise ValueError(f"bucket must be > 0: {bucket}")
    n_buckets = max(1, int((end - start) / bucket + 0.5))
    samples: list[list[float]] = [[] for _ in range(n_buckets)]
    for t, latency in events:
        index = int((t - start) / bucket)
        if 0 <= index < n_buckets:
            samples[index].append(latency)
    return [(start + i * bucket,
             percentile(sorted(samples[i]), p) if samples[i] else None)
            for i in range(n_buckets)]
