"""Latency/duration distributions.

The paper's latency figures are distribution-shaped (CCDFs), so the
substitution for real hardware must model not just medians but tails:

- RAMCloud/InfiniBand latency is tight out to the 99th percentile
  (paper §5.4) → :class:`LogNormal` with small sigma.
- Redis/TCP latency "degrades rapidly above the 80th percentile"
  (paper §5.4) → :class:`LogNormal` with large sigma, optionally
  :class:`Shifted` to add a fixed propagation floor.

All sampling goes through the simulator's ``random.Random`` so runs are
reproducible.
"""

from __future__ import annotations

import math
import random


class Distribution:
    """Base class: ``sample(rng)`` returns a non-negative float."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean where available (used by tests)."""
        raise NotImplementedError

    def lower_bound(self) -> float:
        """Infimum of the support — no sample is ever below this.

        Conservative parallel simulation (sim/partition.py) derives its
        lookahead window from the minimum possible inter-partition wire
        latency; unbounded-below-at-zero shapes (Exponential, LogNormal)
        return 0.0 and need a :class:`Shifted` floor to give the
        partitioned runner any lookahead to work with.
        """
        return 0.0


class Fixed(Distribution):
    """Always the same value (deterministic links, CPU costs)."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError(f"negative duration: {value}")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def lower_bound(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Fixed({self.value})"


class Uniform(Distribution):
    """Uniform in [low, high]."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ValueError(f"bad uniform range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2

    def lower_bound(self) -> float:
        return self.low

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Exponential(Distribution):
    """Exponential with the given mean (memoryless arrivals)."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError(f"mean must be positive: {mean}")
        self._mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential({self._mean})"


class LogNormal(Distribution):
    """Lognormal parameterized by its *median* and shape ``sigma``.

    ``median`` is exp(mu), which is far easier to calibrate against the
    paper's reported medians than mu itself.  Larger sigma = heavier
    tail; sigma=0 degenerates to Fixed(median).
    """

    def __init__(self, median: float, sigma: float):
        if median <= 0:
            raise ValueError(f"median must be positive: {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative: {sigma}")
        self.median = median
        self.sigma = sigma
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        if self.sigma == 0:
            return self.median
        # exp(gauss) ≡ lognormvariate, but gauss uses the pair-caching
        # Box–Muller sampler — about half the cost of normalvariate's
        # rejection loop, and latency draws happen once per simulated
        # message on the calibrated profiles.
        return math.exp(rng.gauss(self._mu, self.sigma))

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma ** 2 / 2)

    def lower_bound(self) -> float:
        # sigma=0 degenerates to Fixed(median); otherwise the support
        # reaches down to 0 and only a Shifted floor gives lookahead.
        return self.median if self.sigma == 0 else 0.0

    def __repr__(self) -> str:
        return f"LogNormal(median={self.median}, sigma={self.sigma})"


class Shifted(Distribution):
    """A distribution plus a constant floor (propagation delay)."""

    def __init__(self, floor: float, inner: Distribution):
        if floor < 0:
            raise ValueError(f"negative floor: {floor}")
        self.floor = floor
        self.inner = inner

    def sample(self, rng: random.Random) -> float:
        return self.floor + self.inner.sample(rng)

    def mean(self) -> float:
        return self.floor + self.inner.mean()

    def lower_bound(self) -> float:
        return self.floor + self.inner.lower_bound()

    def __repr__(self) -> str:
        return f"Shifted({self.floor} + {self.inner!r})"
