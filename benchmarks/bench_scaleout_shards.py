"""Scale-out: aggregate committed-ops throughput vs shard count, and
gc-RPC traffic with batched witness gc.

CURP's commutative fast path has no cross-key coordination, so
committed-update throughput should scale near-linearly as tablets are
spread over more masters (each with its own backup + witness set) —
the same privatize-then-reconcile shape as parallel commutative
updates in shared-memory settings.  The second experiment isolates the
message-count win of coalescing witness gc across sync rounds: one
``gc_batch`` RPC per witness per flush instead of one ``gc`` RPC per
witness per sync round.

Acceptance (ISSUE 2): >= 2.5x aggregate throughput at 4 shards vs 1,
and >= 4x fewer gc RPCs with batching at ``min_sync_batch`` defaults.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.baselines import curp_config
from repro.harness.builder import build_cluster
from repro.harness.profiles import RAMCLOUD_PROFILE
from repro.metrics import format_table
from repro.workload import run_closed_loop
from repro.workload.ycsb import YcsbWorkload

#: write-only over a key space big enough that delayed (batched) gc
#: rarely causes witness commutativity rejections
SCALEOUT_WORKLOAD = YcsbWorkload(name="scaleout-writes", read_fraction=0.0,
                                 item_count=20_000, value_size=100,
                                 distribution="uniform")


def scaleout_throughput(shard_counts=(1, 2, 4), n_clients=24,
                        duration=1_500.0, max_gc_batch=256,
                        gc_flush_delay=1_000.0, seed=7) -> dict:
    """Aggregate committed-ops throughput per shard count.

    The client pool is fixed while shards vary, so the sweep measures
    how far the same offered load spreads: with one shard the master's
    dispatch thread saturates; every added shard adds dispatch + worker
    capacity.
    """
    series = {}
    for n_shards in shard_counts:
        cluster = build_cluster(
            curp_config(3, max_gc_batch=max_gc_batch,
                        gc_flush_delay=gc_flush_delay),
            profile=RAMCLOUD_PROFILE, n_masters=n_shards, seed=seed)
        result = run_closed_loop(cluster, SCALEOUT_WORKLOAD,
                                 n_clients=n_clients, duration=duration,
                                 warmup=300.0)
        stats = cluster.total_master_stats()
        series[n_shards] = {
            "throughput": result["throughput"],
            "operations": result["operations"],
            "gc_rpcs": stats.gc_rpcs,
            "syncs": stats.syncs,
            "speculative_replies": stats.speculative_replies,
        }
    return series


def gc_batching_comparison(n_clients=16, duration=2_000.0,
                           max_gc_batch=256, gc_flush_delay=1_000.0,
                           seed=11) -> dict:
    """Same saturating workload, per-round gc vs batched gc.

    ``gc_flush_delay`` is set well above the inter-sync gap so the
    capacity trigger (``max_gc_batch``) — not the straggler timer —
    paces flushes; under saturation that coalesces ~max_gc_batch /
    pairs-per-sync rounds into each gc_batch RPC.
    """
    out = {}
    for label, batch in (("per-round", 0), ("batched", max_gc_batch)):
        cluster = build_cluster(curp_config(3, max_gc_batch=batch,
                                            gc_flush_delay=gc_flush_delay),
                                profile=RAMCLOUD_PROFILE, seed=seed)
        result = run_closed_loop(cluster, SCALEOUT_WORKLOAD,
                                 n_clients=n_clients, duration=duration,
                                 warmup=200.0)
        cluster.settle(2_000.0)  # drain straggler flush timers
        stats = cluster.total_master_stats()
        out[label] = {
            "throughput": result["throughput"],
            "gc_rpcs": stats.gc_rpcs,
            "gc_pairs": stats.gc_pairs,
            "gc_flushes": stats.gc_flushes,
            "syncs": stats.syncs,
            "gc_rpcs_per_sync": stats.gc_rpcs / max(stats.syncs, 1),
        }
    return out


def test_scaleout_shards(benchmark, scale):
    shard_counts = (1, 2, 4) if scale <= 1 else (1, 2, 4, 8)
    n_clients = 24 if scale <= 1 else 32
    duration = 1_500.0 * min(scale, 4)

    def experiment():
        return (scaleout_throughput(shard_counts, n_clients, duration),
                gc_batching_comparison(duration=duration))

    series, gc = run_once(benchmark, experiment)

    rows = [[n, round(point["throughput"]),
             round(point["throughput"] / series[1]["throughput"], 2),
             point["gc_rpcs"], point["syncs"]]
            for n, point in series.items()]
    print()
    print(format_table(
        ["shards", "committed ops/s", "speedup", "gc rpcs", "syncs"], rows,
        title="Scale-out — aggregate write throughput vs shard count"))
    gc_rows = [[label, round(point["throughput"]), point["gc_rpcs"],
                point["gc_pairs"], round(point["gc_rpcs_per_sync"], 2)]
               for label, point in gc.items()]
    print(format_table(
        ["gc cadence", "ops/s", "gc rpcs", "gc pairs", "rpcs/sync"], gc_rows,
        title="Witness gc — per-round vs batched (f=3)"))

    # Tentpole acceptance: >= 2.5x aggregate throughput at 4 shards.
    speedup_4 = series[4]["throughput"] / series[1]["throughput"]
    assert speedup_4 >= 2.5, f"4-shard speedup only {speedup_4:.2f}x"
    # Batched gc: >= 4x fewer gc RPCs at min_sync_batch defaults, with
    # the same pairs collected.
    reduction = gc["per-round"]["gc_rpcs"] / max(gc["batched"]["gc_rpcs"], 1)
    assert reduction >= 4.0, f"gc rpc reduction only {reduction:.2f}x"
    # Batched cadence: ~one RPC per witness (f=3) per flush, i.e. well
    # under the per-round 3 RPCs per sync.
    assert gc["batched"]["gc_rpcs_per_sync"] < 1.0
    benchmark.extra_info["speedup_4_shards"] = speedup_4
    benchmark.extra_info["gc_rpc_reduction"] = reduction
