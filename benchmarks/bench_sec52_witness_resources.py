"""§5.2: resource consumption by witness servers.

Paper numbers: a witness server handles 1270k records/s on one core;
memory is ~9 MB per master-witness pair (4096 × 2 KB slots); CURP
increases network traffic by ~75 % for 3-way replication (each request
additionally goes to 3 witnesses).
"""

from __future__ import annotations

import random

from benchmarks.conftest import run_once
from repro.core.witness_cache import WitnessCache
from repro.harness.experiments import sec52_network_amplification
from repro.metrics import format_table
from repro.rifl import RpcId


def test_witness_record_rate(benchmark):
    """Wall-clock micro-benchmark of the witness data structure: the
    record operation the paper sizes at ~0.8 µs of server CPU."""
    rng = random.Random(0)
    cache = WitnessCache(slots=4096, associativity=4)
    hashes = [rng.getrandbits(64) for _ in range(4096)]
    state = {"i": 0}

    def record_and_gc():
        i = state["i"]
        key_hash = hashes[i % len(hashes)]
        rpc_id = RpcId(1, i)
        cache.record([key_hash], rpc_id, "request")
        if i % 50 == 49:  # gc every 50 records, as masters do
            cache.gc([(hashes[j % len(hashes)], RpcId(1, j))
                      for j in range(i - 49, i + 1)])
        state["i"] = i + 1
    benchmark(record_and_gc)


def test_witness_memory_footprint(benchmark):
    cache = run_once(benchmark,
                     lambda: WitnessCache(slots=4096, associativity=4))
    memory_mb = cache.memory_bytes(slot_size=2048) / 1e6
    print(f"\n§5.2 — witness memory per master-witness pair: "
          f"{memory_mb:.1f} MB (paper: ~9 MB)")
    assert 8.0 < memory_mb < 10.0


def test_network_amplification(benchmark, scale):
    n_ops = int(250 * scale)
    result = run_once(benchmark,
                      lambda: sec52_network_amplification(n_ops=n_ops))
    print()
    print(format_table(
        ["system", "payload copies/request", "wire bytes/request"],
        [["original (f=3)", result["original_copies"],
          result["original_bytes"]],
         ["curp (f=3)", result["curp_copies"], result["curp_bytes"]],
         ["amplification",
          f"+{result['amplification_copies'] * 100:.0f}%",
          f"+{result['amplification_bytes'] * 100:.0f}%"]],
        title="§5.2 — network traffic amplification (paper: +75% in "
              "payload copies)"))
    # The paper's accounting: 7 copies vs 4 = +75%.
    assert 0.6 < result["amplification_copies"] < 0.9
    # Wire bytes amplify less: batching amortizes per-RPC framing.
    assert 0.1 < result["amplification_bytes"] \
        < result["amplification_copies"]
    benchmark.extra_info["amplification_copies"] = \
        result["amplification_copies"]
