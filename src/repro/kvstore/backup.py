"""Backup servers: ordered log replication targets.

A backup accepts ``replicate`` RPCs from its master, appends the
entries (idempotently — the master may resend on retry), and serves the
whole log to a recovery master.  Backup storage is durable: it survives
host crash + restart, modelling RAMCloud's flush-to-disk path.

Since ISSUE 7 the entries live in a :class:`~repro.kvstore.wal.
SegmentedWal` — a segment-rotated log with an index summary per segment
— behind a :class:`~repro.kvstore.wal.VirtualDisk`.  With a
:class:`~repro.core.config.StorageProfile` enabled, replicate acks wait
for the append (and any rotation) to drain through the disk, a
background cleaner compacts low-live-ratio segments (competing with the
update path for the same disk), and recovery reads are charged per
stored entry.  Disabled (the default), every cost is zero and no task
is spawned: the pre-storage golden traces are byte-identical.

Zombie fencing (§4.7): the coordinator bumps the master *epoch* when it
starts recovering a crashed master and fences every backup with the new
epoch.  Replication from the deposed master (a zombie that never really
died) carries the old epoch and is rejected, so the zombie can never
complete another sync — and therefore can never let a client complete
an operation — after recovery begins.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.kvstore.hashing import key_hash
from repro.kvstore.log import LogEntry
from repro.kvstore.wal import BackupStats, SegmentedWal, VirtualDisk
from repro.rpc import AppError, RpcTransport

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import StorageProfile
    from repro.net.host import Host


@dataclasses.dataclass(frozen=True)
class ReplicateArgs:
    master_id: str
    epoch: int
    entries: tuple[LogEntry, ...]
    #: gc batch merged into this sync RPC for a witness colocated on
    #: the backup's host (config.gc_piggyback): already-durable
    #: (key hash, RpcId) pairs plus the sync-round count for the
    #: witness's stale-suspect aging clock.  Empty = plain replicate.
    gc_pairs: tuple = ()
    gc_rounds: int = 0


@dataclasses.dataclass(frozen=True)
class PartitionReadArgs:
    """Partitioned recovery: scan this backup's share of the dead
    master's log — the entries with index in ``[index_lo, index_hi)``
    — once, bucketed into one entry tuple per recovery partition (a
    tuple of [lo, hi) hash ranges).

    The stripe is an *index* window because segment layout is
    per-backup: each backup reads its own segments that overlap the
    window (whole segments — boundary overshoot is the modeled read
    amplification), skips segments whose hash summary misses every
    partition, and serves all k recovery masters from the single scan.
    """

    index_lo: int
    index_hi: int
    partitions: tuple[tuple[tuple[int, int], ...], ...]


class BackupServer:
    """One backup replica for one master's log."""

    def __init__(self, host: "Host", master_id: str,
                 process_time: float = 0.0,
                 transport: RpcTransport | None = None,
                 storage: "StorageProfile | None" = None):
        # Imported here, not at module top: repro.core's package init
        # imports this module, so a top-level import would cycle when
        # repro.kvstore loads first.
        from repro.core.config import StorageProfile
        self.host = host
        self.sim = host.sim
        self.master_id = master_id
        #: smallest master epoch still allowed to replicate
        self.min_epoch = 0
        #: per-message handling cost (models backup CPU, from profiles)
        self.process_time = process_time
        #: virtual-time storage cost model (disabled ⇒ all costs zero)
        self.storage = storage if storage is not None else StorageProfile()
        self.stats = BackupStats()
        self.wal = SegmentedWal(self.storage.segment_size, self.stats)
        self.disk = VirtualDisk(self.sim)
        #: materialized object values (served to §A.1 backup readers);
        #: TOMBSTONE-deleted keys are removed
        self._values: dict[str, typing.Any] = {}
        #: witness colocated on this host (Figure 2), wired by the
        #: coordinator; lets a replicate RPC carry a merged gc batch
        self.witness_sink = None
        # May share the host's endpoint with a colocated witness
        # (Figure 2); method names are disjoint.
        self.transport = transport or RpcTransport(host)
        self.transport.register("replicate", self._handle_replicate)
        self.transport.register("reset_log", self._handle_reset_log)
        self.transport.register("fence", self._handle_fence)
        self.transport.register("get_backup_data", self._handle_get_data)
        self.transport.register("backup_read", self._handle_backup_read)
        self.transport.register("get_segment_index",
                                self._handle_segment_index)
        self.transport.register("read_partitions",
                                self._handle_read_partitions)
        # Control-path liveness for the cluster watchdog.  Guarded: a
        # colocated witness sharing this transport may have registered
        # it first (and vice versa).
        if "ping" not in self.transport._handlers:
            self.transport.register("ping", lambda args, ctx: "PONG")
        # Backup storage is durable: no on_crash hook clears it.  The
        # cleaner task, though, dies with the host and is respawned on
        # restart (a fresh incarnation gets a fresh generator).
        if self.storage.enabled and self.storage.compaction_interval > 0:
            self._spawn_cleaner()
            host.on_restart(self._spawn_cleaner)

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _handle_replicate(self, args: ReplicateArgs, ctx):
        if args.master_id != self.master_id:
            raise AppError("WRONG_MASTER", {"expected": self.master_id})
        if args.epoch < self.min_epoch:
            # Deposed master (zombie): refuse, so its clients can never
            # complete an operation through the sync path.
            raise AppError("FENCED", {"min_epoch": self.min_epoch})
        delay = self.process_time
        if self.storage.enabled:
            delay += self._append_delay(args.entries)
        if delay > 0:
            # Charge the CPU + disk time without a process per replicate
            # RPC; the incarnation guard drops work in flight across a
            # crash exactly as interrupting the old generator did.
            self.sim.schedule_callback(delay,
                                       self._replicate_deferred, args, ctx,
                                       self.host.incarnation)
            return RpcTransport.DEFERRED
        self._store(args.entries)
        return self._replicate_reply(args)

    def _append_delay(self, entries: typing.Sequence[LogEntry]) -> float:
        """Disk time for the fresh appends in ``entries`` (duplicates
        of already-stored indices cost nothing: the backup acks them
        from its index without touching the disk)."""
        new = sum(1 for e in entries if e.index not in self.wal.entries)
        if new == 0:
            return 0.0
        cost = (new * self.storage.append_time
                + self.wal.rotations_for(new) * self.storage.rotation_time)
        return self.disk.charge(cost)

    def _replicate_deferred(self, args: ReplicateArgs, ctx,
                            incarnation: int) -> None:
        if not self.host.alive or self.host.incarnation != incarnation:
            return
        try:
            self._store(args.entries)
            ctx.reply(self._replicate_reply(args))
        except AppError as error:
            if not ctx.replied:
                ctx.reply_error(error.code, error.info)
        except Exception as error:  # noqa: BLE001 - serialize to caller,
            # matching the generator path's REMOTE_ERROR containment
            if not ctx.replied:
                ctx.reply_error("REMOTE_ERROR",
                                f"{type(error).__name__}: {error}")

    def _replicate_reply(self, args: ReplicateArgs):
        """Ack value: plain ``last_index``, or ``(last_index, stale)``
        when a merged gc batch rode along (the stale-suspect list takes
        the return leg of the same RPC)."""
        if not args.gc_pairs:
            return self.last_index
        stale: tuple = ()
        if self.witness_sink is not None:
            applied = self.witness_sink.apply_gc_batch(
                args.master_id, args.gc_pairs, args.gc_rounds)
            if applied is not None:
                stale = applied
        return (self.last_index, stale)

    def _store(self, entries: typing.Sequence[LogEntry]) -> None:
        from repro.kvstore.log import TOMBSTONE
        for entry in entries:
            existing = self.wal.entries.get(entry.index)
            if existing is not None:
                if existing != entry:
                    # A cleaned entry was slimmed in place; the master
                    # resending the original (same identity) is not
                    # divergence.
                    if not (self.wal.is_compacted(entry.index)
                            and existing.rpc_id == entry.rpc_id):
                        raise AppError("LOG_DIVERGENCE",
                                       {"index": entry.index})
                continue  # duplicate resend: don't re-apply effects
            self.wal.append(entry)
            for key, value, _version in entry.effects:
                if value is TOMBSTONE:
                    self._values.pop(key, None)
                else:
                    self._values[key] = value

    def _handle_reset_log(self, args: ReplicateArgs, ctx):
        """Adopt the caller's log wholesale (recovery, §4.6).

        A crash mid-sync can leave backups with diverging tails (some
        received the last partial batch, others did not; none of it was
        acknowledged to clients).  The recovery master resolves this by
        installing its restored+replayed log on every backup.  With
        storage enabled the rewrite is charged as fresh appends —
        re-replication is the disk-bound half of recovery.
        """
        if args.master_id != self.master_id:
            raise AppError("WRONG_MASTER", {"expected": self.master_id})
        if args.epoch < self.min_epoch:
            raise AppError("FENCED", {"min_epoch": self.min_epoch})
        delay = 0.0
        if self.storage.enabled and args.entries:
            n = len(args.entries)
            cost = (n * self.storage.append_time
                    + (n // self.storage.segment_size)
                    * self.storage.rotation_time)
            delay = self.disk.charge(cost)
        if delay > 0:
            self.sim.schedule_callback(delay, self._reset_deferred, args,
                                       ctx, self.host.incarnation)
            return RpcTransport.DEFERRED
        return self._reset_apply(args)

    def _reset_deferred(self, args: ReplicateArgs, ctx,
                        incarnation: int) -> None:
        if not self.host.alive or self.host.incarnation != incarnation:
            return
        if not ctx.replied:
            ctx.reply(self._reset_apply(args))

    def _reset_apply(self, args: ReplicateArgs):
        self.wal.reset()
        self._values.clear()
        self._store(args.entries)
        return self.last_index

    def _handle_fence(self, args: int, ctx):
        """Coordinator: reject replication below this epoch from now on."""
        self.min_epoch = max(self.min_epoch, args)
        return self.min_epoch

    def _handle_get_data(self, args, ctx):
        """Recovery master fetches the full ordered log.  With storage
        enabled this is a whole-log disk scan — the cost partitioned
        recovery stripes across the backup set instead."""
        if self.storage.enabled:
            count = len(self.wal.entries)
            delay = self.disk.charge(count * self.storage.read_entry_time)
            if delay > 0:
                self.stats.recovery_entries_read += count
                self.sim.schedule_callback(delay, self._get_data_deferred,
                                           ctx, self.host.incarnation)
                return RpcTransport.DEFERRED
        return self.wal.all_entries()

    def _get_data_deferred(self, ctx, incarnation: int) -> None:
        if not self.host.alive or self.host.incarnation != incarnation:
            return
        if not ctx.replied:
            ctx.reply(self.wal.all_entries())

    def _handle_segment_index(self, args, ctx):
        """Segment metadata summary (in-memory; no disk charge).  The
        recovery coordinator uses it to assign segments to backups and
        skip segments outside the ranges being recovered."""
        return self.wal.segment_index()

    def _handle_read_partitions(self, args: PartitionReadArgs, ctx):
        """Read this backup's stripe of the log *once* and bucket the
        entries per recovery partition (RAMCloud's recovery shape: each
        backup scans its share a single time however many recovery
        masters are replaying).  Reply waits for the scan to drain
        through the disk."""
        segments = self._stripe_segments(args)
        count = sum(len(s.indices) for s in segments)
        self.stats.recovery_entries_read += count
        delay = 0.0
        if self.storage.enabled:
            delay = self.disk.charge(count * self.storage.read_entry_time)
        if delay > 0:
            self.sim.schedule_callback(delay, self._read_partitions_deferred,
                                       args, ctx, self.host.incarnation)
            return RpcTransport.DEFERRED
        return self._bucket_partitions(args, segments)

    def _read_partitions_deferred(self, args: PartitionReadArgs, ctx,
                                  incarnation: int) -> None:
        if not self.host.alive or self.host.incarnation != incarnation:
            return
        if not ctx.replied:
            # Re-derive the segment set at reply time: the cleaner may
            # have rewritten entries while the scan was "on disk".
            ctx.reply(self._bucket_partitions(
                args, self._stripe_segments(args)))

    def _stripe_segments(self, args: PartitionReadArgs):
        """This backup's segments that overlap the index window and
        could hold data for any requested partition (segment-indexed
        skip via the per-segment hash summary)."""
        all_ranges = tuple(r for ranges in args.partitions for r in ranges)
        chosen = []
        for info, segment in zip(self.wal.segment_index(),
                                 (s for s in self.wal.segments if s.indices)):
            if info.last_index < args.index_lo \
                    or info.first_index >= args.index_hi:
                continue
            if not info.overlaps(all_ranges):
                self.stats.segments_skipped += 1
                continue
            chosen.append(segment)
        return chosen

    def _bucket_partitions(self, args: PartitionReadArgs, segments):
        buckets: list[list[LogEntry]] = [[] for _ in args.partitions]
        for segment in segments:
            for index in segment.indices:
                if not args.index_lo <= index < args.index_hi:
                    continue  # boundary overshoot: scanned, not returned
                entry = self.wal.entries[index]
                if not entry.effects:
                    # Completion-only record: its rpc_id → result pair
                    # must survive on every recovery master.
                    for bucket in buckets:
                        bucket.append(entry)
                    continue
                hashes = [key_hash(key) for key, _v, _ver in entry.effects]
                for bucket, ranges in zip(buckets, args.partitions):
                    if any(lo <= h < hi for h in hashes
                           for lo, hi in ranges):
                        bucket.append(entry)
        return tuple(tuple(bucket) for bucket in buckets)

    def _handle_backup_read(self, args, ctx):
        """§A.1: read replicated (synced) state; the *reader* is
        responsible for checking freshness against a witness."""
        key = args.key if hasattr(args, "key") else args
        return self._values.get(key)

    # ------------------------------------------------------------------
    # background cleaning
    # ------------------------------------------------------------------
    def _spawn_cleaner(self) -> None:
        self.host.spawn(self._cleaner_loop(),
                        name=f"wal-cleaner-{self.master_id}")

    def _cleaner_loop(self):
        """Periodic compaction: rewrite sealed segments whose live
        ratio fell below the threshold, charging read amplification
        (whole-segment scan) + write amplification (survivor rewrite)
        on the same disk the replicate path is appending to."""
        profile = self.storage
        while True:
            yield self.sim.timeout(profile.compaction_interval)
            for segment in self.wal.cleanable(profile.compaction_live_ratio):
                cost = (len(segment.indices) * profile.read_entry_time
                        + segment.live_payloads
                        * profile.compaction_write_time)
                delay = self.disk.charge(cost)
                if delay > 0:
                    yield self.sim.timeout(delay)
                self.wal.compact(segment)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def _entries(self) -> dict[int, LogEntry]:
        """Back-compat alias for the WAL's index → entry map."""
        return self.wal.entries

    @property
    def last_index(self) -> int:
        return self.wal.last_index

    def entry_count(self) -> int:
        return len(self.wal.entries)
