"""Availability accounting for fault-injection runs.

Turns an open-loop completion timeline plus a fault/detection/repair
schedule into the four numbers an availability story is gated on:

- **time_to_detect** — fault start → the watchdog's detection entry;
- **mttr** (mean time to repair) — fault start → the repair entry;
- **unavailability window** — total virtual time, after the fault
  lands, spent in buckets whose goodput fell below ``threshold`` ×
  the pre-fault baseline (the cluster may be "up" for pings while
  serving nothing — this measures what users see);
- **goodput retained** — completion rate across the *available*
  post-fault buckets as a fraction of baseline, i.e. how well the
  cluster serves outside the unavailability window.

All inputs are virtual-time (µs); completions are the
``record_timeline=True`` output of
:class:`~repro.workload.openloop.OpenLoopEngine` — (completion time,
latency) pairs.
"""

from __future__ import annotations

import typing

from repro.metrics.fairness import bucketed_rates

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


def availability_report(
        completions: typing.Sequence[tuple[float, float]],
        fault_start: float,
        measure_end: float,
        detected_at: float | None = None,
        repaired_at: float | None = None,
        measure_start: float = 0.0,
        bucket: float = 1_000.0,
        threshold: float = 0.5) -> dict:
    """Score one fault-injection run; see the module docstring.

    ``measure_start`` excludes client ramp-up from the baseline.  A
    run whose baseline is zero (nothing completed before the fault)
    reports ``baseline_goodput=0`` and degenerate zeros — the caller's
    scenario is broken and its assertions should catch that.
    """
    if not measure_start <= fault_start < measure_end:
        raise ValueError(f"need measure_start <= fault_start < measure_end: "
                         f"{measure_start}, {fault_start}, {measure_end}")
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1]: {threshold}")
    before = bucketed_rates(completions, bucket, measure_start, fault_start)
    after = bucketed_rates(completions, bucket, fault_start, measure_end)
    baseline = (sum(rate for _t, rate in before) / len(before)
                if before else 0.0)
    floor = threshold * baseline
    unavailable = [(t, rate) for t, rate in after if rate < floor]
    available = [(t, rate) for t, rate in after if rate >= floor]
    retained_rate = (sum(rate for _t, rate in available) / len(available)
                     if available else 0.0)
    return {
        "baseline_goodput": baseline,
        "bucket": bucket,
        "threshold": threshold,
        "unavailability_window": len(unavailable) * bucket,
        "unavailable_buckets": [t for t, _rate in unavailable],
        "goodput_retained": (retained_rate / baseline if baseline else 0.0),
        "time_to_detect": (None if detected_at is None
                           else detected_at - fault_start),
        "mttr": None if repaired_at is None else repaired_at - fault_start,
        "goodput_series": before + after,
    }


class AvailabilityTracker:
    """Collects fault/detect/repair marks against the virtual clock,
    then scores a completion timeline.

    The benchmark flow: ``mark_fault()`` when the injector applies the
    scenario's headline event (or read the injector's ``applied`` log),
    feed the watchdog's ``detections``/``repairs`` timelines through
    :meth:`observe_watchdog`, and call :meth:`report` with the
    engine's recorded completions.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.fault_start: float | None = None
        self.detected_at: float | None = None
        self.repaired_at: float | None = None

    def mark_fault(self, at: float | None = None) -> None:
        self.fault_start = self.sim.now if at is None else at

    def mark_detected(self, at: float | None = None) -> None:
        if self.detected_at is None:
            self.detected_at = self.sim.now if at is None else at

    def mark_repaired(self, at: float | None = None) -> None:
        if self.repaired_at is None:
            self.repaired_at = self.sim.now if at is None else at

    def observe_watchdog(self, detector) -> None:
        """Lift the first post-fault detection and repair out of a
        :class:`~repro.cluster.failure_detector.FailureDetector`'s
        timelines."""
        if self.fault_start is None:
            raise ValueError("mark_fault() first")
        for when, _kind, _target in detector.detections:
            if when >= self.fault_start:
                self.mark_detected(when)
                break
        for when, _kind, _target in detector.repairs:
            if when >= self.fault_start:
                self.mark_repaired(when)
                break

    def report(self, completions, measure_end: float,
               **kwargs) -> dict:
        if self.fault_start is None:
            raise ValueError("mark_fault() first")
        return availability_report(
            completions, fault_start=self.fault_start,
            measure_end=measure_end, detected_at=self.detected_at,
            repaired_at=self.repaired_at, **kwargs)
