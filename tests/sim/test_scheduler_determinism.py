"""Scheduler determinism: the hot-path overhaul must not change virtual
time.

The now-queue scheduler (deque for same-instant entries, record-carrying
heap for the future) must dispatch in *exactly* the order of the seed
scheduler's single global ``(time, seq)`` heap.  Two layers of defence:

- unit tests pinning same-instant FIFO ordering across every scheduling
  shape (timeouts, zero-delay callbacks, event dispatch, late
  ``add_callback``), including the subtle merge case where a heap entry
  and a now-queue entry coexist at the same instant;
- a golden-trace test: a seeded YCSB-style experiment whose end state
  ``(now, processed_events, per-host traffic stats)`` was captured on
  the seed scheduler (commit 494d673) and must stay byte-identical.
"""

from __future__ import annotations

import dataclasses

from repro.baselines import curp_config
from repro.core.client import CurpClient
from repro.harness.builder import build_cluster
from repro.sim import Simulator
from repro.workload import run_closed_loop, run_pipelined_loop
from repro.workload.ycsb import YcsbWorkload


# ----------------------------------------------------------------------
# same-instant FIFO ordering pins
# ----------------------------------------------------------------------
def test_same_instant_timeouts_fifo(sim: Simulator):
    order = []
    for tag in ("a", "b", "c"):
        sim.timeout(5.0, value=tag).add_callback(
            lambda e: order.append(e.value))
    sim.run()
    assert order == ["a", "b", "c"]


def test_zero_delay_timeouts_fifo(sim: Simulator):
    order = []
    for tag in ("a", "b", "c"):
        sim.timeout(0.0, value=tag).add_callback(
            lambda e: order.append(e.value))
    sim.run()
    assert order == ["a", "b", "c"]


def test_zero_delay_callbacks_interleave_with_timeouts(sim: Simulator):
    """Scheduling order is the tiebreaker regardless of entry shape."""
    order = []
    sim.timeout(0.0, value="t1").add_callback(lambda e: order.append("t1"))
    sim.schedule_callback(0.0, order.append, "cb")
    sim.timeout(0.0, value="t2").add_callback(lambda e: order.append("t2"))
    sim.run()
    assert order == ["t1", "cb", "t2"]


def test_heap_entry_wins_over_later_now_entry(sim: Simulator):
    """The merge case: a callback dispatching at t=5 schedules a
    zero-delay callback; a *previously scheduled* t=5 entry still on
    the heap must dispatch first (it has the smaller sequence number).
    The seed scheduler's global heap did this implicitly; the now-queue
    must reproduce it."""
    order = []
    sim.schedule_callback(5.0, lambda: (order.append("a"),
                                        sim.schedule_callback(
                                            0.0, order.append, "zero")))
    sim.schedule_callback(5.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "zero"]


def test_event_dispatch_ordered_after_earlier_same_time_entries(
        sim: Simulator):
    """succeed() at t=5 queues dispatch *behind* a t=5 heap entry that
    was scheduled earlier."""
    order = []
    event = sim.event()
    event.add_callback(lambda e: order.append("event"))
    sim.schedule_callback(5.0, lambda: (order.append("first"),
                                        event.succeed()))
    sim.schedule_callback(5.0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "event"]


def test_add_callback_after_dispatch_delivers_at_same_time(sim: Simulator):
    """A callback added after the event already ran its callbacks fires
    on a later entry at the *same* virtual time, after entries that were
    queued before it."""
    order = []
    event = sim.timeout(3.0)

    def late_subscribe() -> None:
        order.append("subscribing")
        sim.schedule_callback(0.0, order.append, "queued-before")
        event.add_callback(lambda e: order.append("late-callback"))

    event.add_callback(lambda e: late_subscribe())
    sim.run()
    assert order == ["subscribing", "queued-before", "late-callback"]
    assert sim.now == 3.0


def test_schedule_callback_arg_form(sim: Simulator):
    seen = []
    sim.schedule_callback(1.0, seen.append, "x")
    sim.schedule_callback(2.0, lambda a, b: seen.append((a, b)), 1, 2)
    sim.run()
    assert seen == ["x", (1, 2)]


def test_run_until_deadline_drains_now_queue_at_deadline(sim: Simulator):
    """Entries that keep spawning zero-delay work exactly at the
    deadline are all processed before the clock stops."""
    order = []
    sim.schedule_callback(5.0, lambda: sim.schedule_callback(
        0.0, lambda: sim.schedule_callback(0.0, order.append, "nested")))
    sim.run(until=5.0)
    assert order == ["nested"]
    assert sim.now == 5.0


def test_step_merges_now_queue_and_heap(sim: Simulator):
    """Single-stepping obeys the same merged order as run()."""
    order = []
    sim.schedule_callback(5.0, lambda: (order.append("a"),
                                        sim.schedule_callback(
                                            0.0, order.append, "zero")))
    sim.schedule_callback(5.0, order.append, "b")
    while sim.step():
        pass
    assert order == ["a", "b", "zero"]


def test_processed_events_exact_across_nested_runs(sim: Simulator):
    """run() flushes its step count additively, so a callback that
    re-enters the scheduler (as harness code does) must not lose
    counts."""
    def inner() -> None:
        sim.schedule_callback(0.0, lambda: None)
        sim.run()  # re-enter the scheduler mid-dispatch

    sim.schedule_callback(1.0, inner)
    sim.schedule_callback(2.0, lambda: None)
    sim.run()
    assert sim.processed_events == 3


# ----------------------------------------------------------------------
# golden trace
# ----------------------------------------------------------------------
#: end state of the experiment below, captured on the seed scheduler
#: (commit 494d673, single global heap of closures).  If this test
#: fails, the scheduler changed *virtual-time* behaviour — that is a
#: correctness regression, not a perf tradeoff.
GOLDEN = {
    "now": 4532.0,
    "processed_events": 49027,
    "operations": 2690,
    "messages_sent": 14690,
    "bytes_sent": 2357020,
    "messages_dropped": 0,
    "per_host_sent": {
        "client1": 1585,
        "client2": 1620,
        "client3": 1591,
        "client4": 1593,
        "coordinator": 8,
        "m0-backup0": 239,
        "m0-backup1": 239,
        "m0-host": 4123,
        "m0-witness0": 1846,
        "m0-witness1": 1846,
    },
}


def _golden_experiment(fast_completion: bool = False,
                       frame_coalescing: bool = False) -> dict:
    """The seeded YCSB experiment behind every golden pin."""
    config = curp_config(2)
    if fast_completion or frame_coalescing:
        config = dataclasses.replace(config, fast_completion=fast_completion,
                                     frame_coalescing=frame_coalescing)
    cluster = build_cluster(config, seed=1234)
    workload = YcsbWorkload(name="golden", read_fraction=0.5,
                            item_count=1000, value_size=16,
                            distribution="zipfian")
    result = run_closed_loop(cluster, workload, n_clients=4,
                             duration=3_000.0, warmup=500.0)
    cluster.settle(1_000.0)
    return {
        "now": cluster.sim.now,
        "processed_events": cluster.sim.processed_events,
        "operations": result["operations"],
        "messages_sent": cluster.network.stats.messages_sent,
        "bytes_sent": cluster.network.stats.bytes_sent,
        "messages_dropped": cluster.network.stats.messages_dropped,
        "per_host_sent": dict(sorted(
            cluster.network.stats.per_host_sent.items())),
    }


def test_golden_trace_seeded_ycsb_unchanged():
    assert _golden_experiment() == GOLDEN


# ----------------------------------------------------------------------
# quorum-ordering equivalence
# ----------------------------------------------------------------------
def test_quorum_join_equivalent_to_allof():
    """The same seeded experiment joined through AllOf and through a
    watch-mode QuorumEvent must be indistinguishable — identical
    ``(now, processed_events, per-host traffic)``.  QuorumEvent adds a
    callback per child and queues one dispatch on completion, exactly
    like AllOf; only the per-trigger dict and watcher closures go away.
    """
    baseline = _golden_experiment()
    CurpClient.join_with_quorum = True
    try:
        quorum = _golden_experiment()
    finally:
        CurpClient.join_with_quorum = False
    assert quorum == baseline
    assert baseline == GOLDEN  # and both match the PR 1 pin


# ----------------------------------------------------------------------
# golden trace, callback fast path
# ----------------------------------------------------------------------
#: end state of the same experiment under config.fast_completion=True
#: (call_cb + QuorumEvent + the master's continuation-passing update
#: path).  Virtual end time matches the legacy pin; processed_events is
#: ~50% lower because the fast path needs no spawn/wrapper/event-
#: dispatch entries (and no worker-grant event when a worker is free);
#: traffic differs within noise because completions run earlier
#: *within* an instant, shifting the closed-loop op mix.
GOLDEN_FAST = {
    "now": 4532.0,
    "processed_events": 24294,
    "operations": 2702,
    "messages_sent": 14676,
    "bytes_sent": 2358920,
    "messages_dropped": 0,
    "per_host_sent": {
        "client1": 1621,
        "client2": 1604,
        "client3": 1566,
        "client4": 1603,
        "coordinator": 8,
        "m0-backup0": 236,
        "m0-backup1": 236,
        "m0-host": 4098,
        "m0-witness0": 1852,
        "m0-witness1": 1852,
    },
}


def test_golden_trace_fast_completion_pinned():
    observed = _golden_experiment(fast_completion=True)
    assert observed == GOLDEN_FAST


def test_fast_completion_reaches_same_virtual_time():
    """The completion model must not change physics: both paths end the
    seeded experiment at the same virtual instant with no drops, and
    the fast path dispatches strictly fewer queue entries per op."""
    assert GOLDEN_FAST["now"] == GOLDEN["now"]
    assert GOLDEN_FAST["messages_dropped"] == GOLDEN["messages_dropped"]
    assert (GOLDEN_FAST["processed_events"] / GOLDEN_FAST["operations"]
            < 0.7 * GOLDEN["processed_events"] / GOLDEN["operations"])


def test_single_client_trace_identical_across_completion_modes():
    """With one closed-loop client there is no within-instant contention
    to reorder, so the two completion modes must produce *identical*
    operations, virtual time and per-host message counts — only
    processed_events may differ."""
    def run(fast: bool):
        config = dataclasses.replace(curp_config(2), fast_completion=fast)
        cluster = build_cluster(config, seed=77)
        workload = YcsbWorkload(name="single", read_fraction=0.5,
                                item_count=100, value_size=16,
                                distribution="uniform")
        result = run_closed_loop(cluster, workload, n_clients=1,
                                 duration=2_000.0, warmup=0.0)
        cluster.settle(500.0)
        return (
            cluster.sim.now,
            result["operations"],
            cluster.network.stats.messages_sent,
            cluster.network.stats.bytes_sent,
            dict(sorted(cluster.network.stats.per_host_sent.items())),
        )
    assert run(False) == run(True)


# ----------------------------------------------------------------------
# golden trace, frame coalescing (ISSUE 4)
# ----------------------------------------------------------------------
def test_closed_loop_coalescing_trace_matches_fast_golden():
    """A closed-loop client never has two same-instant messages to one
    destination, so turning frames on must not change the fast-path
    golden by a byte — singleton frames transmit exactly like plain
    messages (same stats, same delivery instants, same dispatch)."""
    observed = _golden_experiment(fast_completion=True,
                                  frame_coalescing=True)
    assert observed == GOLDEN_FAST


#: end state of the seeded *pipelined* experiment (4 clients × 40
#: waves × depth 4, zipfian 25% reads) under fast_completion +
#: frame_coalescing — the coalesced path's own golden pin.  Note
#: messages_sent ≈ 0.38 × payloads_sent: a wave's same-instant RPCs to
#: each destination share one frame.  If this pin moves, the frame
#: flush boundary changed virtual-time behaviour.
GOLDEN_COALESCED = {
    "now": 1356.0,
    "processed_events": 3956,
    "operations": 640,
    "messages_sent": 1416,
    "payloads_sent": 3694,
    "frames_sent": 961,
    "frame_payloads": 3239,
    "bytes_sent": 630020,
    "messages_dropped": 0,
    "per_host_sent": {
        "client1": 128,
        "client2": 125,
        "client3": 127,
        "client4": 130,
        "coordinator": 8,
        "m0-backup0": 41,
        "m0-backup1": 41,
        "m0-host": 414,
        "m0-witness0": 201,
        "m0-witness1": 201,
    },
}


def _coalesced_experiment(frame_coalescing: bool = True) -> dict:
    """The seeded pipelined experiment behind the coalesced golden."""
    config = dataclasses.replace(curp_config(2), fast_completion=True,
                                 frame_coalescing=frame_coalescing)
    cluster = build_cluster(config, seed=1234)
    workload = YcsbWorkload(name="golden-pipelined", read_fraction=0.25,
                            item_count=1000, value_size=16,
                            distribution="zipfian")
    result = run_pipelined_loop(cluster, workload, n_clients=4,
                                waves=40, depth=4)
    cluster.settle(1_000.0)
    stats = cluster.network.stats
    return {
        "now": cluster.sim.now,
        "processed_events": cluster.sim.processed_events,
        "operations": result["operations"],
        "messages_sent": stats.messages_sent,
        "payloads_sent": stats.payloads_sent,
        "frames_sent": stats.frames_sent,
        "frame_payloads": stats.frame_payloads,
        "bytes_sent": stats.bytes_sent,
        "messages_dropped": stats.messages_dropped,
        "per_host_sent": dict(sorted(stats.per_host_sent.items())),
    }


def test_golden_trace_coalesced_pinned():
    assert _coalesced_experiment() == GOLDEN_COALESCED


# ----------------------------------------------------------------------
# golden trace, load-driven rebalancing (ISSUE 5)
# ----------------------------------------------------------------------
#: end state of the seeded skewed two-shard experiment with the
#: rebalancer enabled (interval 400, threshold 1.25): one split of the
#: hot shard's tablet at the load-weighted point, one migration of the
#: split-off half to the cold shard, and the post-move merge pass
#: coalescing the receiver's now-adjacent tablets back into one — the
#: final layout is two tablets with the boundary at the split point.
#: Captured when the rebalancer landed; byte-identical thereafter.
GOLDEN_REBALANCE = {
    "now": 4532.0,
    "processed_events": 49014,
    "operations": 2570,
    "messages_sent": 15006,
    "bytes_sent": 2341960,
    "messages_dropped": 0,
    "splits": 1,
    "migrations": 1,
    "tablets": ((0, 9735153152272807980, "m0"),
                (9735153152272807980, 18446744073709551616, "m1")),
    "per_host_sent": {
        "client1": 1500,
        "client2": 1547,
        "client3": 1467,
        "client4": 1563,
        "coordinator": 40,
        "m0-backup0": 154,
        "m0-backup1": 154,
        "m0-host": 1943,
        "m0-witness0": 821,
        "m0-witness1": 821,
        "m1-backup0": 196,
        "m1-backup1": 196,
        "m1-host": 2488,
        "m1-witness0": 1058,
        "m1-witness1": 1058,
    },
}


def _rebalance_experiment(rebalance: bool = True) -> dict:
    """The seeded *skewed* experiment behind the rebalancer golden: two
    shards, a zipfian mix whose head lands ~70% of the load on m1, and
    the rebalancer (when enabled) splitting/migrating mid-run."""
    cluster = build_cluster(curp_config(2), seed=1234, n_masters=2)
    if rebalance:
        cluster.start_rebalancer(interval=400.0, threshold=1.25,
                                 min_ops=60)
    workload = YcsbWorkload(name="golden-skewed", read_fraction=0.5,
                            item_count=375, value_size=16,
                            distribution="zipfian")
    result = run_closed_loop(cluster, workload, n_clients=4,
                             duration=3_000.0, warmup=500.0)
    if cluster.rebalancer is not None:
        cluster.rebalancer.stop()
    cluster.settle(1_000.0)
    stats = cluster.rebalancer.stats if rebalance else None
    return {
        "now": cluster.sim.now,
        "processed_events": cluster.sim.processed_events,
        "operations": result["operations"],
        "messages_sent": cluster.network.stats.messages_sent,
        "bytes_sent": cluster.network.stats.bytes_sent,
        "messages_dropped": cluster.network.stats.messages_dropped,
        "splits": stats.splits if stats else 0,
        "migrations": stats.migrations if stats else 0,
        "tablets": cluster.shard_map.tablets(),
        "per_host_sent": dict(sorted(
            cluster.network.stats.per_host_sent.items())),
    }


def test_golden_trace_rebalance_pinned():
    """ISSUE 5 golden: the seeded skewed run with rebalancing enabled
    is pinned end-to-end — virtual end time, dispatch count, traffic,
    *and* the exact post-rebalance tablet layout.  Any drift in the
    rebalancer's virtual-time behaviour (report cadence, split-point
    choice, migration protocol) moves this pin.

    Rebalancing *disabled* is pinned by omission everywhere else: the
    load-accounting counters add no events, so GOLDEN / GOLDEN_FAST /
    GOLDEN_COALESCED above must stay byte-identical — those tests are
    the disabled half of this satellite."""
    observed = _rebalance_experiment()
    assert observed == GOLDEN_REBALANCE
    assert GOLDEN_REBALANCE["migrations"] >= 1  # the pin has a subject


def test_rebalance_disabled_trace_static_tablets():
    """The identical skewed experiment without the rebalancer keeps the
    even two-tablet split (nothing else in the PR moves tablets), and
    its virtual end time matches the enabled run's — rebalancing
    changes placement and message counts, never the measured window."""
    observed = _rebalance_experiment(rebalance=False)
    assert observed["splits"] == 0 and observed["migrations"] == 0
    assert observed["tablets"] == ((0, 2 ** 63, "m0"),
                                   (2 ** 63, 2 ** 64, "m1"))
    assert observed["now"] == GOLDEN_REBALANCE["now"]


def test_single_client_pipelined_end_state_identical_across_frame_modes():
    """With one pipelined client there is no cross-client contention to
    shift the within-instant op mix, so frames on/off must produce
    identical end states — same virtual time, operations, RPC payloads
    and per-host bytes — while the coalesced run needs far fewer wire
    transmissions (the PR 3-style cross-mode identity, transposed to
    the transport layer)."""
    def run(frames: bool):
        config = dataclasses.replace(curp_config(2), fast_completion=True,
                                     frame_coalescing=frames)
        cluster = build_cluster(config, seed=77)
        workload = YcsbWorkload(name="single", read_fraction=0.25,
                                item_count=100, value_size=16,
                                distribution="uniform")
        result = run_pipelined_loop(cluster, workload, n_clients=1,
                                    waves=30, depth=4)
        cluster.settle(500.0)
        stats = cluster.network.stats
        end_state = (
            cluster.sim.now,
            result["operations"],
            stats.payloads_sent,
            stats.bytes_sent,
            dict(sorted(stats.per_host_bytes.items())),
        )
        return end_state, stats.messages_sent
    coalesced, coalesced_messages = run(True)
    legacy, legacy_messages = run(False)
    assert coalesced == legacy
    # The identical protocol exchange rode far fewer transmissions.
    assert coalesced_messages < 0.5 * legacy_messages


# ----------------------------------------------------------------------
# partitioned simulation (ISSUE 9): 1-partition mode preserves every
# golden above byte-identically, and fixed (seed, partition count)
# reproduces identical end states run over run
# ----------------------------------------------------------------------
from repro.harness.builder import build_partitioned_cluster  # noqa: E402
from repro.sim.partition import PartitionedSimulation  # noqa: E402
from repro.workload.partitioned import build_openloop_partition  # noqa: E402


class _GoldenDriver:
    """Runs the exact golden experiments inside one partition."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network

    def run_closed_loop_golden(self) -> dict:
        workload = YcsbWorkload(name="golden", read_fraction=0.5,
                                item_count=1000, value_size=16,
                                distribution="zipfian")
        result = run_closed_loop(self.cluster, workload, n_clients=4,
                                 duration=3_000.0, warmup=500.0)
        self.cluster.settle(1_000.0)
        return {
            "now": self.sim.now,
            "processed_events": self.sim.processed_events,
            "operations": result["operations"],
            "messages_sent": self.network.stats.messages_sent,
            "bytes_sent": self.network.stats.bytes_sent,
            "messages_dropped": self.network.stats.messages_dropped,
            "per_host_sent": dict(sorted(
                self.network.stats.per_host_sent.items())),
        }

    def run_pipelined_golden(self) -> dict:
        workload = YcsbWorkload(name="golden-pipelined",
                                read_fraction=0.25, item_count=1000,
                                value_size=16, distribution="zipfian")
        result = run_pipelined_loop(self.cluster, workload, n_clients=4,
                                    waves=40, depth=4)
        self.cluster.settle(1_000.0)
        stats = self.network.stats
        return {
            "now": self.sim.now,
            "processed_events": self.sim.processed_events,
            "operations": result["operations"],
            "messages_sent": stats.messages_sent,
            "payloads_sent": stats.payloads_sent,
            "frames_sent": stats.frames_sent,
            "frame_payloads": stats.frame_payloads,
            "bytes_sent": stats.bytes_sent,
            "messages_dropped": stats.messages_dropped,
            "per_host_sent": dict(sorted(stats.per_host_sent.items())),
        }

    def run_rebalance_golden(self) -> dict:
        self.cluster.start_rebalancer(interval=400.0, threshold=1.25,
                                      min_ops=60)
        workload = YcsbWorkload(name="golden-skewed", read_fraction=0.5,
                                item_count=375, value_size=16,
                                distribution="zipfian")
        result = run_closed_loop(self.cluster, workload, n_clients=4,
                                 duration=3_000.0, warmup=500.0)
        self.cluster.rebalancer.stop()
        self.cluster.settle(1_000.0)
        stats = self.cluster.rebalancer.stats
        return {
            "now": self.sim.now,
            "processed_events": self.sim.processed_events,
            "operations": result["operations"],
            "messages_sent": self.network.stats.messages_sent,
            "bytes_sent": self.network.stats.bytes_sent,
            "messages_dropped": self.network.stats.messages_dropped,
            "splits": stats.splits,
            "migrations": stats.migrations,
            "tablets": self.cluster.shard_map.tablets(),
            "per_host_sent": dict(sorted(
                self.network.stats.per_host_sent.items())),
        }


def _golden_partition_setup(partition_id: int, n_partitions: int, args):
    fast, frames, n_masters = args
    config = curp_config(2)
    if fast or frames:
        config = dataclasses.replace(config, fast_completion=fast,
                                     frame_coalescing=frames)
    cluster = build_partitioned_cluster(partition_id, n_partitions,
                                        config=config, seed=1234,
                                        n_masters=n_masters)
    return _GoldenDriver(cluster)


def test_one_partition_mode_goldens_byte_identical():
    """The partition runner at P=1 — partitioned builder, window loop,
    barrier calls and all — reproduces every golden pin above
    byte-for-byte.  This is the acceptance gate for the PDES layer:
    zero partitions' worth of overhead may leak into virtual time."""
    for fast, frames, n_masters, method, pin in (
            (False, False, 1, "run_closed_loop_golden", GOLDEN),
            (True, False, 1, "run_closed_loop_golden", GOLDEN_FAST),
            (True, True, 1, "run_closed_loop_golden", GOLDEN_FAST),
            (True, True, 1, "run_pipelined_golden", GOLDEN_COALESCED),
            (False, False, 2, "run_rebalance_golden", GOLDEN_REBALANCE)):
        with PartitionedSimulation(_golden_partition_setup, 1,
                                   setup_args=(fast, frames, n_masters),
                                   backend="inline") as psim:
            observed = psim.call(method)[0]
        assert observed == pin, (fast, frames, method)


def _two_partition_run(seed: int):
    args = {"n_masters": 4, "seed": seed, "rate_per_shard": 25_000.0,
            "n_clients": 2, "keys_per_shard": 8, "remote_fraction": 0.2}
    with PartitionedSimulation(build_openloop_partition, 2,
                               setup_args=args, backend="inline") as psim:
        psim.call("start")
        psim.advance(psim.now + 1_000.0)
        psim.call("reset")
        start = psim.now
        psim.advance(start + 5_000.0)
        psim.call("stop")
        results = psim.call("results", 5_000.0)
        digests = psim.call("digest")
    return ([(r["completed"], r["offered"],
              r["partition"]["exported"], r["partition"]["imported"])
             for r in results], digests)


def test_partitioned_same_seed_same_count_identical_end_state():
    """Fixed seed + fixed partition count ⇒ bit-identical end states
    across runs: completions, traffic, per-master store digests."""
    first = _two_partition_run(seed=2024)
    second = _two_partition_run(seed=2024)
    assert first == second
    # The run actually crossed partitions — determinism of an idle
    # mailbox would prove nothing.
    assert all(exported > 0 for _, _, exported, _ in first[0])
    # And a different seed genuinely changes the run.
    assert _two_partition_run(seed=2025) != first
