"""Segmented write-ahead log + virtual disk model for backups.

RAMCloud organises each backup's replica data into fixed-size
*segments*: the unit of allocation, of cleaning, and — crucially for
fast crash recovery — of parallel replay.  This module models that
layout in virtual time:

- :class:`SegmentedWal` keeps a backup's log entries bucketed into
  segments in arrival order.  The active segment seals ("rotates") when
  full; sealed segments carry an index summary (entry count, key-hash
  min/max) so readers can *skip* segments that cannot contain a key
  range — segment-indexed reads.
- :class:`VirtualDisk` is a busy-until accumulator: every charged IO
  starts when the previous one finishes, so appends, cleaner passes and
  recovery reads on one backup serialize — the modeled disk-bandwidth
  bound that partitioned recovery works around by striping reads
  across backups.
- Cleaning (log compaction) rewrites a sealed segment whose *live
  payload* ratio dropped below a threshold: superseded values are
  dropped, but every log *index* survives as a slim completion-only
  record (``effects=()``), because recovery's ``rebuild_from_entries``
  requires a gap-free log and RIFL exactly-once needs the
  ``rpc_id → result`` pairs.  Read amplification is the whole-segment
  scan; write amplification is the survivor rewrite.

All of it is pure bookkeeping until a
:class:`~repro.core.config.StorageProfile` is enabled — the WAL itself
schedules nothing and draws no randomness.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.kvstore.hashing import key_hash
from repro.kvstore.log import LogEntry

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


@dataclasses.dataclass
class BackupStats:
    """Counters for one backup's storage activity."""

    #: entries appended (first-time stores; duplicate resends excluded)
    entries_appended: int = 0
    #: segments sealed because the active segment filled (rotations)
    segments_sealed: int = 0
    #: sealed segments rewritten by the cleaner
    segments_cleaned: int = 0
    #: entries scanned by cleaner passes (the read-amplification source)
    entries_scanned: int = 0
    #: live payloads rewritten by the cleaner (write amplification)
    payloads_rewritten: int = 0
    #: superseded payloads dropped by the cleaner (space reclaimed)
    payloads_reclaimed: int = 0
    #: entries read back for recovery (full-log or partitioned reads)
    recovery_entries_read: int = 0
    #: segments a partitioned/ranged read skipped via the segment index
    segments_skipped: int = 0


class VirtualDisk:
    """One backup's disk: a single serial IO channel in virtual time.

    ``charge(cost)`` reserves the next ``cost`` µs of disk time and
    returns the delay from *now* until that IO completes — i.e. queueing
    behind earlier IOs plus the IO itself.  Zero-cost charges return
    0.0 and never touch the clock, so a disabled profile is free.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.free_at = 0.0
        #: cumulative IO time charged (utilization numerator)
        self.busy_time = 0.0
        #: service-time scale, driven by SlowDisk faults (net/faults.py);
        #: 1.0 = healthy, 50.0 = the fail-slow disk of §gray failures
        self.multiplier = 1.0

    def charge(self, cost: float) -> float:
        if cost <= 0:
            return 0.0
        if self.multiplier != 1.0:
            cost *= self.multiplier
        start = max(self.sim.now, self.free_at)
        self.free_at = start + cost
        self.busy_time += cost
        return self.free_at - self.sim.now


@dataclasses.dataclass(frozen=True)
class SegmentInfo:
    """Wire summary of one segment (the recovery coordinator's index)."""

    segment_id: int
    entry_count: int
    first_index: int
    last_index: int
    #: smallest / largest key hash among stored payloads (None when the
    #: segment holds only completion-only records)
    min_hash: int | None
    max_hash: int | None
    #: entries with no effects (completion records) — these belong to
    #: every recovery partition, so a segment holding any can never be
    #: skipped by a hash-range test
    completion_only: int
    sealed: bool
    live_ratio: float

    def overlaps(self, ranges: typing.Sequence[tuple[int, int]]) -> bool:
        """Can this segment contain data for any [lo, hi) in ranges?"""
        if self.completion_only:
            return True
        if self.min_hash is None:
            return False  # empty segment
        return any(self.min_hash < hi and self.max_hash >= lo
                   for lo, hi in ranges)


class Segment:
    """One segment: a contiguous arrival-order slice of the log."""

    __slots__ = ("segment_id", "indices", "sealed", "cleaned",
                 "live_payloads", "total_payloads", "min_hash", "max_hash")

    def __init__(self, segment_id: int):
        self.segment_id = segment_id
        #: log indices stored here, in arrival order
        self.indices: list[int] = []
        self.sealed = False
        self.cleaned = False
        #: payload = one (key, value, version) effect; live = not yet
        #: superseded by a later entry for the same key
        self.live_payloads = 0
        self.total_payloads = 0
        self.min_hash: int | None = None
        self.max_hash: int | None = None

    @property
    def live_ratio(self) -> float:
        if self.total_payloads == 0:
            return 1.0
        return self.live_payloads / self.total_payloads

    def note_hash(self, h: int) -> None:
        if self.min_hash is None or h < self.min_hash:
            self.min_hash = h
        if self.max_hash is None or h > self.max_hash:
            self.max_hash = h


class SegmentedWal:
    """A backup's entries, organised into rotation-sealed segments."""

    def __init__(self, segment_size: int,
                 stats: BackupStats | None = None):
        if segment_size < 1:
            raise ValueError("segment_size must be >= 1")
        self.segment_size = segment_size
        self.stats = stats if stats is not None else BackupStats()
        self.entries: dict[int, LogEntry] = {}
        self.segments: list[Segment] = []
        #: log index -> segment holding it
        self._segment_of: dict[int, Segment] = {}
        #: key -> log index of the entry holding its newest payload
        self._latest_index: dict[str, int] = {}
        #: indices whose stored entry was slimmed by the cleaner (a
        #: master resend of the original full entry is *not* divergence)
        self._compacted: set[int] = set()
        self._open_segment()

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _open_segment(self) -> Segment:
        segment = Segment(len(self.segments))
        self.segments.append(segment)
        self.active = segment
        return segment

    def rotations_for(self, n_new: int) -> int:
        """How many segment seals ``n_new`` fresh appends will trigger."""
        if n_new <= 0:
            return 0
        room = self.segment_size - len(self.active.indices)
        if n_new < room:
            return 0
        return 1 + (n_new - room) // self.segment_size

    def append(self, entry: LogEntry) -> None:
        """Store one *new* entry (caller has checked for duplicates)."""
        segment = self.active
        segment.indices.append(entry.index)
        self.entries[entry.index] = entry
        self._segment_of[entry.index] = segment
        self.stats.entries_appended += 1
        for key, _value, _version in entry.effects:
            h = key_hash(key)
            segment.note_hash(h)
            segment.live_payloads += 1
            segment.total_payloads += 1
            previous = self._latest_index.get(key)
            if previous is not None:
                holder = self._segment_of.get(previous)
                if holder is not None:
                    holder.live_payloads -= 1
            self._latest_index[key] = entry.index
        if len(segment.indices) >= self.segment_size:
            segment.sealed = True
            self.stats.segments_sealed += 1
            self._open_segment()

    def is_compacted(self, index: int) -> bool:
        return index in self._compacted

    def reset(self) -> None:
        """Drop everything (``reset_log`` wholesale adoption)."""
        self.entries.clear()
        self.segments.clear()
        self._segment_of.clear()
        self._latest_index.clear()
        self._compacted.clear()
        self._open_segment()

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def all_entries(self) -> tuple[LogEntry, ...]:
        return tuple(self.entries[i] for i in sorted(self.entries))

    def segment_index(self) -> tuple[SegmentInfo, ...]:
        """Metadata summary of every non-empty segment (plus the active
        one) — what the recovery coordinator partitions reads over."""
        infos = []
        for segment in self.segments:
            if not segment.indices:
                continue
            completion_only = sum(
                1 for i in segment.indices if not self.entries[i].effects)
            infos.append(SegmentInfo(
                segment_id=segment.segment_id,
                entry_count=len(segment.indices),
                first_index=min(segment.indices),
                last_index=max(segment.indices),
                min_hash=segment.min_hash,
                max_hash=segment.max_hash,
                completion_only=completion_only,
                sealed=segment.sealed,
                live_ratio=segment.live_ratio))
        return tuple(infos)

    def segment_entries(self, segment_id: int) -> tuple[LogEntry, ...]:
        segment = self.segments[segment_id]
        return tuple(self.entries[i] for i in segment.indices)

    # ------------------------------------------------------------------
    # cleaning (compaction)
    # ------------------------------------------------------------------
    def cleanable(self, live_ratio_threshold: float) -> list[Segment]:
        """Sealed, not-yet-cleaned segments below the live threshold,
        worst (most garbage) first."""
        candidates = [s for s in self.segments
                      if s.sealed and not s.cleaned
                      and s.live_ratio < live_ratio_threshold]
        candidates.sort(key=lambda s: s.live_ratio)
        return candidates

    def compact(self, segment: Segment) -> tuple[int, int, int]:
        """Rewrite ``segment`` keeping only live payloads.

        Every log index survives (as a completion-only record when all
        its payloads were superseded): recovery needs a gap-free log and
        the ``rpc_id → result`` pairs must outlive their values for
        exactly-once.  Returns (entries scanned, payloads reclaimed,
        payloads rewritten).
        """
        scanned = len(segment.indices)
        reclaimed = 0
        rewritten = 0
        min_hash: int | None = None
        max_hash: int | None = None
        for index in segment.indices:
            entry = self.entries[index]
            if not entry.effects:
                continue
            live = tuple(effect for effect in entry.effects
                         if self._latest_index.get(effect[0]) == index)
            reclaimed += len(entry.effects) - len(live)
            rewritten += len(live)
            for key, _value, _version in live:
                h = key_hash(key)
                if min_hash is None or h < min_hash:
                    min_hash = h
                if max_hash is None or h > max_hash:
                    max_hash = h
            if len(live) != len(entry.effects):
                self.entries[index] = LogEntry(
                    index=entry.index, effects=live, rpc_id=entry.rpc_id,
                    result=entry.result, timestamp=entry.timestamp)
                self._compacted.add(index)
        segment.total_payloads = segment.live_payloads = rewritten
        segment.min_hash = min_hash
        segment.max_hash = max_hash
        segment.cleaned = True
        self.stats.segments_cleaned += 1
        self.stats.entries_scanned += scanned
        self.stats.payloads_reclaimed += reclaimed
        self.stats.payloads_rewritten += rewritten
        return scanned, reclaimed, rewritten

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    @property
    def last_index(self) -> int:
        return max(self.entries, default=0)
