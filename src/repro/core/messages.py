"""Wire-format dataclasses for CURP RPCs.

Mirrors the witness API of Figure 4 plus the master-facing RPCs the
protocol text describes (update, read, sync) and the coordinator-facing
control RPCs (§3.6).
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class UpdateArgs:
    """Client → master: execute an update operation."""

    op: typing.Any
    rpc_id: typing.Any
    #: piggybacked RIFL acknowledgment (first incomplete seq)
    ack_seq: int
    #: the witness list version the client believes current (§3.6)
    witness_list_version: int


@dataclasses.dataclass(frozen=True)
class UpdateReply:
    result: typing.Any
    #: True when the update is already durable on backups (the client
    #: may skip witnesses entirely, §3.2.3)
    synced: bool


@dataclasses.dataclass(frozen=True)
class ReadArgs:
    key: str
    #: §A.3: reads preparing a conditional update may return unsynced
    #: values without waiting for durability — the commit-time version
    #: check catches any value that failed to survive
    allow_unsynced: bool = False
    #: return (value, version) instead of just the value
    return_version: bool = False
    #: watchdog data-path probes bypass admission shedding: they
    #: measure whether the worker pool drains (by timing out when it
    #: does not), and a RETRY_LATER would hide a wedged pool behind
    #: ordinary overload pushback
    probe: bool = False


@dataclasses.dataclass(frozen=True)
class RecordArgs:
    """Client → witness: record(masterID, keyHashes, rpcId, request)."""

    master_id: str
    key_hashes: tuple[int, ...]
    rpc_id: typing.Any
    request: typing.Any


#: witness record outcomes (plain strings cross the wire)
RECORD_ACCEPTED = "ACCEPTED"
RECORD_REJECTED = "REJECTED"

#: AppError code for admission-control pushback: the master's bounded
#: queue is full; the ``info`` dict carries a ``retry_after`` hint (µs)
#: that clients honor with jittered exponential backoff — and *without*
#: a cluster-view refresh (overload is not a routing problem)
RETRY_LATER = "RETRY_LATER"


@dataclasses.dataclass(frozen=True)
class GcArgs:
    """Master → witness: drop synced requests."""

    master_id: str
    pairs: tuple[tuple[int, typing.Any], ...]


@dataclasses.dataclass(frozen=True)
class GcBatchArgs:
    """Master → witness: drop a coalesced batch of synced requests.

    ``pairs`` accumulates across sync rounds (§4.5 + batching):
    instead of one gc RPC per witness per sync round, the master sends
    one ``gc_batch`` per witness per flush.  ``rounds`` is how many
    sync rounds the batch coalesced, so the witness advances its
    stale-suspect aging clock as if each round had gc'd separately.
    """

    master_id: str
    pairs: tuple[tuple[int, typing.Any], ...]
    rounds: int = 1


@dataclasses.dataclass(frozen=True)
class TxnResolveArgs:
    """Client → master, fire-and-forget: a cross-shard transaction
    (§B.2) committed on every participant, so the shard's pending-txn
    bookkeeping for it can be dropped.  Purely advisory — the client
    carries the undo data, so a lost or duplicated notification is
    harmless."""

    txn_id: typing.Any


@dataclasses.dataclass(frozen=True)
class ProbeArgs:
    """Reader client → witness: do these key hashes commute with every
    saved request? (§A.1 consistent reads from backups)."""

    master_id: str
    key_hashes: tuple[int, ...]


PROBE_COMMUTE = "COMMUTE"
PROBE_CONFLICT = "CONFLICT"


@dataclasses.dataclass(frozen=True)
class GetRecoveryDataArgs:
    master_id: str


@dataclasses.dataclass(frozen=True)
class AbsorbPartitionArgs:
    """Partitioned recovery (§4.6 + RAMCloud fast recovery): a
    surviving master absorbs one partition of a dead master's tablets —
    installs the backed-up entries for those ranges, replays the
    witness requests that hash into them, and syncs the result to its
    own backups before acking."""

    #: the crashed master whose data is being absorbed
    dead_master_id: str
    #: recovery epoch (observability; fencing already happened)
    epoch: int
    #: the [lo, hi) hash ranges this partition covers
    ranges: tuple[tuple[int, int], ...]
    #: backed-up log entries for the partition, any order (installed
    #: sorted by index; effects outside ``ranges`` are skipped)
    entries: tuple
    #: witness-recovered speculative requests for the partition
    requests: tuple


@dataclasses.dataclass(frozen=True)
class StartArgs:
    master_id: str
    #: the master's owned key-hash ranges at start time.  A witness that
    #: knows them rejects records for keys the master does not own (a
    #: stale-routed client mid-migration, §3.6) instead of silently
    #: pinning a slot no gc path can reach.  ``None`` = no filtering
    #: (hand-built unit-test witnesses keep accepting everything).
    owned_ranges: tuple[tuple[int, int], ...] | None = None


@dataclasses.dataclass(frozen=True)
class SetRangesArgs:
    """Coordinator → witness: the master's ownership changed (migration
    cutover, tablet split).  Unlike ``start`` this does *not* clear the
    cache: records for still-owned keys stay; records whose key hash
    left the master's ranges are evicted — they are safe to drop
    because the migration protocol syncs the source before cutover, so
    every completed update in the migrated range is already durable."""

    master_id: str
    owned_ranges: tuple[tuple[int, int], ...]


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """Master → coordinator reply: one load-accounting window.

    ``tablet_ops`` buckets the window's operations by the master's
    owned tablets; ``hash_ops`` is the per-key-hash histogram the
    rebalancer uses to pick a weighted split point.  The window resets
    when the report is pulled, so consecutive reports measure disjoint
    intervals."""

    master_id: str
    #: ((lo, hi), ops) per owned tablet, this window
    tablet_ops: tuple[tuple[tuple[int, int], int], ...]
    #: (key_hash, ops) histogram for the window, sorted by hash
    hash_ops: tuple[tuple[int, int], ...]
    #: total operations serviced this window
    window_ops: int


@dataclasses.dataclass(frozen=True)
class BackupReadArgs:
    """Reader client → backup: read a key from replicated state (§A.1)."""

    key: str


@dataclasses.dataclass(frozen=True)
class RecordedRequest:
    """What a witness actually stores: enough to replay the update
    during recovery (the operation and its exactly-once identity)."""

    op: typing.Any
    rpc_id: typing.Any


@dataclasses.dataclass(frozen=True)
class MasterInfo:
    """One master's placement as known by the coordinator."""

    master_id: str
    host: str
    backups: tuple[str, ...]
    witnesses: tuple[str, ...]
    witness_list_version: int
    epoch: int


@dataclasses.dataclass(frozen=True)
class ClusterView:
    """Configuration snapshot clients cache (§3.6).

    ``tablets`` maps key-hash ranges [lo, hi) to master ids.  When the
    coordinator attaches a :class:`~repro.cluster.shard_map.ShardMap`
    (typed loosely to keep this module import-free), routing goes
    through its sorted-bounds lookup; the linear tablet scan remains as
    the fallback for hand-built views in unit tests.
    """

    tablets: tuple[tuple[int, int, str], ...]
    masters: dict[str, MasterInfo]
    version: int
    shard_map: typing.Any = None

    def master_for_hash(self, key_hash_value: int) -> str | None:
        if self.shard_map is not None:
            return self.shard_map.master_for_hash(key_hash_value)
        for lo, hi, master_id in self.tablets:
            if lo <= key_hash_value < hi:
                return master_id
        return None
