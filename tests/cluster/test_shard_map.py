"""ShardMap routing + client re-routing on a stale map (WRONG_SHARD),
plus property-based invariants over random split/migrate/merge
sequences (ISSUE 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.shard_map import FULL_SPAN, ShardMap
from repro.core.config import CurpConfig, ReplicationMode
from repro.harness import build_cluster
from repro.kvstore import Write, key_hash


# ----------------------------------------------------------------------
# ShardMap unit tests
# ----------------------------------------------------------------------
def test_from_tablets_sorts_and_routes():
    shard_map = ShardMap.from_tablets(
        [(100, 200, "m1"), (0, 100, "m0"), (200, 300, "m2")], version=7)
    assert shard_map.version == 7
    assert shard_map.n_tablets == 3
    assert shard_map.owners == ("m0", "m1", "m2")
    assert shard_map.master_for_hash(0) == "m0"
    assert shard_map.master_for_hash(99) == "m0"
    assert shard_map.master_for_hash(100) == "m1"
    assert shard_map.master_for_hash(199) == "m1"
    assert shard_map.master_for_hash(299) == "m2"
    assert shard_map.master_for_hash(300) is None  # past the last tablet


def test_gaps_route_to_none():
    shard_map = ShardMap.from_tablets([(0, 10, "m0"), (20, 30, "m1")])
    assert shard_map.master_for_hash(15) is None
    assert not shard_map.covers_full_range()


def test_overlapping_tablets_rejected():
    with pytest.raises(ValueError):
        ShardMap.from_tablets([(0, 10, "m0"), (5, 15, "m1")])
    with pytest.raises(ValueError):
        ShardMap.from_tablets([(10, 10, "m0")])  # empty tablet


def test_master_for_key_uses_key_hash():
    shard_map = ShardMap.from_tablets([(0, 2 ** 63, "lo"),
                                       (2 ** 63, 2 ** 64, "hi")])
    assert shard_map.covers_full_range()
    for key in ("user1", "user2", "abc", "zz-top"):
        expected = "lo" if key_hash(key) < 2 ** 63 else "hi"
        assert shard_map.master_for_key(key) == expected


def test_coordinator_map_matches_linear_tablet_scan():
    cluster = build_cluster(CurpConfig(f=1, mode=ReplicationMode.CURP),
                            n_masters=4)
    view = cluster.coordinator.current_view()
    shard_map = cluster.shard_map
    assert shard_map.covers_full_range()
    assert shard_map.shard_ids() == ("m0", "m1", "m2", "m3")
    for probe in (0, 1, 2 ** 62, 2 ** 63, 2 ** 64 - 1,
                  key_hash("user1"), key_hash("user999")):
        linear = next((owner for lo, hi, owner in view.tablets
                       if lo <= probe < hi), None)
        assert shard_map.master_for_hash(probe) == linear
    # The view routes through the same map object.
    assert view.shard_map is shard_map
    assert view.master_for_hash(2 ** 63) == shard_map.master_for_hash(2 ** 63)


def test_shard_map_invalidated_on_config_change():
    cluster = build_cluster(CurpConfig(f=1, mode=ReplicationMode.CURP),
                            n_masters=2)
    before = cluster.shard_map
    key = next(f"key-{i}" for i in range(100)
               if before.master_for_key(f"key-{i}") == "m0")
    h = key_hash(key)
    cluster.run(cluster.sim.process(
        cluster.coordinator.migrate("m0", "m1", h, h + 1)),
        timeout=1_000_000.0)
    after = cluster.shard_map
    assert after.version > before.version
    assert before.master_for_hash(h) == "m0"
    assert after.master_for_hash(h) == "m1"
    assert cluster.shard_for(key) == "m1"


# ----------------------------------------------------------------------
# stale-map client re-routing
# ----------------------------------------------------------------------
def sharded_cluster(**kwargs):
    defaults = dict(f=1, mode=ReplicationMode.CURP, min_sync_batch=50,
                    idle_sync_delay=200.0, rpc_timeout=100.0,
                    # huge backoff: the WRONG_SHARD path must never wait
                    retry_backoff=5_000.0)
    defaults.update(kwargs)
    return build_cluster(CurpConfig(**defaults), n_masters=2)


def test_stale_shard_map_rerouted_through_coordinator():
    """A client holding a stale ShardMap gets WRONG_SHARD from the old
    owner, refetches the map from the coordinator with no backoff, and
    completes on the retry — one wasted attempt plus one coordinator
    round trip on top of the normal 1-RTT fast path (3 RTTs total at
    the test profile's 2 µs one-way latency)."""
    cluster = sharded_cluster()
    client = cluster.new_client()
    key = next(f"key-{i}" for i in range(100)
               if cluster.shard_for(f"key-{i}") == "m0")
    fresh = cluster.run(client.update(Write(key, 1)))
    assert fresh.attempts == 1
    assert fresh.latency == pytest.approx(4.0)  # 1 RTT
    h = key_hash(key)
    cluster.run(cluster.sim.process(
        cluster.coordinator.migrate("m0", "m1", h, h + 1)),
        timeout=1_000_000.0)
    assert client.view.master_for_hash(h) == "m0"  # view now stale

    stale = cluster.run(client.update(Write(key, 2)))
    assert stale.attempts == 2
    # failed attempt (1 RTT) + map refresh (1 RTT) + retry (1 RTT);
    # anything near retry_backoff would mean the client slept.
    assert stale.latency == pytest.approx(12.0)
    assert client.view.master_for_hash(h) == "m1"
    assert cluster.master("m1").store.read(key) == 2
    # The wasted attempt's witness records on the OLD shard must not
    # stay pinned: m1's sync+gc can't reach them and the key no longer
    # routes to m0, so the client gc's its own aborted records.
    cluster.settle(1_000.0)
    for name in cluster.witness_hosts["m0"]:
        witness = cluster.coordinator.witness_servers[name]
        assert witness.cache.occupied_slots() == 0


def _topology_cluster(n_masters=3):
    """A cheap cluster for topology churn: no backups or witnesses, so
    split/migrate/merge rounds are a handful of RPCs each."""
    return build_cluster(
        CurpConfig(f=0, mode=ReplicationMode.UNREPLICATED,
                   rpc_timeout=100.0, retry_backoff=10.0),
        n_masters=n_masters)


def _apply_topology_op(cluster, data) -> str | None:
    """Draw and apply one random split/migrate/merge; None = the drawn
    op was inapplicable (e.g. an unsplittable one-hash tablet)."""
    coordinator = cluster.coordinator
    ids = sorted(coordinator.masters)
    kind = data.draw(st.sampled_from(["split", "migrate", "merge"]),
                     label="op")
    if kind == "split":
        master_id = data.draw(st.sampled_from(ids), label="split-master")
        tablets = [t for t in coordinator.masters[master_id].owned_ranges
                   if t[1] - t[0] >= 2]
        if not tablets:
            return None
        lo, hi = data.draw(st.sampled_from(tablets), label="split-tablet")
        fraction = data.draw(st.floats(0.05, 0.95), label="split-fraction")
        split = min(hi - 1, max(lo + 1, lo + int((hi - lo) * fraction)))
        cluster.run(cluster.sim.process(
            coordinator.split_tablet(master_id, lo, hi, split)),
            timeout=1_000_000.0)
    elif kind == "migrate":
        src = data.draw(st.sampled_from(ids), label="migrate-src")
        tablets = list(coordinator.masters[src].owned_ranges)
        if not tablets:
            return None
        dst = data.draw(st.sampled_from([m for m in ids if m != src]),
                        label="migrate-dst")
        lo, hi = data.draw(st.sampled_from(tablets), label="migrate-tablet")
        if hi - lo >= 2 and data.draw(st.booleans(), label="migrate-half"):
            hi = lo + (hi - lo) // 2  # move only the low half
        cluster.run(cluster.sim.process(
            coordinator.migrate(src, dst, lo, hi)), timeout=1_000_000.0)
    else:
        master_id = data.draw(st.sampled_from(ids), label="merge-master")
        cluster.run(cluster.sim.process(
            coordinator.merge_tablets(master_id)), timeout=1_000_000.0)
    return kind


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_random_topology_churn_preserves_map_invariants(data):
    """Any sequence of splits, migrations and merges must leave the
    shard map a partition of the full hash space — complete coverage,
    no overlap (``from_tablets`` raises on overlap, so building the
    map at all asserts it) — with monotonically increasing versions:
    strictly increasing whenever the tablet layout changed, unchanged
    on a no-op (a merge that found nothing adjacent must not churn
    client maps)."""
    cluster = _topology_cluster()
    last_version = cluster.shard_map.version
    n_ops = data.draw(st.integers(1, 8), label="n_ops")
    for _ in range(n_ops):
        tablets_before = cluster.shard_map.tablets()
        applied = _apply_topology_op(cluster, data)
        if applied is None:
            continue
        shard_map = cluster.shard_map
        assert shard_map.covers_full_range()
        assert shard_map.starts[0] == 0 and shard_map.ends[-1] == FULL_SPAN
        if shard_map.tablets() != tablets_before:
            assert shard_map.version > last_version
        else:
            assert shard_map.version == last_version
        last_version = shard_map.version
        # Coordinator bookkeeping and every live master agree on
        # ownership of arbitrary probes.
        for probe in (0, 1, 2 ** 63, FULL_SPAN - 1,
                      key_hash("userX"), key_hash("probe-key")):
            owner = shard_map.master_for_hash(probe)
            assert owner is not None
            assert cluster.master(owner).owns_hash(probe)
            for other in cluster.coordinator.masters:
                if other != owner:
                    assert not cluster.master(other).owns_hash(probe)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_stale_map_client_converges_within_three_rtts(data):
    """However far the topology drifted since a client's view, one
    WRONG_SHARD bounce + one map refresh + one retry must complete any
    read: ≤ 3 RTTs total (12 µs at the test profile's 2 µs one-way)."""
    cluster = _topology_cluster()
    client = cluster.new_client()
    keys = [f"pk-{i}" for i in range(4)]
    for key in keys:
        cluster.run(client.update(Write(key, "v")))
    stale_view = client.view
    for _ in range(data.draw(st.integers(1, 6), label="n_ops")):
        _apply_topology_op(cluster, data)
    for key in keys:
        client.view = stale_view  # maximally stale for every read
        started = cluster.sim.now
        assert cluster.run(client.read(key), timeout=1_000_000.0) == "v"
        elapsed = cluster.sim.now - started
        assert elapsed <= 12.0 + 1e-9, (
            f"read of {key} took {elapsed} µs (> 3 RTTs) — stale-map "
            f"convergence regressed")


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_shard_map_bisect_matches_linear_scan(data):
    """Pure routing property: the bisect lookup agrees with a linear
    tablet scan for arbitrary valid tablet sets and probes."""
    n_tablets = data.draw(st.integers(1, 8), label="n_tablets")
    bounds = sorted(data.draw(
        st.lists(st.integers(1, FULL_SPAN - 1), min_size=n_tablets - 1,
                 max_size=n_tablets - 1, unique=True),
        label="bounds"))
    edges = [0] + bounds + [FULL_SPAN]
    tablets = [(edges[i], edges[i + 1], f"m{i % 3}")
               for i in range(n_tablets)]
    shard_map = ShardMap.from_tablets(tablets, version=1)
    assert shard_map.covers_full_range()
    probes = data.draw(st.lists(st.integers(0, FULL_SPAN - 1), min_size=1,
                                max_size=10), label="probes")
    for probe in probes:
        linear = next((owner for lo, hi, owner in tablets
                       if lo <= probe < hi), None)
        assert shard_map.master_for_hash(probe) == linear


def test_stale_shard_map_read_rerouted():
    cluster = sharded_cluster()
    client = cluster.new_client()
    key = next(f"key-{i}" for i in range(100)
               if cluster.shard_for(f"key-{i}") == "m0")
    cluster.run(client.update(Write(key, "v")))
    cluster.settle(1_000.0)
    h = key_hash(key)
    cluster.run(cluster.sim.process(
        cluster.coordinator.migrate("m0", "m1", h, h + 1)),
        timeout=1_000_000.0)
    started = cluster.sim.now
    assert cluster.run(client.read(key)) == "v"
    # read (1 RTT, WRONG_SHARD) + refresh (1 RTT) + re-read (1 RTT),
    # with no retry_backoff sleep in between.
    assert cluster.sim.now - started == pytest.approx(12.0)
    assert client.view.master_for_hash(h) == "m1"


# ----------------------------------------------------------------------
# group_keys (cross-shard transaction fan-out, §B.2)
# ----------------------------------------------------------------------
def test_group_keys_partitions_by_owner():
    half = FULL_SPAN // 2
    shard_map = ShardMap.from_tablets(((0, half, "m0"),
                                       (half, FULL_SPAN, "m1")))
    keys = [f"key{i}" for i in range(20)]
    groups = shard_map.group_keys(keys)
    assert set(groups) <= {"m0", "m1"}
    regrouped = [key for shard in groups for key in groups[shard]]
    assert sorted(regrouped) == sorted(keys)
    for shard, shard_keys in groups.items():
        assert all(shard_map.master_for_key(k) == shard
                   for k in shard_keys)
        # first-seen order within each group
        assert list(shard_keys) == [k for k in keys if k in shard_keys]


def test_group_keys_raises_on_coverage_gap():
    half = FULL_SPAN // 2
    shard_map = ShardMap.from_tablets(((0, half, "m0"),))  # upper half dark
    dark_key = next(k for k in (f"key{i}" for i in range(1000))
                    if key_hash(k) >= half)
    with pytest.raises(KeyError):
        shard_map.group_keys([dark_key])
