"""RIFL: Reusable Infrastructure For Linearizability (Lee et al., SOSP'15).

The exactly-once RPC substrate CURP depends on (§3.3, §4.8).  Clients
stamp every update RPC with a unique :class:`~repro.rifl.ids.RpcId`
(lease-backed client id + per-client sequence number) and piggyback an
acknowledgment of their oldest incomplete RPC.  Servers keep durable
*completion records* so a retried or witness-replayed RPC is answered
from the record instead of re-executing.

CURP-specific modifications (paper §4.8), both implemented here:

1. piggybacked acknowledgments must be **ignored during witness
   replay** (replays arrive in arbitrary order, so a later request's
   ack could erase the completion record a replayed earlier request
   needs) — see :meth:`ResultRegistry.begin_recovery`;
2. masters must **sync to backups before expiring a client lease**
   (otherwise replay of the expired client's requests would be
   silently ignored) — enforced by the master's lease-expiry hook.
"""

from repro.rifl.ids import RpcId, TxnId
from repro.rifl.lease import LeaseServer
from repro.rifl.client_tracker import RiflClientTracker
from repro.rifl.result_registry import CompletionRecord, DuplicateState, ResultRegistry

__all__ = [
    "CompletionRecord",
    "DuplicateState",
    "LeaseServer",
    "ResultRegistry",
    "RiflClientTracker",
    "RpcId",
    "TxnId",
]
