"""Segmented WAL + virtual disk unit tests (ISSUE 7 storage model)."""

from __future__ import annotations

import pytest

from repro.kvstore import SegmentedWal, VirtualDisk, key_hash
from repro.kvstore.log import LogEntry
from repro.sim.simulator import Simulator


def entry(index, *effects, rpc_id=None, result=None):
    return LogEntry(index=index, effects=tuple(effects), rpc_id=rpc_id,
                    result=result, timestamp=0.0)


def write(key, version):
    return (key, f"v{version}", version)


def fill(wal, n, start=1, key=None):
    for i in range(start, start + n):
        wal.append(entry(i, write(key or f"k{i}", i), rpc_id=("c", i)))


# ---------------------------------------------------------------------------
# segmentation / rotation
# ---------------------------------------------------------------------------

def test_rotation_seals_full_segments():
    wal = SegmentedWal(segment_size=4)
    fill(wal, 9)
    assert len(wal) == 9
    assert wal.stats.segments_sealed == 2
    sealed = [s for s in wal.segments if s.sealed]
    assert [len(s.indices) for s in sealed] == [4, 4]
    assert not wal.active.sealed and len(wal.active.indices) == 1
    assert wal.last_index == 9


def test_rotations_for_counts_upcoming_seals():
    wal = SegmentedWal(segment_size=4)
    fill(wal, 3)  # one slot left in the active segment
    assert wal.rotations_for(0) == 0
    assert wal.rotations_for(1) == 1  # fills the active segment exactly
    assert wal.rotations_for(4) == 1
    assert wal.rotations_for(5) == 2
    assert wal.rotations_for(9) == 3


def test_segment_index_summarises_hash_ranges():
    wal = SegmentedWal(segment_size=2)
    fill(wal, 4)
    infos = wal.segment_index()
    assert len(infos) == 2  # empty active segment omitted
    for info in infos:
        indices = list(range(info.first_index, info.last_index + 1))
        hashes = [key_hash(f"k{i}") for i in indices]
        assert info.min_hash == min(hashes)
        assert info.max_hash == max(hashes)
        assert info.entry_count == 2 and info.sealed
        # segment-indexed reads: disjoint ranges are skippable
        assert info.overlaps(((info.min_hash, info.max_hash + 1),))
        assert not info.overlaps(((info.max_hash + 1, info.max_hash + 2),))


def test_completion_only_segments_are_never_skippable():
    wal = SegmentedWal(segment_size=2)
    wal.append(entry(1, rpc_id=("c", 1), result="ok"))
    wal.append(entry(2, write("a", 1)))
    info = wal.segment_index()[0]
    assert info.completion_only == 1
    assert info.overlaps(((0, 1),))  # any range at all


# ---------------------------------------------------------------------------
# live-ratio accounting + compaction
# ---------------------------------------------------------------------------

def test_overwrites_decay_live_ratio_of_older_segments():
    wal = SegmentedWal(segment_size=4)
    fill(wal, 4, key="hot")  # segment 0: 4 payloads for one key
    assert wal.segments[0].live_ratio == pytest.approx(0.25)
    fill(wal, 4, start=5, key="hot")  # segment 1 supersedes the rest
    assert wal.segments[0].live_ratio == 0.0
    assert wal.segments[1].live_ratio == pytest.approx(0.25)
    # worst-first ordering; the (empty) active segment is never a candidate
    assert wal.cleanable(0.5) == [wal.segments[0], wal.segments[1]]
    assert wal.active not in wal.cleanable(2.0)


def test_compaction_preserves_every_index_and_completion_record():
    wal = SegmentedWal(segment_size=4)
    fill(wal, 4, key="hot")
    fill(wal, 4, start=5, key="hot")
    segment = wal.cleanable(0.5)[0]
    scanned, reclaimed, rewritten = wal.compact(segment)
    assert (scanned, reclaimed, rewritten) == (4, 4, 0)
    # every index still present, slimmed to completion-only records
    for i in range(1, 5):
        slim = wal.entries[i]
        assert slim.effects == ()
        assert slim.rpc_id == ("c", i)  # RIFL pair survives
        assert wal.is_compacted(i)
    assert wal.all_entries()[0].index == 1
    assert len(wal.all_entries()) == 8  # gap-free
    assert segment.cleaned
    assert wal.stats.payloads_reclaimed == 4
    # cleaned segments don't come back as candidates
    assert segment not in wal.cleanable(2.0)


def test_compaction_keeps_live_payloads_and_recomputes_hashes():
    wal = SegmentedWal(segment_size=3)
    wal.append(entry(1, write("dead", 1)))
    wal.append(entry(2, write("live", 1)))
    wal.append(entry(3, write("dead", 2)))  # seals segment 0, kills idx 1
    wal.append(entry(4, write("dead", 3)))  # kills idx 3 (segment 0)
    segment = wal.segments[0]
    assert segment.live_ratio == pytest.approx(1 / 3)
    scanned, reclaimed, rewritten = wal.compact(segment)
    assert (scanned, reclaimed, rewritten) == (3, 2, 1)
    assert wal.entries[2].effects == (write("live", 1),)
    assert segment.min_hash == segment.max_hash == key_hash("live")
    assert not wal.is_compacted(2)  # untouched entry ≠ compacted


def test_reset_drops_everything():
    wal = SegmentedWal(segment_size=2)
    fill(wal, 5)
    wal.compact(wal.segments[0]) if wal.cleanable(2.0) else None
    wal.reset()
    assert len(wal) == 0 and wal.last_index == 0
    assert len(wal.segments) == 1 and not wal.segments[0].indices
    fill(wal, 2)
    assert wal.last_index == 2


# ---------------------------------------------------------------------------
# virtual disk
# ---------------------------------------------------------------------------

def test_virtual_disk_serializes_charges():
    sim = Simulator(seed=0)
    disk = VirtualDisk(sim)
    assert disk.charge(0.0) == 0.0  # free when disabled
    assert disk.charge(10.0) == 10.0
    # queued behind the first IO: 10 remaining + 5 of its own
    assert disk.charge(5.0) == 15.0
    assert disk.busy_time == 15.0
    sim.schedule_callback(100.0, lambda *args: None, (), None, 0)
    sim.run()
    # after the disk drained, a new charge pays only its own cost
    assert disk.charge(2.0) == 2.0
