"""Experiment harness: cluster builders, hardware profiles, experiment
drivers shared by tests, examples and the per-figure benchmarks."""

from repro.harness.profiles import (
    ClusterProfile,
    HostCosts,
    RAMCLOUD_PROFILE,
    REDIS_PROFILE,
    TEST_PROFILE,
)
from repro.harness.builder import Cluster, build_cluster

__all__ = [
    "Cluster",
    "ClusterProfile",
    "HostCosts",
    "RAMCLOUD_PROFILE",
    "REDIS_PROFILE",
    "TEST_PROFILE",
    "build_cluster",
]
