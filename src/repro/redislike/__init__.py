"""Redis-like in-memory structure store + CURP durability (§5.4).

The paper's second testbed: Redis is fast but its only durability
mechanism — fsync an append-only file (AOF) before replying — costs
10-100×.  CURP hides the fsync: clients record commands on witnesses
while the server replies immediately and fsyncs in the background.  The
"backup" in this instantiation is the local AOF, demonstrating the
paper's point that CURP works with *any* backup mechanism.

Pieces:

- :mod:`~repro.redislike.datastructures` — strings, hashes, lists,
  sets, counters with Redis type-checking semantics.
- :mod:`~repro.redislike.commands` — the command table (SET, GET,
  HMSET, HGET, INCR, LPUSH, RPUSH, LRANGE, SADD, SMEMBERS, DEL ...)
  with per-command write/read key classification (what witnesses hash).
- :mod:`~repro.redislike.aof` — the append-only file plus an fsync
  device with NVMe-calibrated latency (50–100 µs, Table 1).
- :mod:`~repro.redislike.server` — the single-threaded event-loop
  server with three durability modes: NONDURABLE (stock Redis),
  DURABLE (fsync-always, with the event-loop fsync batching of §C.2),
  and CURP (speculative replies + witnesses).
- :mod:`~repro.redislike.client` — clients for all three modes,
  including the parallel witness-record fast path.
"""

from repro.redislike.commands import Command, CommandError, REGISTRY
from repro.redislike.datastructures import RedisStore, WrongTypeError
from repro.redislike.aof import AppendOnlyFile, FsyncDevice
from repro.redislike.server import DurabilityMode, RedisServer
from repro.redislike.client import RedisClient

__all__ = [
    "AppendOnlyFile",
    "Command",
    "CommandError",
    "DurabilityMode",
    "FsyncDevice",
    "REGISTRY",
    "RedisClient",
    "RedisServer",
    "RedisStore",
    "WrongTypeError",
]
