"""Config factories for the evaluation's four systems."""

from __future__ import annotations

from repro.core.config import CurpConfig, ReplicationMode


def unreplicated_config(**overrides) -> CurpConfig:
    """RAMCloud with replication disabled (Figures 5/6 'Unreplicated')."""
    overrides.setdefault("f", 0)
    overrides["mode"] = ReplicationMode.UNREPLICATED
    return CurpConfig(**overrides)


def primary_backup_config(f: int = 3, **overrides) -> CurpConfig:
    """Traditional synchronous primary-backup ('Original RAMCloud')."""
    overrides["f"] = f
    overrides["mode"] = ReplicationMode.SYNC
    return CurpConfig(**overrides)


def async_replication_config(f: int = 3, **overrides) -> CurpConfig:
    """Asynchronous replication without witnesses (Figure 6 'Async')."""
    overrides["f"] = f
    overrides["mode"] = ReplicationMode.ASYNC
    overrides.setdefault("min_sync_batch", 50)
    return CurpConfig(**overrides)


def curp_config(f: int = 3, **overrides) -> CurpConfig:
    """CURP with f backups and f witnesses (the paper's system)."""
    overrides["f"] = f
    overrides["mode"] = ReplicationMode.CURP
    overrides.setdefault("min_sync_batch", 50)
    return CurpConfig(**overrides)
