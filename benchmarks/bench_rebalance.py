"""Load-driven rebalancing: skewed-workload throughput, on vs off.

The paper evaluates under YCSB zipfian skew (θ=0.99, §5.3); at cluster
scale that skew concentrates on whichever shard the hot key-hash head
lands in, and the hot master's dispatch thread caps *aggregate*
throughput at roughly capacity / hot-share while the other masters
idle.  The rebalancer closes the loop: per-tablet load windows pulled
from the masters, the hot tablet split at a load-weighted hash point,
and the split-off half migrated to the coldest master — after which
the same offered load spreads over all shards.

``item_count=1975`` is chosen deliberately: the zipfian head's
scrambled placement puts ≈48% of the offered load on one of the four
even tablets (``shard_load_profile`` computes this in closed form), so
the rebalancing-off run is firmly hot-shard-bound.

Acceptance (ISSUE 5): aggregate throughput ≥ 1.5x with rebalancing on
vs off at zipfian θ=0.99 on 4 shards; the balanced run's hottest
per-shard share must drop below 0.32 (from ≈0.48).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.baselines import curp_config
from repro.core.config import StorageProfile
from repro.harness.builder import build_cluster
from repro.harness.profiles import RAMCLOUD_PROFILE
from repro.metrics import format_table
from repro.workload import run_sharded_ycsb, shard_load_profile
from repro.workload.ycsb import YcsbWorkload

#: zipfian θ=0.99 writes whose hot head lands ~48% of offered load on
#: one of four even tablets (see module docstring)
SKEWED_WORKLOAD = YcsbWorkload(name="skewed-writes", read_fraction=0.0,
                               item_count=1975, value_size=100,
                               theta=0.99)

#: the modeled segment-transfer cost of a migration (PR 7 follow-on):
#: each moved entry charges ``migrate_entry_time`` on the source's
#: disk, so the speedup below is measured net of what rebalancing pays
#: to move the data — not against a free-migration fantasy.  The other
#: storage knobs stay off to keep the write path itself unchanged.
MIGRATE_STORAGE = StorageProfile(enabled=True, migrate_entry_time=0.5,
                                 append_time=0.0, rotation_time=0.0,
                                 read_entry_time=0.0)


def rebalance_comparison(n_shards=4, n_clients=40, duration=3_000.0,
                         warmup=2_500.0, seed=7,
                         rebalance_interval=300.0,
                         rebalance_threshold=1.2,
                         rebalance_min_ops=200) -> dict:
    """Run the skewed workload twice — static tablets vs rebalancer on
    — and report aggregate + per-shard numbers for both.

    ``warmup`` is long enough for several rebalance rounds, so the
    measured window compares steady states: the static even split vs
    the converged post-migration placement.  Virtual-time results are
    deterministic per seed.
    """
    out: dict = {}
    for label, enabled in (("off", False), ("on", True)):
        cluster = build_cluster(
            curp_config(3, max_gc_batch=256, gc_flush_delay=1_000.0,
                        storage=MIGRATE_STORAGE),
            profile=RAMCLOUD_PROFILE, n_masters=n_shards, seed=seed)
        if label == "off":
            out["offered_shares"] = shard_load_profile(
                SKEWED_WORKLOAD, cluster.shard_map)
        if enabled:
            cluster.start_rebalancer(interval=rebalance_interval,
                                     threshold=rebalance_threshold,
                                     min_ops=rebalance_min_ops)
        result = run_sharded_ycsb(cluster, SKEWED_WORKLOAD,
                                  n_clients=n_clients, duration=duration,
                                  warmup=warmup)
        point = {
            "throughput": result["throughput"],
            "operations": result["operations"],
            "per_shard": result["per_shard"],
            "max_share": max(d["share"]
                             for d in result["per_shard"].values()),
            "tablets": len(cluster.shard_map.tablets()),
        }
        if enabled:
            stats = cluster.rebalancer.stats
            point.update(splits=stats.splits, migrations=stats.migrations,
                         keys_moved=stats.keys_moved,
                         rounds=stats.rounds)
        out[label] = point
    out["speedup"] = out["on"]["throughput"] / out["off"]["throughput"]
    return out


def test_rebalance_skewed_throughput(benchmark, scale):
    duration = 3_000.0 * min(scale, 4)

    def experiment():
        return rebalance_comparison(duration=duration)

    series = run_once(benchmark, experiment)

    rows = []
    for label in ("off", "on"):
        point = series[label]
        for shard, detail in point["per_shard"].items():
            rows.append([label, shard, detail["operations"],
                         round(detail["share"], 3),
                         round(detail["write"]["median"], 1),
                         round(detail["write"]["p99"], 1)])
    print()
    print(format_table(
        ["rebalance", "shard", "ops", "share", "write p50 µs",
         "write p99 µs"], rows,
        title="Skewed YCSB (zipfian θ=0.99, 4 shards) — per-shard load"))
    print(format_table(
        ["rebalance", "agg ops/s", "max share", "tablets", "splits",
         "migrations"],
        [["off", round(series["off"]["throughput"]),
          round(series["off"]["max_share"], 3),
          series["off"]["tablets"], 0, 0],
         ["on", round(series["on"]["throughput"]),
          round(series["on"]["max_share"], 3),
          series["on"]["tablets"], series["on"]["splits"],
          series["on"]["migrations"]]],
        title=f"Rebalancing on vs off — {series['speedup']:.2f}x aggregate"))

    # ISSUE 5 acceptance: ≥ 1.5x aggregate throughput, and the
    # balanced run actually balanced (hottest shard below 0.32 from
    # the offered ~0.48).
    assert series["speedup"] >= 1.5, \
        f"rebalancing speedup only {series['speedup']:.2f}x"
    assert series["on"]["max_share"] < 0.32, \
        f"hot share still {series['on']['max_share']:.2f} after rebalance"
    assert series["on"]["migrations"] >= 1
    offered_hot = max(series["offered_shares"].values())
    assert offered_hot >= 0.4, \
        "workload lost its skew — the bench no longer measures anything"
    benchmark.extra_info["speedup"] = series["speedup"]
    benchmark.extra_info["max_share_on"] = series["on"]["max_share"]
