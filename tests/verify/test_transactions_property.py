"""Property test (ISSUE 10 satellite): random interleavings of single-
and cross-shard transactions over random key→shard layouts are always
linearizable and never commit a torn multi-shard write.

Hypothesis draws the layout (shard count and which keys the programs
touch — key→shard assignment falls out of the hash ring, so varying
the key pool varies the layout), a program per client (a mix of plain
writes, plain reads, and multi-key cross-shard transactions), and the
think-time between steps.  The whole run is deterministic: the only
randomness is hypothesis's, so every falsifying example replays
exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import ClientGaveUp
from repro.core.config import CurpConfig, ReplicationMode
from repro.core.transactions import (
    TransactionAborted,
    TransactionInDoubt,
    _abort_backoff,
)
from repro.harness import build_cluster
from repro.kvstore import Write
from repro.verify import (
    History,
    HistoryClient,
    RecordedCrossShardTransaction,
    TxnTrace,
    audit_atomicity,
    check_linearizable,
)

KEY_POOL = [f"pk{i}" for i in range(12)]

# One program step: a plain write, a plain read, or a cross-shard
# transaction over 2-3 distinct keys (distinct shards not required —
# whether a transaction actually spans shards is part of the drawn
# layout).
plain_write = st.tuples(st.just("write"), st.sampled_from(KEY_POOL))
plain_read = st.tuples(st.just("read"), st.sampled_from(KEY_POOL))
txn_step = st.tuples(
    st.just("txn"),
    st.lists(st.sampled_from(KEY_POOL), min_size=2, max_size=3,
             unique=True))
program = st.lists(st.one_of(plain_write, plain_read, txn_step),
                   min_size=1, max_size=6)


@given(
    n_masters=st.integers(min_value=1, max_value=3),
    programs=st.lists(program, min_size=1, max_size=3),
    think=st.integers(min_value=0, max_value=120),
)
@settings(max_examples=40, deadline=None)
def test_random_interleavings_stay_linearizable_and_atomic(
        n_masters, programs, think):
    config = CurpConfig(f=3, mode=ReplicationMode.CURP, min_sync_batch=8,
                        idle_sync_delay=100.0, retry_backoff=10.0,
                        rpc_timeout=300.0, max_attempts=50)
    cluster = build_cluster(config, n_masters=n_masters)
    history = History()
    traces: list[TxnTrace] = []
    processes = []
    for index, steps in enumerate(programs):
        client = cluster.new_client(collect_outcomes=False)
        recorded = HistoryClient(client, history)

        def script(client=client, recorded=recorded, index=index,
                   steps=steps):
            for op_number, (kind, arg) in enumerate(steps):
                if kind == "write":
                    yield from recorded.update(
                        Write(arg, f"c{index}-{op_number}"))
                elif kind == "read":
                    yield from recorded.read(arg)
                else:
                    base = f"t{index}-{op_number}"
                    for attempt in range(30):
                        txn = RecordedCrossShardTransaction(
                            client, history, ordered=attempt > 0)
                        for j, key in enumerate(arg):
                            txn.write(key, f"{base}-{j}")
                        try:
                            yield from txn.commit()
                            traces.append(TxnTrace(txn, "committed"))
                            break
                        except TransactionInDoubt:
                            traces.append(TxnTrace(txn, "unknown"))
                            break
                        except ClientGaveUp:
                            traces.append(TxnTrace(txn, "aborted"))
                            break
                        except TransactionAborted:
                            traces.append(TxnTrace(txn, "aborted"))
                            yield from _abort_backoff(client, attempt)
                if think:
                    yield cluster.sim.timeout(float(think))
        processes.append(client.host.spawn(script(), name=f"prog{index}"))

    deadline = cluster.sim.now + 10_000_000.0
    while not all(p.triggered for p in processes):
        if cluster.sim.now > deadline or not cluster.sim.step():
            break
    assert all(p.triggered for p in processes), "a program got stuck"
    # No fault injection: every transaction must resolve one way or the
    # other, and the committed ones must not be torn.
    assert all(t.status in ("committed", "aborted") for t in traces)
    check_linearizable(history)
    assert audit_atomicity(traces) == []
