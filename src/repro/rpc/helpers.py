"""Client-side RPC helpers."""

from __future__ import annotations

import random
import typing

from repro.rpc.errors import RpcError, RpcTimeout
from repro.rpc.transport import RpcTransport
from repro.sim.events import Event


def backoff_delay(attempt: int, base: float, cap: float,
                  rng: random.Random) -> float:
    """Bounded exponential backoff with equal jitter.

    ``attempt`` is 0-indexed: the span doubles per attempt from
    ``base`` up to ``cap``, and the returned delay is uniform in
    [span/2, span) — half deterministic spacing, half jitter, so a
    burst of clients that failed at the same instant desynchronizes
    instead of retrying in lockstep (the retry-storm amplifier).
    Draws exactly one number from ``rng`` (callers on the retry path
    only, so traces without failures never see the draw).
    """
    if base <= 0:
        return 0.0
    span = min(cap, base * (2 ** min(attempt, 62)))
    return span / 2 + rng.random() * (span / 2)


def call_with_retry(transport: RpcTransport, dst: str, method: str,
                    args: typing.Any = None, timeout: float = 1000.0,
                    max_attempts: int = 10,
                    backoff: float = 0.0) -> typing.Generator[Event, typing.Any, typing.Any]:
    """``yield from`` helper: retry a call until it gets a response.

    Only retries on :class:`RpcTimeout`; application errors propagate
    immediately (the caller must handle e.g. WRONG_WITNESS_VERSION with
    its own logic, not a blind retry).  Raises the last timeout after
    ``max_attempts``.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
    last: RpcError | None = None
    for attempt in range(max_attempts):
        try:
            value = yield transport.call(dst, method, args, timeout=timeout)
            return value
        except RpcTimeout as error:
            last = error
            if backoff > 0 and attempt < max_attempts - 1:
                yield transport.sim.timeout(backoff * (attempt + 1))
    assert last is not None
    raise last
