"""Linearizability of the CURP-Redis instantiation (§5.4).

Same methodology as the kvstore suite: concurrent clients, crash +
recovery (AOF replay + witness replay), Wing–Gong check.  The
non-durable baseline is the negative control: it loses acknowledged
SETs on a crash.
"""

from __future__ import annotations

import pytest

from repro.harness.redis import build_redis_cluster
from repro.redislike.server import DurabilityMode
from repro.sim.distributions import Fixed
from repro.verify import (
    CounterModel,
    History,
    LinearizabilityError,
    check_linearizable,
)


class RedisHistoryClient:
    """Records SET/GET/INCR operations into a verify.History."""

    def __init__(self, client, history: History):
        self.client = client
        self.history = history
        self.sim = client.sim

    def set(self, key, value):
        record = self.history.begin(self.client.tracker.client_id, key,
                                    "write", value, self.sim.now)
        outcome = yield from self.client.set(key, value)
        self.history.complete(record, value, self.sim.now)
        return outcome

    def get(self, key):
        record = self.history.begin(self.client.tracker.client_id, key,
                                    "read", None, self.sim.now)
        outcome = yield from self.client.get(key)
        self.history.complete(record, outcome.result, self.sim.now)
        return outcome

    def incr(self, key):
        record = self.history.begin(self.client.tracker.client_id, key,
                                    "increment", 1, self.sim.now)
        outcome = yield from self.client.incr(key)
        self.history.complete(record, int(outcome.result), self.sim.now)
        return outcome


@pytest.mark.parametrize("seed", [1, 2])
def test_concurrent_redis_clients_linearizable(seed):
    cluster = build_redis_cluster(DurabilityMode.CURP, n_witnesses=2,
                                  fsync_duration=Fixed(70.0), seed=seed,
                                  curp_fsync_batch=5)
    history = History()
    keys = ["a", "b"]
    processes = []
    for index in range(3):
        client = RedisHistoryClient(
            cluster.new_client(collect_outcomes=False), history)

        def script(client=client, index=index):
            rng = cluster.sim.rng
            for op_number in range(15):
                key = keys[rng.randrange(len(keys))]
                if rng.random() < 0.5:
                    yield from client.set(key, f"c{index}-{op_number}")
                else:
                    yield from client.get(key)
        processes.append(client.client.host.spawn(script(), name="load"))
    cluster.run(cluster.sim.all_of(processes), timeout=1e9)
    check_linearizable(history)


def test_redis_crash_recovery_preserves_history():
    """Acknowledged fast-path SETs + crash + AOF/witness recovery: the
    full history (including post-recovery reads) is linearizable."""
    cluster = build_redis_cluster(DurabilityMode.CURP, n_witnesses=1,
                                  fsync_duration=Fixed(70.0),
                                  curp_fsync_batch=100)
    history = History()
    client = RedisHistoryClient(cluster.new_client(collect_outcomes=False),
                                history)

    def phase1():
        for i in range(6):
            yield from client.set(f"k{i}", f"v{i}")
    cluster.run(cluster.sim.process(phase1()), timeout=1e9)
    assert cluster.server.aof.durable_seq == 0  # all speculative
    cluster.server.host.crash()
    cluster.server.host.restart()
    cluster.run(cluster.sim.process(cluster.server.recover()), timeout=1e9)

    def phase2():
        for i in range(6):
            yield from client.get(f"k{i}")
    cluster.run(cluster.sim.process(phase2()), timeout=1e9)
    check_linearizable(history)


def test_redis_increments_exactly_once_across_crash():
    cluster = build_redis_cluster(DurabilityMode.CURP, n_witnesses=1,
                                  fsync_duration=Fixed(70.0),
                                  curp_fsync_batch=3)
    history = History()
    client = RedisHistoryClient(cluster.new_client(collect_outcomes=False),
                                history)

    def load():
        for _ in range(7):
            yield from client.incr("counter")
    cluster.run(cluster.sim.process(load()), timeout=1e9)
    cluster.server.host.crash()
    cluster.server.host.restart()
    cluster.run(cluster.sim.process(cluster.server.recover()), timeout=1e9)

    def verify():
        yield from client.get("counter")
    cluster.run(cluster.sim.process(verify()), timeout=1e9)
    # GET returns a string; normalize for the counter model.
    for record in history.records:
        if record.kind == "read" and record.result is not None:
            record.result = int(record.result)
    check_linearizable(history, model=CounterModel)


def test_nondurable_redis_negative_control():
    """Stock Redis loses acknowledged writes on crash — the checker
    must reject the history (and does not for CURP, above)."""
    cluster = build_redis_cluster(DurabilityMode.NONDURABLE,
                                  fsync_duration=Fixed(70.0))
    history = History()
    client = RedisHistoryClient(cluster.new_client(collect_outcomes=False),
                                history)

    def phase1():
        yield from client.set("x", "precious")
    cluster.run(cluster.sim.process(phase1()), timeout=1e9)
    cluster.server.host.crash()
    cluster.server.host.restart()
    cluster.run(cluster.sim.process(cluster.server.recover()), timeout=1e9)

    def phase2():
        yield from client.get("x")
    cluster.run(cluster.sim.process(phase2()), timeout=1e9)
    with pytest.raises(LinearizabilityError):
        check_linearizable(history)
