"""Unit tests for RPC retry helpers."""

from __future__ import annotations

import pytest

from repro.net import Network
from repro.rpc import AppError, RpcTimeout, RpcTransport, call_with_retry
from repro.sim import Simulator


def test_retry_eventually_succeeds(sim: Simulator, network: Network):
    client = RpcTransport(network.add_host("client"))
    server = RpcTransport(network.add_host("server"))
    attempts = []
    def flaky(args, ctx):
        attempts.append(sim.now)
        if len(attempts) < 3:
            def stall():
                yield sim.timeout(1000.0)
            return stall()  # never answers in time
        return "finally"
    server.register("op", flaky)
    def caller():
        value = yield from call_with_retry(client, "server", "op",
                                           timeout=20.0, max_attempts=5)
        return value
    assert sim.run(sim.process(caller())) == "finally"
    assert len(attempts) == 3


def test_retry_gives_up_after_max_attempts(sim: Simulator, network: Network):
    client = RpcTransport(network.add_host("client"))
    network.add_host("server")  # host exists but no transport/handler
    def caller():
        yield from call_with_retry(client, "server", "op",
                                   timeout=5.0, max_attempts=3)
    with pytest.raises(RpcTimeout):
        sim.run(sim.process(caller()))


def test_app_errors_do_not_retry(sim: Simulator, network: Network):
    client = RpcTransport(network.add_host("client"))
    server = RpcTransport(network.add_host("server"))
    calls = []
    def handler(args, ctx):
        calls.append(1)
        raise AppError("NOT_OWNER")
    server.register("op", handler)
    def caller():
        yield from call_with_retry(client, "server", "op",
                                   timeout=5.0, max_attempts=5)
    with pytest.raises(AppError):
        sim.run(sim.process(caller()))
    assert len(calls) == 1


def test_backoff_spaces_attempts(sim: Simulator, network: Network):
    client = RpcTransport(network.add_host("client"))
    network.add_host("server")
    def caller():
        try:
            yield from call_with_retry(client, "server", "op", timeout=10.0,
                                       max_attempts=3, backoff=100.0)
        except RpcTimeout:
            return sim.now
    # attempts at 0, 110 (10 timeout + 100), 320 (110+10+200); fails at 330
    assert sim.run(sim.process(caller())) == 330.0


def test_invalid_max_attempts(sim: Simulator, network: Network):
    client = RpcTransport(network.add_host("client"))
    def caller():
        yield from call_with_retry(client, "server", "op", max_attempts=0)
    with pytest.raises(ValueError):
        sim.run(sim.process(caller()))
