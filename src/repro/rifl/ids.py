"""Unique RPC identifiers."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, order=True)
class RpcId:
    """Identifies one linearizable RPC, globally and forever.

    ``client_id`` is allocated by the lease server; ``seq`` increases by
    one per update RPC issued by that client.  Ordering (lexicographic)
    is meaningful only within one client.
    """

    client_id: int
    seq: int

    def __str__(self) -> str:
        return f"{self.client_id}.{self.seq}"
