"""The CURP client (§3.2.1) — where the 1 RTT happens.

For an update the client *concurrently*:

- sends the update RPC to the master, and
- sends ``record`` RPCs to all f witnesses.

It then waits for everything and decides:

- master replied ``synced=True`` → complete (the master hit a conflict
  and synced; witness outcomes don't matter, §3.2.3);
- master replied speculative and **all f witnesses accepted** →
  complete — the 1 RTT fast path;
- any witness rejected / timed out → send a ``sync`` RPC and wait —
  the 2-3 RTT slow path;
- master timed out / errored → refresh the cluster view from the
  coordinator and retry the *same* RpcId (RIFL makes the retry safe,
  §3.3);
- master replied ``WRONG_SHARD`` → the client's shard map is stale
  (the key's tablet migrated): gc the witness records the wasted
  attempt left on the old shard (nothing else can ever reclaim them),
  refetch the map from the coordinator and retry immediately, with no
  backoff — one extra coordinator round trip on top of the wasted
  attempt.

The same class drives the paper's baselines: in SYNC / ASYNC /
UNREPLICATED modes no witnesses are used and completion follows the
master's reply alone.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.config import CurpConfig, ReplicationMode
from repro.core.messages import (
    BackupReadArgs,
    ClusterView,
    GcArgs,
    MasterInfo,
    ProbeArgs,
    PROBE_COMMUTE,
    ReadArgs,
    RECORD_ACCEPTED,
    RecordArgs,
    RecordedRequest,
    RETRY_LATER,
    UpdateArgs,
    UpdateReply,
)
from repro.kvstore.hashing import key_hash
from repro.kvstore.operations import Operation
from repro.rifl import RiflClientTracker
from repro.rpc import AppError, RpcError, RpcTimeout, RpcTransport
from repro.rpc.helpers import backoff_delay
from repro.sim.events import AllOf, QuorumEvent

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class ClientGaveUp(Exception):
    """Raised when an operation exhausted ``config.max_attempts``."""


@dataclasses.dataclass
class UpdateOutcome:
    """What one completed update looked like from the client."""

    result: typing.Any
    #: True = completed in 1 RTT via witnesses (or without durability in
    #: ASYNC/UNREPLICATED modes)
    fast_path: bool
    #: True = master synced before replying (conflict path)
    synced_by_master: bool
    #: True = client had to issue a separate sync RPC
    sync_rpc_needed: bool
    attempts: int
    latency: float


class CurpClient:
    """One application client."""

    #: test hook (tests/sim/test_scheduler_determinism.py): swap the
    #: cold-path AllOf join for a watch-mode QuorumEvent — dispatch
    #: sequences must stay identical.
    join_with_quorum = False

    def __init__(self, host: "Host", config: CurpConfig,
                 coordinator: str | None = None,
                 collect_outcomes: bool = True):
        self.host = host
        self.sim = host.sim
        self.config = config
        self.coordinator = coordinator
        self.transport = RpcTransport(host)
        self.tracker: RiflClientTracker | None = None
        self.view: ClusterView | None = None
        self.collect_outcomes = collect_outcomes
        self.outcomes: list[UpdateOutcome] = []
        # counters for throughput benches (cheap even when outcomes off)
        self.completed_updates = 0
        self.completed_reads = 0
        self.fast_path_updates = 0
        #: RETRY_LATER pushbacks seen (the backpressure drivers in
        #: workload/ read this to shrink their in-flight windows)
        self.pushbacks = 0

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------
    def connect(self):
        """Generator: obtain a client id (lease) and the cluster view.

        Retries on dropped/timed-out coordinator RPCs (a fresh
        ``register_client`` is issued per attempt; an orphaned id from
        a half-finished attempt simply lets its lease expire).
        """
        if self.coordinator is None:
            raise RuntimeError("connect() requires a coordinator address")
        last_error: Exception | None = None
        for _attempt in range(1, self.config.max_attempts + 1):
            try:
                client_id = yield self.transport.call(
                    self.coordinator, "register_client", None,
                    timeout=self.config.rpc_timeout)
                self.tracker = RiflClientTracker(client_id)
                yield from self._refresh_view()
                return client_id
            except RpcError as error:
                last_error = error
                if self.config.retry_backoff > 0:
                    yield self.sim.timeout(self.config.retry_backoff)
        raise ClientGaveUp(f"connect failed after "
                           f"{self.config.max_attempts} attempts: "
                           f"{last_error!r}")

    def attach(self, client_id: int, view: ClusterView) -> None:
        """Direct bootstrap for unit tests: skip the coordinator RPCs."""
        self.tracker = RiflClientTracker(client_id)
        self.view = view

    def _refresh_view(self):
        view = yield self.transport.call(
            self.coordinator, "get_config", None,
            timeout=self.config.rpc_timeout)
        self.view = view

    def _master_for(self, keys: typing.Sequence[str]) -> MasterInfo:
        assert self.view is not None, "client not connected"
        masters = {self.view.master_for_hash(key_hash(k)) for k in keys}
        if len(masters) != 1 or None in masters:
            raise ValueError(f"keys {keys!r} do not map to a single master")
        master_id = masters.pop()
        return self.view.masters[master_id]

    def group_by_shard(self, keys: typing.Iterable[str]) \
            -> dict[str, tuple[str, ...]]:
        """Partition keys by owning master under the current view
        (the cross-shard transaction fan-out, §B.2).  Raises KeyError
        for an unrouteable key — callers refresh the view and regroup."""
        assert self.view is not None, "client not connected"
        if self.view.shard_map is not None:
            return self.view.shard_map.group_keys(keys)
        groups: dict[str, list[str]] = {}
        for key in keys:
            owner = self.view.master_for_hash(key_hash(key))
            if owner is None:
                raise KeyError(f"key {key!r} routes to no master")
            groups.setdefault(owner, []).append(key)
        return {owner: tuple(ks) for owner, ks in groups.items()}

    # ------------------------------------------------------------------
    # update
    # ------------------------------------------------------------------
    def update(self, op: Operation, rpc_id=None):
        """Generator: perform a linearizable update; returns UpdateOutcome.

        ``rpc_id`` is normally allocated here; a cross-shard transaction
        passes ids pre-allocated by ``tracker.new_transaction`` so every
        participant shard's prepare is pinned to the same attempt (RIFL
        makes the per-shard retries exactly-once either way).
        """
        if not op.is_update:
            raise ValueError("use read() for read operations")
        assert self.tracker is not None, "client not connected"
        if rpc_id is None:
            rpc_id = self.tracker.new_rpc()
        started = self.sim.now
        last_error: Exception | None = None
        pushback_streak = 0
        for attempt in range(1, self.config.max_attempts + 1):
            master = self._master_for(op.touched_keys())
            args = UpdateArgs(op=op, rpc_id=rpc_id,
                              ack_seq=self.tracker.first_incomplete,
                              witness_list_version=master.witness_list_version)
            use_witnesses = (self.config.mode is ReplicationMode.CURP
                             and len(master.witnesses) > 0)
            witnesses = master.witnesses if use_witnesses else ()
            if self.config.fast_completion:
                status, payload, accepted_flags = (
                    yield from self._fanout_fast(master, args, op, rpc_id,
                                                 witnesses))
            else:
                status, payload, accepted_flags = (
                    yield from self._fanout_spawned(master, args, op, rpc_id,
                                                    witnesses))
            if status == "ok":
                reply: UpdateReply = payload
                accepted = all(accepted_flags)
                if reply.synced:
                    return self._complete(op, rpc_id, reply.result, started,
                                          attempt, fast=False, by_master=True,
                                          sync_rpc=False)
                if use_witnesses and accepted:
                    return self._complete(op, rpc_id, reply.result, started,
                                          attempt, fast=True, by_master=False,
                                          sync_rpc=False)
                if self.config.mode is not ReplicationMode.CURP:
                    # ASYNC / UNREPLICATED: complete on the master reply
                    # alone (no durability guarantee in ASYNC).
                    return self._complete(op, rpc_id, reply.result, started,
                                          attempt, fast=True, by_master=False,
                                          sync_rpc=False)
                # CURP with a rejected/empty witness set: durability must
                # come from a backup sync (§3.2.1).
                # Slow path (§3.2.1): ask the master to sync.
                try:
                    yield self.transport.call(master.host, "sync", None,
                                              timeout=self.config.rpc_timeout)
                    return self._complete(op, rpc_id, reply.result, started,
                                          attempt, fast=False, by_master=False,
                                          sync_rpc=True)
                except (AppError, RpcTimeout) as error:
                    # Master crashed/deposed before the sync: restart the
                    # whole operation (same RpcId).
                    last_error = error
            elif status == "app":
                error: AppError = payload
                last_error = error
                if error.code == "STALE_RPC":  # pragma: no cover - guard
                    raise error
                if error.code == RETRY_LATER:
                    # Admission-control pushback (§overload): the
                    # master's bounded queue is full.  Back off by its
                    # hint — grown exponentially per consecutive
                    # pushback and jittered so a shed flash crowd
                    # doesn't retry in lockstep — and *without*
                    # refreshing the cluster view: overload is not a
                    # routing problem, and a coordinator round trip
                    # per shed attempt would move the collapse there.
                    self.pushbacks += 1
                    yield self.sim.timeout(
                        self._pushback_delay(error, pushback_streak))
                    pushback_streak += 1
                    continue
                if error.code == "WRONG_SHARD":
                    # Stale shard map: the key migrated to another
                    # master.  Refetch routing from the coordinator and
                    # retry immediately — no backoff; the extra cost is
                    # one coordinator round trip.  First free any
                    # witness slots our concurrent records claimed on
                    # the old shard: this master will never execute the
                    # op (so never gc them) and the key's hash no
                    # longer routes here (so the §4.5 suspect path can
                    # never reclaim them either).
                    accepted = [witness for witness, ok
                                in zip(witnesses, accepted_flags)
                                if ok]
                    self._abort_records(master.master_id, accepted,
                                        op, rpc_id)
                    yield from self._refresh_routing()
                    continue
            else:  # timeout
                last_error = payload
            pushback_streak = 0
            yield from self._recover_attempt()
        raise ClientGaveUp(
            f"update {op!r} failed after {self.config.max_attempts} "
            f"attempts: {last_error!r}")

    def _pushback_delay(self, error: AppError, streak: int) -> float:
        """Delay for the ``streak``-th consecutive RETRY_LATER: the
        master's ``retry_after`` hint, doubled per consecutive pushback
        up to ``overload.retry_after_cap``, equal-jittered via
        ``sim.rng``.  Only ever called on a pushback, so runs without
        defenses draw nothing from the rng stream."""
        overload = self.config.overload
        hint = None
        if isinstance(error.info, dict):
            hint = error.info.get("retry_after")
        base = hint or overload.retry_after
        return backoff_delay(streak, base, overload.retry_after_cap,
                             self.sim.rng)

    # ------------------------------------------------------------------
    # the 1 + f fan-out (§3.2.1)
    # ------------------------------------------------------------------
    def _fanout_fast(self, master: MasterInfo, args: UpdateArgs,
                     op: Operation, rpc_id,
                     witnesses: typing.Sequence[str]):
        """Generator: issue update + records via the callback fast path.

        One slotted :class:`QuorumEvent` per update; completions land in
        its pre-sized results list straight from response delivery — no
        wrapper process or per-call event (docs/PERFORMANCE.md).
        Returns ``(status, payload, accepted_flags)`` exactly like
        :meth:`_fanout_spawned`.
        """
        timeout = self.config.rpc_timeout
        quorum = QuorumEvent(self.sim, 1 + len(witnesses))
        # Fire the update RPC first, then the witness records: all
        # leave through the client NIC back to back (§3.2.1).  Under
        # config.frame_coalescing this fan-out is the primary frame
        # producer: a client with several updates in flight at one
        # instant lands them in one frame per destination.
        self.transport.call_cb(master.host, "update", args,
                               quorum.child_result, 0, timeout=timeout)
        if witnesses:
            record = RecordArgs(
                master_id=master.master_id,
                key_hashes=op.key_hashes(), rpc_id=rpc_id,
                request=RecordedRequest(op=op, rpc_id=rpc_id))
            for index, witness in enumerate(witnesses):
                self.transport.call_cb(witness, "record", record,
                                       quorum.child_result, 1 + index,
                                       timeout=timeout)
        results = yield quorum
        reply = results[0]
        if isinstance(reply, AppError):
            status, payload = "app", reply
        elif isinstance(reply, BaseException):
            status, payload = "timeout", reply
        else:
            status, payload = "ok", reply
        accepted_flags = [value == RECORD_ACCEPTED for value in results[1:]]
        return status, payload, accepted_flags

    def _fanout_spawned(self, master: MasterInfo, args: UpdateArgs,
                        op: Operation, rpc_id,
                        witnesses: typing.Sequence[str]):
        """Generator: the legacy fan-out — one wrapper process per call,
        joined by :meth:`_join_values`.  Dispatch-for-dispatch identical
        to the seed client (the golden trace pins it)."""
        # Fire the update RPC first, then the witness records: all
        # leave through the client NIC back to back (§3.2.1).
        master_call = self.host.spawn(
            self._call_master(master.host, args), name="update-rpc")
        record_calls = []
        if witnesses:
            record = RecordArgs(
                master_id=master.master_id,
                key_hashes=op.key_hashes(), rpc_id=rpc_id,
                request=RecordedRequest(op=op, rpc_id=rpc_id))
            # A record carries the whole request (op + value), so
            # it is roughly update-RPC-sized on the wire (§5.2).
            record_calls = [
                self.host.spawn(self._record_on(witness, record),
                                name="record-rpc")
                for witness in witnesses]
        values = yield from self._join_values([master_call] + record_calls)
        status, payload = values[0]
        return status, payload, values[1:]

    def _join_values(self, events):
        """Generator: wait for all of ``events``; values positionally.

        The cold-path join.  ``CurpClient.join_with_quorum`` swaps the
        ``AllOf`` combinator for a watch-mode :class:`QuorumEvent`;
        the two must produce identical dispatch sequences
        (tests/sim/test_scheduler_determinism.py pins this).
        """
        if CurpClient.join_with_quorum:
            quorum = QuorumEvent(self.sim, len(events))
            for event in events:
                quorum.watch(event)
            values = yield quorum
            return values
        results = yield AllOf(self.sim, events)
        return [results[event] for event in events]

    def _call_master(self, master_host: str, args: UpdateArgs):
        try:
            reply = yield self.transport.call(
                master_host, "update", args, timeout=self.config.rpc_timeout)
            return "ok", reply
        except AppError as error:
            return "app", error
        except RpcError as error:
            return "timeout", error

    def _record_on(self, witness: str, args: RecordArgs):
        """Record on one witness; False on rejection OR timeout."""
        try:
            result = yield self.transport.call(
                witness, "record", args, timeout=self.config.rpc_timeout)
            return result == RECORD_ACCEPTED
        except RpcError:
            return False

    def _abort_records(self, master_id: str,
                       witnesses: typing.Sequence[str], op: Operation,
                       rpc_id) -> None:
        """Fire-and-forget gc of our own records after an abandoned,
        mis-routed attempt (the retry goes to a different master)."""
        if not witnesses:
            return
        pairs = tuple((key_hash_value, rpc_id)
                      for key_hash_value in op.key_hashes())
        args = GcArgs(master_id=master_id, pairs=pairs)
        for witness in witnesses:
            self.host.spawn(self._gc_quietly(witness, args),
                            name="abort-record-gc")

    def _gc_quietly(self, witness: str, args: GcArgs):
        try:
            yield self.transport.call(witness, "gc", args,
                                      timeout=self.config.rpc_timeout)
        except RpcError:
            pass  # witness reset/down: its slots were cleared anyway

    def _recover_attempt(self):
        """Between attempts: small backoff, then refresh configuration."""
        if self.config.retry_backoff > 0:
            yield self.sim.timeout(self.config.retry_backoff)
        yield from self._refresh_routing()

    def _refresh_routing(self):
        """Refetch the cluster view (shard map included) — no backoff."""
        if self.coordinator is not None:
            try:
                yield from self._refresh_view()
            except RpcError:
                pass  # coordinator briefly unreachable; retry with old view

    def _complete(self, op: Operation, rpc_id, result, started: float,
                  attempts: int, fast: bool, by_master: bool,
                  sync_rpc: bool) -> UpdateOutcome:
        self.tracker.completed(rpc_id)
        outcome = UpdateOutcome(
            result=result, fast_path=fast, synced_by_master=by_master,
            sync_rpc_needed=sync_rpc, attempts=attempts,
            latency=self.sim.now - started)
        self.completed_updates += 1
        if fast:
            self.fast_path_updates += 1
        if self.collect_outcomes:
            self.outcomes.append(outcome)
        return outcome

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, key: str, for_update: bool = False):
        """Generator: linearizable read from the master.

        ``for_update=True`` is the §A.3 fast path for reads preparing a
        conditional update: the master may return an unsynced value
        without waiting for its durability, because the commit's
        version check revalidates it.
        """
        value, _version = yield from self.read_versioned(
            key, for_update=for_update)
        return value

    def read_versioned(self, key: str, for_update: bool = False):
        """Generator: read (value, version) — the transaction read set."""
        started = self.sim.now
        last_error: Exception | None = None
        pushback_streak = 0
        for _attempt in range(1, self.config.max_attempts + 1):
            master = self._master_for((key,))
            try:
                value, version = yield self.transport.call(
                    master.host, "read",
                    ReadArgs(key=key, allow_unsynced=for_update,
                             return_version=True),
                    timeout=self.config.rpc_timeout)
                self.completed_reads += 1
                self.last_read_latency = self.sim.now - started
                return value, version
            except (AppError, RpcTimeout) as error:
                last_error = error
                if isinstance(error, AppError) and error.code == "WRONG_SHARD":
                    yield from self._refresh_routing()
                    continue
                if isinstance(error, AppError) and error.code == RETRY_LATER:
                    # Same pushback contract as updates: back off by
                    # the hint, no view refresh.
                    self.pushbacks += 1
                    yield self.sim.timeout(
                        self._pushback_delay(error, pushback_streak))
                    pushback_streak += 1
                    continue
            pushback_streak = 0
            yield from self._recover_attempt()
        raise ClientGaveUp(f"read {key!r} failed: {last_error!r}")

    def read_nearby(self, key: str, backup: str, witness: str):
        """Generator: §A.1 consistent read from a (nearby) backup.

        Probes the witness for commutativity concurrently with reading
        the backup; if the witness holds no record touching the key, the
        backup's value is guaranteed fresh (every completed update is
        either synced to *all* backups or recorded on *all* witnesses).
        Otherwise falls back to a master read.
        """
        assert self.view is not None, "client not connected"
        master = self._master_for((key,))
        probe = ProbeArgs(master_id=master.master_id,
                          key_hashes=(key_hash(key),))
        if self.config.fast_completion:
            quorum = QuorumEvent(self.sim, 2)
            self.transport.call_cb(witness, "probe", probe,
                                   quorum.child_result, 0,
                                   timeout=self.config.rpc_timeout)
            self.transport.call_cb(backup, "backup_read",
                                   BackupReadArgs(key=key),
                                   quorum.child_result, 1,
                                   timeout=self.config.rpc_timeout)
            results = yield quorum
            commutes = results[0] == PROBE_COMMUTE
            backup_ok = not isinstance(results[1], BaseException)
            value = results[1] if backup_ok else None
        else:
            probe_call = self.host.spawn(
                self._probe_witness(witness, probe), name="probe")
            read_call = self.host.spawn(
                self._read_backup(backup, key), name="backup-read")
            values = yield from self._join_values([probe_call, read_call])
            commutes = values[0]
            backup_ok, value = values[1]
        if commutes and backup_ok:
            self.completed_reads += 1
            return value
        value = yield from self.read(key)
        return value

    def _probe_witness(self, witness: str, args: ProbeArgs):
        try:
            result = yield self.transport.call(
                witness, "probe", args, timeout=self.config.rpc_timeout)
            return result == PROBE_COMMUTE
        except RpcError:
            return False

    def _read_backup(self, backup: str, key: str):
        try:
            value = yield self.transport.call(
                backup, "backup_read", BackupReadArgs(key=key),
                timeout=self.config.rpc_timeout)
            return True, value
        except RpcError:
            return False, None
