"""The Redis-like server: a single-threaded event loop.

The loop mirrors Redis's structure (§C.2): take everything waiting on
the sockets, execute it all, then — in DURABLE mode — issue **one**
fsync for the whole batch before replying to anyone.  That batching is
why Figure 9's durable line approaches the non-durable line at high
client counts, and why Figure 13 shows its latency growing linearly.

Modes:

- ``NONDURABLE`` — stock Redis: execute, reply, never fsync.
  Everything since the last OS flush dies with the process.
- ``DURABLE`` — fsync-always: the event loop blocks on one fsync per
  cycle; replies only after the batch is durable (2-100× latency).
- ``CURP`` — the paper's §5.4 system: execute, reply *immediately*
  (speculative), fsync in the background; clients record commands on
  witnesses in parallel.  Conflicting commands (touching a key whose
  last write is not yet durable) wait for durability and are tagged
  ``synced`` (§3.2.3); after each fsync the server garbage-collects
  the newly-durable commands from its witnesses (§3.5).
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.core.messages import GcArgs
from repro.kvstore.hashing import key_hash
from repro.redislike.aof import AppendOnlyFile, FsyncDevice
from repro.redislike.commands import Command, CommandError, execute
from repro.redislike.datastructures import RedisStore, WrongTypeError
from repro.rifl import DuplicateState, ResultRegistry
from repro.rpc import AppError, RpcError, RpcTransport

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class DurabilityMode(enum.Enum):
    NONDURABLE = "nondurable"
    DURABLE = "durable"
    CURP = "curp"


@dataclasses.dataclass(frozen=True)
class CommandArgs:
    """Client → server frame."""

    command: Command
    rpc_id: typing.Any = None
    ack_seq: int = 0


@dataclasses.dataclass(frozen=True)
class CommandReply:
    result: typing.Any
    #: True when the command was durable before this reply (§3.2.3 tag)
    synced: bool


@dataclasses.dataclass
class RedisStats:
    commands: int = 0
    writes: int = 0
    fsync_batches: int = 0
    conflict_waits: int = 0
    gc_rpcs: int = 0
    loop_cycles: int = 0


class RedisServer:
    """One Redis-like server instance."""

    def __init__(self, host: "Host", mode: DurabilityMode,
                 device: FsyncDevice | None = None,
                 witnesses: typing.Sequence[str] = (),
                 execute_time: float = 0.5,
                 curp_fsync_batch: int = 20,
                 curp_idle_fsync_delay: float = 200.0,
                 rpc_timeout: float = 2_000.0):
        self.host = host
        self.sim = host.sim
        self.mode = mode
        self.device = device or FsyncDevice(host)
        self.aof = AppendOnlyFile(host, self.device)
        self.store = RedisStore()
        self.registry = ResultRegistry()
        self.witnesses = list(witnesses)
        self.execute_time = execute_time
        self.curp_fsync_batch = curp_fsync_batch
        self.curp_idle_fsync_delay = curp_idle_fsync_delay
        self.rpc_timeout = rpc_timeout
        self.stats = RedisStats()
        #: last AOF seq that wrote each key (conflict detection, §4.3)
        self._key_last_seq: dict[str, int] = {}
        #: (seq, key_hash, rpc_id) awaiting witness gc once durable
        self._pending_gc: list[tuple[int, int, typing.Any]] = []
        self._queue: list[tuple[CommandArgs, typing.Any]] = []
        self._wakeup = None
        self._flush_armed = False
        self.master_id = f"redis:{host.name}"

        self.transport = RpcTransport(host)
        self.transport.register("command", self._handle_command)
        self.transport.register("sync", self._handle_sync)
        self.aof.on_durable.append(self._after_fsync)
        host.on_crash(self._on_crash)
        self._loop_process = host.spawn(self._event_loop(), name="event-loop")

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def _handle_command(self, args: CommandArgs, ctx):
        self._queue.append((args, ctx))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return RpcTransport.DEFERRED

    def _handle_sync(self, args, ctx):
        """CURP slow path: make everything appended so far durable."""
        def work():
            yield self.aof.request_durable(self.aof.end_seq)
            return "SYNCED"
        return work()

    # ------------------------------------------------------------------
    # the event loop (§C.2)
    # ------------------------------------------------------------------
    def _event_loop(self):
        while True:
            if not self._queue:
                self._wakeup = self.sim.event()
                yield self._wakeup
                self._wakeup = None
            batch, self._queue = self._queue, []
            self.stats.loop_cycles += 1
            replies: list[tuple[typing.Any, CommandReply | AppError]] = []
            deferred: list[tuple[typing.Any, int, typing.Any]] = []
            for args, ctx in batch:
                if self.execute_time > 0:
                    yield self.sim.timeout(self.execute_time)
                outcome = self._execute_one(args)
                if isinstance(outcome, _Deferred):
                    deferred.append((ctx, outcome.seq, outcome.reply))
                else:
                    replies.append((ctx, outcome))
            if self.mode is DurabilityMode.DURABLE and self.aof.end_seq \
                    > self.aof.durable_seq:
                # One fsync for the whole cycle — the §C.2 batching.
                self.stats.fsync_batches += 1
                yield self.aof.request_durable(self.aof.end_seq)
            for ctx, outcome in replies:
                if isinstance(outcome, AppError):
                    ctx.reply_error(outcome.code, outcome.info)
                else:
                    ctx.reply(outcome)
            for ctx, seq, reply in deferred:
                # Conflict path (CURP): reply once durable, off-loop.
                self.host.spawn(self._reply_when_durable(ctx, seq, reply),
                                name="conflict-reply")
            # CURP background durability scheduling.
            if self.mode is DurabilityMode.CURP:
                backlog = self.aof.end_seq - self.aof.durable_seq
                if backlog >= self.curp_fsync_batch:
                    self.aof.request_durable(self.aof.end_seq)
                elif backlog > 0:
                    self._arm_flush_timer()

    def _reply_when_durable(self, ctx, seq: int, reply: CommandReply):
        yield self.aof.request_durable(seq)
        ctx.reply(reply)

    # ------------------------------------------------------------------
    # command execution
    # ------------------------------------------------------------------
    def _execute_one(self, args: CommandArgs):
        command = args.command
        self.stats.commands += 1
        if args.rpc_id is not None:
            self.registry.process_ack(args.rpc_id.client_id, args.ack_seq)
            state, saved = self.registry.check(args.rpc_id)
            if state is DuplicateState.COMPLETED:
                record = self.registry.get(args.rpc_id)
                synced = (record is None
                          or record.log_position <= self.aof.durable_seq)
                return CommandReply(result=saved, synced=synced)
            if state is DuplicateState.STALE:
                return AppError("STALE_RPC", {"rpc_id": str(args.rpc_id)})
        try:
            if not command.is_write:
                # Reads of un-durable keys must wait (§3.2.3): same rule
                # as the kvstore master.
                if (self.mode is DurabilityMode.CURP
                        and self._key_last_seq.get(command.key, 0)
                        > self.aof.durable_seq):
                    self.stats.conflict_waits += 1
                    result = execute(self.store, command)
                    return _Deferred(
                        seq=self._key_last_seq[command.key],
                        reply=CommandReply(result=result, synced=True))
                result = execute(self.store, command)
                return CommandReply(result=result, synced=True)
            # Write command.
            self.stats.writes += 1
            conflict = (self.mode is DurabilityMode.CURP
                        and self._key_last_seq.get(command.key, 0)
                        > self.aof.durable_seq)
            result = execute(self.store, command)
            seq = self.aof.append(command, rpc_id=args.rpc_id, result=result)
            self._key_last_seq[command.key] = seq
            if args.rpc_id is not None:
                self.registry.record(args.rpc_id, result, log_position=seq)
                if self.mode is DurabilityMode.CURP and self.witnesses:
                    self._pending_gc.append(
                        (seq, key_hash(command.key), args.rpc_id))
            if self.mode is DurabilityMode.CURP and conflict:
                self.stats.conflict_waits += 1
                return _Deferred(seq=seq,
                                 reply=CommandReply(result=result, synced=True))
            synced = self.mode is DurabilityMode.DURABLE
            return CommandReply(result=result, synced=synced)
        except (CommandError, WrongTypeError) as error:
            return AppError("COMMAND_ERROR", str(error))

    # ------------------------------------------------------------------
    # CURP plumbing
    # ------------------------------------------------------------------
    def _arm_flush_timer(self) -> None:
        if self._flush_armed or not self.host.alive:
            return
        self._flush_armed = True
        incarnation = self.host.incarnation

        def check() -> None:
            self._flush_armed = False
            if not self.host.alive or self.host.incarnation != incarnation:
                return
            if self.aof.durable_seq < self.aof.end_seq:
                self.aof.request_durable(self.aof.end_seq)
        self.sim.schedule_callback(self.curp_idle_fsync_delay, check)

    def _after_fsync(self, durable_seq: int) -> None:
        """Garbage collect newly-durable commands from witnesses (§3.5)."""
        if self.mode is not DurabilityMode.CURP or not self.witnesses:
            return
        pairs = [(kh, rpc_id) for seq, kh, rpc_id in self._pending_gc
                 if seq <= durable_seq]
        self._pending_gc = [(seq, kh, rpc_id)
                            for seq, kh, rpc_id in self._pending_gc
                            if seq > durable_seq]
        if not pairs:
            return
        self.host.spawn(self._gc_witnesses(tuple(pairs)), name="witness-gc")

    def _gc_witnesses(self, pairs):
        args = GcArgs(master_id=self.master_id, pairs=pairs)
        for witness in self.witnesses:
            self.stats.gc_rpcs += 1
            try:
                stale = yield self.transport.call(witness, "gc", args,
                                                  timeout=self.rpc_timeout)
            except RpcError:
                continue
            for request in stale:
                self._retry_stale(request)

    def _retry_stale(self, request) -> None:
        """§4.5 for Redis: re-run an uncollected command through RIFL."""
        state, _ = self.registry.check(request.rpc_id)
        if state is DuplicateState.NEW:
            try:
                result = execute(self.store, request.op)
            except (CommandError, WrongTypeError):
                return
            seq = self.aof.append(request.op, rpc_id=request.rpc_id,
                                  result=result)
            self._key_last_seq[request.op.key] = seq
            self.registry.record(request.rpc_id, result, log_position=seq)
            self._pending_gc.append(
                (seq, key_hash(request.op.key), request.rpc_id))
            self._arm_flush_timer()
        else:
            self._pending_gc.append(
                (self.aof.durable_seq, key_hash(request.op.key),
                 request.rpc_id))

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def _on_crash(self) -> None:
        self._queue.clear()
        self._wakeup = None
        self._flush_armed = False
        # Volatile state dies; the AOF handles its own truncation.
        self.store = RedisStore()
        self.registry = ResultRegistry()
        self._key_last_seq.clear()
        self._pending_gc.clear()

    def recover(self, witnesses_for_replay: typing.Sequence[str] = ()):
        """Generator: restart-time recovery — replay the durable AOF,
        then replay witnesses (CURP mode), then fsync (§3.3 for the
        Redis instantiation).  Run after ``host.restart()``."""
        if not self.host.alive:
            raise RuntimeError("restart the host before recover()")
        for seq, command, rpc_id, result in self.aof.durable_entries():
            execute(self.store, command)
            self._key_last_seq[command.key] = seq
            if rpc_id is not None:
                self.registry.record(rpc_id, result, log_position=seq)
        replayed = 0
        if self.mode is DurabilityMode.CURP:
            from repro.core.messages import GetRecoveryDataArgs
            requests = None
            for witness in witnesses_for_replay or self.witnesses:
                try:
                    requests = yield self.transport.call(
                        witness, "get_recovery_data",
                        GetRecoveryDataArgs(master_id=self.master_id),
                        timeout=self.rpc_timeout)
                    break
                except RpcError:
                    continue
            if requests is None and (witnesses_for_replay or self.witnesses):
                raise RuntimeError("no witness reachable for replay")
            self.registry.begin_recovery()
            try:
                for request in requests or ():
                    state, _ = self.registry.check(request.rpc_id)
                    if state is not DuplicateState.NEW:
                        continue
                    result = execute(self.store, request.op)
                    seq = self.aof.append(request.op, rpc_id=request.rpc_id,
                                          result=result)
                    self._key_last_seq[request.op.key] = seq
                    self.registry.record(request.rpc_id, result,
                                         log_position=seq)
                    replayed += 1
            finally:
                self.registry.end_recovery()
            if self.aof.end_seq > self.aof.durable_seq:
                yield self.aof.request_durable(self.aof.end_seq)
        self._loop_process = self.host.spawn(self._event_loop(),
                                             name="event-loop")
        return replayed


@dataclasses.dataclass
class _Deferred:
    """Internal marker: reply once ``seq`` is durable."""

    seq: int
    reply: CommandReply
