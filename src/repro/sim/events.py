"""Events: the unit of synchronization in the simulator.

An :class:`Event` starts *pending*, becomes *triggered* exactly once
(either succeeded with a value or failed with an exception), and then
invokes its callbacks.  Processes wait on events by ``yield``-ing them;
the simulator resumes the process when the event triggers.

Combinators:

- :class:`AllOf` triggers when every child has triggered (used by CURP
  clients that must hear from the master *and* all f witnesses).
- :class:`AnyOf` triggers when the first child triggers (used for
  timeouts racing a response).
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


class EventFailed(Exception):
    """Raised inside a process when the event it waited on failed."""


class Event:
    """A one-shot occurrence at a point in virtual time."""

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[typing.Callable[[Event], None]] | None = []
        self._value: typing.Any = None
        self._exception: BaseException | None = None
        self._triggered = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> typing.Any:
        """The success value (or raises the failure exception)."""
        if not self._triggered:
            raise RuntimeError("event has not triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: typing.Any = None) -> "Event":
        """Trigger the event successfully; callbacks run at `now`."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._enqueue_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure; waiters see the exception."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._enqueue_triggered(self)
        return self

    def add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already ran its callbacks, the callback fires on the
        next simulator step (still at the current virtual time).
        """
        if self.callbacks is None:
            # Already dispatched: schedule an immediate delivery.
            self.sim.schedule_callback(0.0, callback, self)
        else:
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        """Invoked by the simulator to run callbacks (exactly once)."""
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._triggered:
            state = "ok" if self._exception is None else "failed"
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: typing.Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim._schedule_timeout(self, delay, value)


class _Condition(Event):
    """Base for AllOf/AnyOf: watches child events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.triggered:
                # Deliver through the queue for deterministic ordering.
                self.sim.schedule_callback(0.0, self._child_done, event)
            else:
                event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError

    def _values(self) -> dict[Event, typing.Any]:
        return {e: e._value for e in self.events if e.triggered and e.ok}


class AllOf(_Condition):
    """Triggers when all children triggered.

    Succeeds with ``{event: value}`` for all children.  Fails as soon as
    any child fails (remaining children keep running).
    """

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._values())


class AnyOf(_Condition):
    """Triggers when the first child triggers (success or failure)."""

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self.succeed(self._values())
