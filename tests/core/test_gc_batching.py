"""Batched witness gc (`max_gc_batch` > 0): coalescing across sync
rounds, the gc_batch RPC, stale-suspect aging under coalescing, and the
gc_rpcs-vs-gc_pairs stats distinction."""

from __future__ import annotations

import pytest

from repro.core.config import CurpConfig, ReplicationMode
from repro.core.messages import GcBatchArgs, RecordedRequest
from repro.core.witness import WitnessServer
from repro.core.witness_cache import WitnessCache
from repro.harness import build_cluster
from repro.kvstore import MultiWrite, Write, key_hash
from repro.rifl import RpcId
from repro.rpc import RpcTransport


def batched_cluster(**kwargs):
    defaults = dict(f=3, mode=ReplicationMode.CURP, min_sync_batch=1,
                    idle_sync_delay=50.0, max_gc_batch=100,
                    gc_flush_delay=100.0, retry_backoff=10.0,
                    rpc_timeout=100.0)
    defaults.update(kwargs)
    return build_cluster(CurpConfig(**defaults))


# ----------------------------------------------------------------------
# master-side coalescing
# ----------------------------------------------------------------------
def test_gc_rpcs_counts_rpcs_not_pairs():
    """One flush collects many pairs: gc_rpcs counts the RPCs actually
    sent (one per witness per flush), gc_pairs the (hash, RpcId) pairs
    shipped — they must not be conflated."""
    cluster = batched_cluster()
    client = cluster.new_client()
    for i in range(10):
        cluster.run(client.update(Write(f"k{i}", i)))
    cluster.settle(1_000.0)  # past gc_flush_delay: stragglers flushed
    stats = cluster.master().stats
    assert stats.gc_pairs == 10
    assert stats.gc_flushes == 1            # all 10 coalesced
    assert stats.gc_rpcs == 3               # one RPC per witness
    assert stats.gc_rpcs == 3 * stats.gc_flushes
    assert stats.gc_rpcs != stats.gc_pairs
    for name in cluster.witness_hosts["m0"]:
        witness = cluster.coordinator.witness_servers[name]
        assert witness.cache.occupied_slots() == 0
        assert witness.gc_batches_processed == 1


def test_batching_cuts_gc_rpcs_at_least_4x():
    """The acceptance ratio, deterministically: same workload, per-round
    cadence (max_gc_batch=0) vs batched."""
    def run_workload(max_gc_batch):
        cluster = batched_cluster(max_gc_batch=max_gc_batch)
        client = cluster.new_client()
        for i in range(12):
            cluster.run(client.update(Write(f"k{i}", i)))
        cluster.settle(1_000.0)
        stats = cluster.master().stats
        # Whatever the cadence, every slot must end up collected.
        for name in cluster.witness_hosts["m0"]:
            witness = cluster.coordinator.witness_servers[name]
            assert witness.cache.occupied_slots() == 0
        return stats

    per_round = run_workload(0)
    batched = run_workload(100)
    assert per_round.gc_pairs == batched.gc_pairs == 12
    # Per-round cadence: one RPC per witness per sync round (rounds may
    # batch several entries, so rounds <= updates).
    assert per_round.gc_rpcs == 3 * per_round.syncs
    assert per_round.syncs >= 6
    assert batched.gc_rpcs == 3             # single coalesced flush
    assert per_round.gc_rpcs / batched.gc_rpcs >= 4


def test_full_batch_flushes_inside_sync_loop():
    """Once max_gc_batch pairs are ready the flush happens immediately,
    without waiting for the timer."""
    cluster = batched_cluster(max_gc_batch=4, gc_flush_delay=1e9)
    client = cluster.new_client()
    for i in range(4):
        cluster.run(client.update(Write(f"k{i}", i)))
    cluster.settle(500.0)  # far below the (disabled) flush timer
    stats = cluster.master().stats
    assert stats.gc_flushes == 1
    assert stats.gc_pairs == 4
    assert stats.gc_rpcs == 3


def test_multiwrite_pairs_all_collected_under_batching():
    cluster = batched_cluster()
    client = cluster.new_client()
    cluster.run(client.update(MultiWrite((("a", 1), ("b", 2), ("c", 3)))))
    for name in cluster.witness_hosts["m0"]:
        witness = cluster.coordinator.witness_servers[name]
        assert witness.cache.occupied_slots() == 3
    cluster.settle(1_000.0)
    assert cluster.master().stats.gc_pairs == 3
    for name in cluster.witness_hosts["m0"]:
        witness = cluster.coordinator.witness_servers[name]
        assert witness.cache.occupied_slots() == 0


def test_orphan_collected_under_batching():
    """The §4.5 uncollected-garbage cycle still converges when gc rides
    the batched path (suspect aging advances by coalesced rounds)."""
    cluster = batched_cluster(gc_stale_threshold=3, gc_flush_delay=60.0)
    client = cluster.new_client()
    orphan_rpc = RpcId(424242, 1)
    witness = cluster.coordinator.witness_servers[
        cluster.witness_hosts["m0"][0]]
    witness.cache.record([key_hash("X")], orphan_rpc,
                         RecordedRequest(op=Write("X", "orphan"),
                                         rpc_id=orphan_rpc))
    for i in range(4):
        cluster.run(client.update(Write(f"other{i}", i)))
        cluster.settle(500.0)  # each batch flushes alone: rounds advance
    assert witness.cache.occupied_slots() == 1
    outcome = cluster.run(client.update(Write("X", "client-value")))
    assert not outcome.fast_path  # rejected at the witness
    cluster.settle(5_000.0)
    assert cluster.master().stats.stale_suspects_handled >= 1
    assert witness.cache.occupied_slots() == 0
    # The orphan's late execution is a valid linearization of a
    # forever-pending op; what matters is the slot is free and the key
    # is writable on the fast path again.
    outcome = cluster.run(client.update(Write("X", "final")))
    assert outcome.fast_path
    assert cluster.run(client.read("X")) == "final"


# ----------------------------------------------------------------------
# witness-side gc_batch semantics
# ----------------------------------------------------------------------
@pytest.fixture
def witness_setup(sim, network):
    witness = WitnessServer(network.add_host("w0"), slots=64, associativity=4)
    witness.start_for("m0")
    caller = RpcTransport(network.add_host("caller"))
    return witness, caller


def test_gc_batch_unknown_rpc_ids_is_noop(witness_setup, sim):
    """A gc_batch naming RpcIds the witness never saw (rejected records,
    duplicated flushes after a master retry) must change nothing."""
    witness, caller = witness_setup
    kept = RpcId(1, 1)
    witness.cache.record([7], kept, RecordedRequest(op="op", rpc_id=kept))
    bogus = GcBatchArgs(master_id="m0",
                        pairs=((7, RpcId(99, 99)),      # known hash, unknown id
                               (1234, RpcId(5, 5))),    # unknown hash
                        rounds=1)
    stale = sim.run(caller.call("w0", "gc_batch", bogus))
    assert stale == ()
    assert witness.cache.occupied_slots() == 1
    # The real pair still collects afterwards.
    real = GcBatchArgs(master_id="m0", pairs=((7, kept),))
    sim.run(caller.call("w0", "gc_batch", real))
    assert witness.cache.occupied_slots() == 0
    assert witness.gc_batches_processed == 2


def test_gc_batch_wrong_master_rejected(witness_setup, sim):
    from repro.rpc import AppError
    _witness, caller = witness_setup
    with pytest.raises(AppError) as err:
        sim.run(caller.call("w0", "gc_batch",
                            GcBatchArgs(master_id="other", pairs=())))
    assert err.value.code == "WRONG_WITNESS_STATE"


def test_gc_batch_rounds_age_suspects_like_per_round_gc():
    """Coalescing N rounds into one gc_batch(rounds=N) must age
    surviving records exactly as N per-round gcs would."""
    cache = WitnessCache(slots=16, associativity=4, stale_threshold=3)
    old = RpcId(1, 1)
    cache.record([3], old, "old-request")
    cache.gc_batch([(5, RpcId(9, 9))], rounds=3)  # 3 rounds, other keys
    # A conflicting record now finds a 3-round-old survivor: suspect.
    assert not cache.record([3], RpcId(2, 1), "new-request")
    stale = cache.gc_batch([], rounds=1)
    assert stale == ["old-request"]


def test_gc_batch_zero_rounds_does_not_age():
    cache = WitnessCache(slots=16, associativity=4, stale_threshold=3)
    old = RpcId(1, 1)
    cache.record([3], old, "old-request")
    cache.gc_batch([(5, RpcId(9, 9))], rounds=0)
    assert cache.gc_rounds == 0
    assert not cache.record([3], RpcId(2, 1), "new-request")
    assert cache.gc_batch([], rounds=0) == []  # not yet a suspect
