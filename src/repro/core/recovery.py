"""Master crash recovery (§3.3, §4.6).

Two phases, exactly as the paper orders them:

1. **Restore from backups** — fetch the ordered log from any backup and
   rebuild object state *and* RIFL completion records (they ride inside
   log entries, giving the atomic durability §3.3 requires).
2. **Replay from one witness** — ``getRecoveryData`` irreversibly
   freezes the chosen witness (so no client can complete an update
   against it afterwards), then every saved request is replayed through
   the RIFL filter: already-recovered requests are skipped, the rest
   execute in arbitrary order — safe because a single witness only ever
   holds mutually commutative requests.  Piggybacked acks are ignored
   for the duration (§4.8).  Finally the new master syncs to backups.

Fencing happens *before* restore: the coordinator bumps the master
epoch on every backup, so a zombie of the old master can never again
complete a sync (§4.7).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.config import CurpConfig
from repro.core.master import CurpMaster
from repro.core.messages import GetRecoveryDataArgs, RecordedRequest
from repro.kvstore.hashing import key_hash
from repro.rifl import DuplicateState
from repro.rpc import AppError, RpcTimeout

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.rifl.lease import LeaseServer


class RecoveryFailed(Exception):
    """No backup (or no witness) could be reached."""


@dataclasses.dataclass(frozen=True)
class RecoveryPartition:
    """One recovery master's share of a dead master's data: the hash
    ranges it will absorb plus the witness-recovered requests that hash
    into them."""

    ranges: tuple[tuple[int, int], ...]
    requests: tuple[RecordedRequest, ...]

    @property
    def span(self) -> int:
        return sum(hi - lo for lo, hi in self.ranges)


def plan_partitions(owned_ranges: typing.Sequence[tuple[int, int]],
                    n: int,
                    requests: typing.Sequence[RecordedRequest] = (),
                    ) -> list[RecoveryPartition]:
    """Split a dead master's tablets into ≤ ``n`` recovery partitions.

    The hash span is cut into ``n`` near-equal contiguous chunks (the
    load-balancing half of RAMCloud's partitioned recovery), then
    chunks spanned by a single witnessed multi-key request are merged:
    a speculative ``MultiWrite`` must be replayed by *one* recovery
    master that owns every key it touches, or the ``owns_all`` replay
    filter would drop it everywhere.  Each witness request is assigned
    to the partition holding its keys; requests whose keys fall outside
    every partition (recorded for since-migrated keys) ride with the
    first partition, whose replay filter discards them.
    """
    if n < 1:
        raise ValueError("need at least one partition")
    spans = sorted((lo, hi) for lo, hi in owned_ranges if hi > lo)
    if not spans:
        return []
    total = sum(hi - lo for lo, hi in spans)
    # -- cut the cumulative span at total*k/n ---------------------------
    chunks: list[list[tuple[int, int]]] = [[]]
    cum = 0
    for lo, hi in spans:
        start = lo
        while start < hi:
            k = len(chunks)  # chunks completed so far + 1 == current
            next_cut = total if k >= n else (total * k) // n
            room = next_cut - cum
            if hi - start <= room or k >= n:
                chunks[-1].append((start, hi))
                cum += hi - start
                start = hi
            else:
                if room > 0:
                    chunks[-1].append((start, start + room))
                cum += room
                start += room
                chunks.append([])
    chunks = [c for c in chunks if c]

    # -- merge chunks spanned by one multi-key request ------------------
    parent = list(range(len(chunks)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def chunk_of(h: int) -> int | None:
        for i, chunk in enumerate(chunks):
            if any(lo <= h < hi for lo, hi in chunk):
                return i
        return None

    request_chunks: list[tuple[RecordedRequest, int]] = []
    for request in requests:
        touched = {chunk_of(key_hash(key))
                   for key in request.op.touched_keys()}
        touched.discard(None)
        if not touched:
            request_chunks.append((request, 0))  # filtered at replay
            continue
        first, *rest = sorted(touched)
        for other in rest:
            parent[find(other)] = find(first)
        request_chunks.append((request, first))

    groups: dict[int, list[int]] = {}
    for i in range(len(chunks)):
        groups.setdefault(find(i), []).append(i)
    partitions = []
    for root in sorted(groups):
        members = groups[root]
        ranges = tuple(sorted(r for i in members for r in chunks[i]))
        reqs = tuple(request for request, i in request_chunks
                     if find(i) == root)
        partitions.append(RecoveryPartition(ranges=ranges, requests=reqs))
    return partitions


def build_recovery_master(host: "Host", master_id: str, config: CurpConfig,
                          backups: typing.Sequence[str],
                          epoch: int,
                          lease_server: "LeaseServer | None" = None,
                          owned_ranges=None, **master_kwargs) -> CurpMaster:
    """A not-yet-active master that will take over ``master_id``."""
    kwargs = dict(master_kwargs)
    if owned_ranges is not None:
        kwargs["owned_ranges"] = owned_ranges
    return CurpMaster(host, master_id, config, backups=backups,
                      witnesses=(), epoch=epoch, lease_server=lease_server,
                      active=False, **kwargs)


def recover(master: CurpMaster, backups: typing.Sequence[str],
            witnesses: typing.Sequence[str],
            rpc_timeout: float = 2_000.0):
    """Generator: run both recovery phases on ``master`` (inactive).

    ``witnesses`` is the *crashed* master's witness list; any single
    reachable one suffices (each individually holds every completed-but-
    unsynced operation).  Returns a dict of recovery statistics.
    """
    if master.active:
        raise RuntimeError("recover() requires an inactive master")

    # ------------------------------------------------------------ phase 1
    entries = None
    for backup in backups:
        try:
            entries = yield master.transport.call(
                backup, "get_backup_data", None, timeout=rpc_timeout)
            break
        except (RpcTimeout, AppError):
            continue
    if entries is None:
        raise RecoveryFailed(f"no backup reachable among {list(backups)}")
    restored = master.store.rebuild_from_entries(entries)
    for entry in master.store.log.all_entries():
        if entry.rpc_id is not None:
            master.registry.record(entry.rpc_id, entry.result,
                                   log_position=entry.index)
    master.synced_position = restored  # backup data is synced by definition
    # Anti-ABA (RAMCloud's safeVersion): speculative writes lost in the
    # crash consumed versions beyond what the backups saw; never reissue
    # them.  The margin safely exceeds any unsynced window.
    master.store.raise_version_floor(master.store.max_version_seen + 10_000)

    # ------------------------------------------------------------ phase 2
    requests: tuple[RecordedRequest, ...] | None = None
    for witness in witnesses:
        try:
            requests = yield master.transport.call(
                witness, "get_recovery_data",
                GetRecoveryDataArgs(master_id=master.master_id),
                timeout=rpc_timeout)
            break
        except (RpcTimeout, AppError):
            continue
    if requests is None and witnesses:
        # §3.3: if none of the f witnesses are reachable the new master
        # must wait — losing witness data would lose completed updates.
        raise RecoveryFailed(f"no witness reachable among {list(witnesses)}")

    replayed = 0
    filtered = 0
    master.registry.begin_recovery()  # §4.8: ignore piggybacked acks
    try:
        for request in requests or ():
            op = request.op
            if not master.owns_all(op.touched_keys()):
                filtered += 1  # migrated-away keys (§3.6 replay filter)
                continue
            state, _ = master.registry.check(request.rpc_id)
            if state is not DuplicateState.NEW:
                filtered += 1  # already restored from the backup log
                continue
            result, entry = master.store.execute(op, rpc_id=request.rpc_id,
                                                 now=master.sim.now)
            if entry is not None:
                master.registry.record(request.rpc_id, result,
                                       log_position=entry.index)
            replayed += 1
    finally:
        master.registry.end_recovery()

    # Final sync: install the recovered log on every (reachable) backup
    # via reset_log — a crash mid-sync can leave backup tails diverged,
    # and none of that unacknowledged tail was ever externalized, so the
    # recovered log wholesale-replaces it.
    if master.config.uses_backups:
        from repro.kvstore.backup import ReplicateArgs
        args = ReplicateArgs(master_id=master.master_id, epoch=master.epoch,
                             entries=tuple(master.store.log.all_entries()))
        for backup in master.backups:
            delivered = False
            for _ in range(10):
                try:
                    yield master.transport.call(backup, "reset_log", args,
                                                timeout=rpc_timeout)
                    delivered = True
                    break
                except RpcTimeout:
                    continue
            if not delivered:
                raise RecoveryFailed(f"backup {backup} unreachable during "
                                     f"recovery final sync")
        master.synced_position = master.store.log.end

    return {"restored_entries": restored, "replayed": replayed,
            "filtered": filtered}
