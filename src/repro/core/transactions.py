"""Optimistic transactions over CURP (the §A.3 pattern).

The appendix sketches how applications use CURP for multi-object
updates: *read* the objects (recording versions), *compute*, then
*commit* with a conditional write that validates every version and
aborts if anything changed.  CURP makes both halves fast:

- the reads use the §A.3 relaxation — they may return unsynced values
  without waiting for durability, because the commit revalidates them
  (``for_update=True`` reads);
- the commit is a single :class:`ConditionalMultiWrite`, which takes
  the normal 1-RTT fast path when its key set commutes with everything
  in flight.

:class:`OptimisticTransaction` is single-master optimistic concurrency
control (all keys of one transaction must live on one master), in the
spirit of RAMCloud's linearizable conditional operations.

:class:`CrossShardTransaction` (§B.2) extends it across shards as a
**commutative saga** with no coordinator: the client groups its keys by
owner shard, fans a :class:`~repro.kvstore.operations.TxnPrepare` to
every shard concurrently (each riding the normal CURP update path —
master + witness records — so the per-shard commutativity check *is*
the witness check), and commits when all shards accept.  Under low
contention every prepare completes speculatively in 1 RTT, so the whole
multi-shard commit is 1 RTT.  Any shard's version mismatch aborts: the
already-prepared shards are unwound with client-driven
:class:`~repro.kvstore.operations.TxnCompensate` operations built from
the undo records the prepares returned, and the retry takes an ordered
(sorted-shard, sequential) 2PC-ish slow path so two contending
transactions cannot mutually abort forever.  RIFL ids allocated per
attempt (``tracker.new_transaction``) make every per-shard prepare
exactly-once across master crashes and recovery replay.
"""

from __future__ import annotations

import typing

from repro.core.client import ClientGaveUp, CurpClient
from repro.core.messages import TxnResolveArgs
from repro.kvstore.operations import (
    KEEP,
    ConditionalMultiWrite,
    TxnCompensate,
    TxnPrepare,
)
from repro.rpc import RpcError
from repro.rpc.helpers import backoff_delay
from repro.sim.events import AllOf


class TransactionAborted(Exception):
    """Commit-time version validation failed (concurrent conflict)."""

    def __init__(self, mismatches):
        super().__init__(f"version mismatches: {mismatches!r}")
        self.mismatches = mismatches


class TransactionGaveUp(TransactionAborted):
    """``run_transaction`` exhausted its retry budget.

    Distinct from a single :class:`TransactionAborted` so callers can
    tell exhaustion from one conflict: ``attempts`` is the budget that
    ran out and ``mismatches`` / ``last_mismatches`` hold the *final
    attempt's* structured mismatch detail (never a bare string).
    """

    def __init__(self, attempts: int, last_mismatches):
        super().__init__(last_mismatches)
        self.attempts = attempts
        self.last_mismatches = last_mismatches


class TransactionInDoubt(Exception):
    """A cross-shard attempt lost contact with a participant shard
    before learning its prepare/compensate outcome.  The transaction
    may be partially applied; the caller must treat it as neither
    committed nor cleanly aborted (retrying with a fresh transaction is
    safe only for idempotent bodies)."""

    def __init__(self, shard_errors: dict):
        super().__init__(f"participants unreachable: {shard_errors!r}")
        self.shard_errors = shard_errors


class OptimisticTransaction:
    """One read-validate-write transaction attempt."""

    def __init__(self, client: CurpClient):
        self.client = client
        #: key -> version observed by the transaction's reads
        self._read_versions: dict[str, int] = {}
        #: key -> value read (for the application's convenience)
        self._read_values: dict[str, typing.Any] = {}
        #: key -> staged new value
        self._writes: dict[str, typing.Any] = {}
        self._committed = False

    def read(self, key: str):
        """Generator: read a key into the read set (§A.3 fast read —
        no durability wait)."""
        if key in self._writes:
            return self._writes[key]
        value, version = yield from self.client.read_versioned(
            key, for_update=True)
        self._read_versions[key] = version
        self._read_values[key] = value
        return value

    def write(self, key: str, value: typing.Any) -> None:
        """Stage a write (applied atomically at commit)."""
        if self._committed:
            raise RuntimeError("transaction already committed")
        self._writes[key] = value

    @property
    def read_set(self) -> dict[str, int]:
        return dict(self._read_versions)

    def commit(self):
        """Generator: atomically apply staged writes iff no key in the
        read set changed.  Raises :class:`TransactionAborted` on
        conflict.  Read-only transactions commit trivially (their
        serialization point is the last read)."""
        if self._committed:
            raise RuntimeError("transaction already committed")
        self._committed = True
        if not self._writes and not self._read_versions:
            return None
        if not self._writes:
            return None  # read-only: nothing to validate against
        items = []
        for key, value in self._writes.items():
            expected = self._read_versions.get(key)
            if expected is None:
                # Blind write: validate against the current version so
                # the operation is still a CAS (read it now).
                _value, expected = yield from self.client.read_versioned(
                    key, for_update=True)
            items.append((key, value, expected))
        for key, version in self._read_versions.items():
            if key not in self._writes:
                items.append((key, KEEP, version))  # validate-only
        op = ConditionalMultiWrite(items=tuple(items))
        outcome = yield from self.client.update(op)
        status, detail = outcome.result
        if status != "OK":
            raise TransactionAborted(detail)
        return outcome


def _abort_backoff(client: CurpClient, attempt: int):
    """Generator: jittered exponential backoff between aborted
    transaction attempts.  Without it two contending transactions
    re-read and re-commit in lockstep and can mutually abort for the
    whole retry budget (livelock).  Draws from ``sim.rng`` only on the
    abort path, so conflict-free runs leave every trace untouched."""
    base = client.config.retry_backoff
    if base <= 0:
        return
    delay = backoff_delay(attempt, base, base * 32, client.sim.rng)
    if delay > 0:
        yield client.sim.timeout(delay)


def run_transaction(client: CurpClient, body, max_attempts: int = 20):
    """Generator: run ``body(txn)`` (a generator function) with
    automatic retry on abort — the paper's "applications ... handle
    aborts by retrying".

    Returns the body's return value of the attempt that committed.
    Aborted attempts back off (jittered exponential, seeded from
    ``config.retry_backoff``) before retrying; exhaustion raises
    :class:`TransactionGaveUp` carrying the final attempt's structured
    mismatches.
    """
    last_mismatches = None
    for attempt in range(max_attempts):
        txn = OptimisticTransaction(client)
        result = yield from body(txn)
        try:
            yield from txn.commit()
            return result
        except TransactionAborted as abort:
            last_mismatches = abort.mismatches
            if attempt < max_attempts - 1:
                yield from _abort_backoff(client, attempt)
    raise TransactionGaveUp(max_attempts, last_mismatches)


class CrossShardTransaction:
    """One cross-shard read-validate-write attempt (§B.2).

    Same shape as :class:`OptimisticTransaction` — ``read`` into the
    read set, stage ``write``\\ s, then ``commit`` — but the keys may
    live on any number of shards.  Commit fans one
    :class:`~repro.kvstore.operations.TxnPrepare` per owner shard
    (concurrently by default; sequentially in sorted shard order with
    ``ordered=True``, the post-conflict slow path) and either commits
    on all shards or compensates the prepared ones and raises
    :class:`TransactionAborted`.

    After a successful commit ``fast_path`` says whether *every*
    shard's prepare completed speculatively in 1 RTT — the §B.2 claim
    measured by ``benchmarks/bench_transactions.py``.
    """

    def __init__(self, client: CurpClient, ordered: bool = False):
        self.client = client
        self.ordered = ordered
        self._read_versions: dict[str, int] = {}
        self._read_values: dict[str, typing.Any] = {}
        self._writes: dict[str, typing.Any] = {}
        self._committed = False
        #: True after commit iff every shard prepared in 1 RTT
        self.fast_path: bool | None = None
        #: shards this attempt touched (set during commit)
        self.participants: tuple[str, ...] = ()

    def read(self, key: str):
        """Generator: read a key into the read set (§A.3 fast read)."""
        if key in self._writes:
            return self._writes[key]
        value, version = yield from self.client.read_versioned(
            key, for_update=True)
        self._read_versions[key] = version
        self._read_values[key] = value
        return value

    def write(self, key: str, value: typing.Any) -> None:
        if self._committed:
            raise RuntimeError("transaction already committed")
        self._writes[key] = value

    @property
    def read_set(self) -> dict[str, int]:
        return dict(self._read_versions)

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------
    def commit(self):
        """Generator: commit on every owner shard or unwind.

        Raises :class:`TransactionAborted` (compensated, no residue) on
        a version conflict, :class:`TransactionInDoubt` when a
        participant stayed unreachable past the client's retry budget.
        """
        if self._committed:
            raise RuntimeError("transaction already committed")
        self._committed = True
        if not self._writes:
            return None  # read-only: serialization point = last read
        items = []
        for key, value in self._writes.items():
            expected = self._read_versions.get(key)
            if expected is None:
                _v, expected = yield from self.client.read_versioned(
                    key, for_update=True)
            items.append((key, value, expected))
        for key, version in self._read_versions.items():
            if key not in self._writes:
                items.append((key, KEEP, version))
        by_key = {item[0]: item for item in items}
        try:
            groups = self.client.group_by_shard(tuple(by_key))
        except KeyError as error:
            # Coverage gap (mid-migration view): abort; the retry
            # refreshes the view and regroups.
            raise TransactionAborted({"unrouted": str(error)})
        shard_ids = sorted(groups)
        self.participants = tuple(shard_ids)
        txn_id, rpc_ids = self.client.tracker.new_transaction(
            len(shard_ids))
        prepares = {
            shard: TxnPrepare(
                items=tuple(by_key[key] for key in groups[shard]),
                txn_id=txn_id)
            for shard in shard_ids}
        if self.ordered or len(shard_ids) == 1:
            outcomes = yield from self._prepare_sequential(
                shard_ids, prepares, rpc_ids)
        else:
            outcomes = yield from self._prepare_concurrent(
                shard_ids, prepares, rpc_ids)

        oks = {s: o for s, (st, o) in outcomes.items() if st == "ok"
               and o.result[0] == "OK"}
        mismatches = {s: o.result[1] for s, (st, o) in outcomes.items()
                      if st == "ok" and o.result[0] == "MISMATCH"}
        errors = {s: e for s, (st, e) in outcomes.items()
                  if st == "error"}
        if not mismatches and not errors:
            self.fast_path = all(o.fast_path for o in oks.values())
            self._resolve(txn_id, shard_ids)
            return oks
        # Abort: unwind every prepared shard with its undo records.
        in_doubt = dict(errors)
        for shard, outcome in oks.items():
            undo = outcome.result[1]
            if not undo:
                continue  # validate-only slice: nothing was written
            try:
                yield from self._compensate_one(txn_id, undo)
            except (ClientGaveUp, ValueError, KeyError) as error:
                in_doubt[shard] = error
        if in_doubt:
            raise TransactionInDoubt(
                {s: repr(e) for s, e in in_doubt.items()})
        raise TransactionAborted(mismatches)

    def _prepare_concurrent(self, shard_ids, prepares, rpc_ids):
        """Generator: the fast path — every shard's prepare in flight
        at once, exactly the client's 1 + f fan-out per shard."""
        procs = [
            self.client.host.spawn(
                self._prepare_one(prepares[shard], rpc_id),
                name=f"txn-prepare-{shard}")
            for shard, rpc_id in zip(shard_ids, rpc_ids)]
        results = yield AllOf(self.client.sim, procs)
        return {shard: results[proc]
                for shard, proc in zip(shard_ids, procs)}

    def _prepare_sequential(self, shard_ids, prepares, rpc_ids):
        """Generator: the ordered slow path — prepares acquire shards
        in sorted id order and stop at the first conflict, so two
        contending cross-shard transactions serialize instead of
        mutually aborting (the 2PC-ish fallback)."""
        outcomes = {}
        for shard, rpc_id in zip(shard_ids, rpc_ids):
            outcome = yield from self._prepare_one(prepares[shard],
                                                   rpc_id)
            outcomes[shard] = outcome
            status, payload = outcome
            if status == "error" or payload.result[0] != "OK":
                # Unacquired shards: release their unused rpc ids so
                # first_incomplete (and server-side RIFL gc) advances.
                for unused in rpc_ids[len(outcomes):]:
                    self.client.tracker.completed(unused)
                break
        return outcomes

    def _prepare_one(self, op: TxnPrepare, rpc_id):
        """Generator: one shard's prepare through the normal update
        path (RIFL-pinned id, witness records, crash retries)."""
        try:
            outcome = yield from self.client.update(op, rpc_id=rpc_id)
            return ("ok", outcome)
        except ClientGaveUp as error:
            # Outcome unknown: the rpc id stays outstanding (the
            # operation may yet replay through recovery).
            return ("error", error)
        except (ValueError, KeyError) as error:
            # Routing changed under us before any RPC fanned out for
            # this attempt: nothing recorded anywhere, so the id can
            # be retired.
            self.client.tracker.completed(rpc_id)
            return ("error", error)

    def _compensate_one(self, txn_id, undo):
        """Generator: unwind one prepared shard.  Overridable hook —
        ``verify`` subclasses it to record the per-key restores as
        history writes."""
        return (yield from self.client.update(
            TxnCompensate(txn_id=txn_id, items=undo)))

    def _resolve(self, txn_id, shard_ids) -> None:
        """Fire-and-forget commit notifications: clear each shard's
        pending-txn bookkeeping.  Loss is harmless (advisory map)."""
        view = self.client.view
        for shard in shard_ids:
            master = view.masters.get(shard) if view else None
            if master is None:
                continue
            self.client.host.spawn(
                self._resolve_quietly(master.host,
                                      TxnResolveArgs(txn_id=txn_id)),
                name="txn-resolve")

    def _resolve_quietly(self, master_host: str, args: TxnResolveArgs):
        try:
            yield self.client.transport.call(
                master_host, "txn_resolve", args,
                timeout=self.client.config.rpc_timeout)
        except RpcError:
            pass  # advisory: a stale pending entry is the only cost


def run_cross_shard_transaction(client: CurpClient, body,
                                max_attempts: int = 20):
    """Generator: run ``body(txn)`` against a
    :class:`CrossShardTransaction` with automatic retry on abort.

    The first attempt fans out concurrently (the 1-RTT fast path);
    retries after a conflict switch to the ordered sequential slow
    path with jittered exponential backoff, so contending transactions
    serialize instead of livelocking.  Exhaustion raises
    :class:`TransactionGaveUp`; an unreachable participant raises
    :class:`TransactionInDoubt` immediately (retrying cannot resolve
    an unknown outcome).
    """
    last_mismatches = None
    for attempt in range(max_attempts):
        txn = CrossShardTransaction(client, ordered=attempt > 0)
        result = yield from body(txn)
        try:
            yield from txn.commit()
            return result
        except TransactionAborted as abort:
            last_mismatches = abort.mismatches
            if attempt < max_attempts - 1:
                yield from _abort_backoff(client, attempt)
    raise TransactionGaveUp(max_attempts, last_mismatches)
