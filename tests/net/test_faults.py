"""Unit tests for the fault-injection subsystem (net/faults.py).

Covers the network fault hooks directly (one-way partitions, gray
links, gray hosts) and the scheduled FaultInjector on top, including
the golden-trace contract: an empty plan schedules nothing, draws
nothing, and leaves the main rng stream untouched.
"""

from __future__ import annotations

import types

import pytest

from repro.net import Network
from repro.net.faults import (FaultInjector, FaultPlan, GrayHost, GrayLink,
                              HostFlap, LinkProfile, OneWayPartition,
                              SlowDisk, SymmetricPartition)
from repro.net.latency import LatencyModel
from repro.sim import Fixed, Simulator


def two_hosts(network: Network):
    a = network.add_host("a")
    b = network.add_host("b")
    inbox = []
    back = []
    b.set_message_handler(lambda m: inbox.append((network.sim.now, m.payload)))
    a.set_message_handler(lambda m: back.append((network.sim.now, m.payload)))
    return a, b, inbox, back


def request(method: str):
    """A duck-typed RPC request frame: anything with a .method."""
    return types.SimpleNamespace(method=method)


# ----------------------------------------------------------------------
# network hooks, driven directly
# ----------------------------------------------------------------------

def test_one_way_partition_is_asymmetric(sim: Simulator, network: Network):
    a, b, inbox, back = two_hosts(network)
    network.partition_one_way("a", "b")
    a.send("b", "forward")
    b.send("a", "reverse")
    sim.run()
    assert inbox == []                      # a → b blocked
    assert [p for _, p in back] == ["reverse"]  # b → a flows
    network.heal_one_way("a", "b")
    assert not network._faults_active
    a.send("b", "healed")
    sim.run()
    assert [p for _, p in inbox] == ["healed"]


def test_gray_link_total_loss(sim: Simulator, network: Network):
    import random
    a, _b, inbox, _ = two_hosts(network)
    network.fault_rng = random.Random(7)
    network.set_link_fault("a", "b", LinkProfile(loss_rate=1.0))
    for i in range(5):
        a.send("b", i)
    sim.run()
    assert inbox == []
    assert network.stats.messages_dropped == 5
    network.clear_link_fault("a", "b")
    assert not network._faults_active


def test_gray_link_delay_spike(sim: Simulator, network: Network):
    a, _b, inbox, _ = two_hosts(network)
    network.set_link_fault("a", "b", LinkProfile(extra_delay=100.0))
    a.send("b", "slow")
    sim.run()
    assert inbox == [(102.0, "slow")]       # 2 µs wire + 100 µs spike


def test_gray_link_duplication(sim: Simulator, network: Network):
    import random
    a, _b, inbox, _ = two_hosts(network)
    network.fault_rng = random.Random(7)
    network.set_link_fault("a", "b",
                           LinkProfile(duplicate_rate=1.0, duplicate_lag=3.0))
    a.send("b", "twice")
    sim.run()
    assert [p for _, p in inbox] == ["twice", "twice"]
    assert inbox[1][0] > inbox[0][0]
    assert network.stats.messages_duplicated == 1
    assert network.stats.messages_sent == 1  # protocol traffic unchanged


def test_symmetric_link_fault_hits_both_directions(sim: Simulator,
                                                   network: Network):
    import random
    a, b, inbox, back = two_hosts(network)
    network.fault_rng = random.Random(7)
    network.set_link_fault("a", "b", LinkProfile(loss_rate=1.0),
                           symmetric=True)
    a.send("b", 1)
    b.send("a", 2)
    sim.run()
    assert inbox == [] and back == []


def test_gray_host_filters_requests_not_responses(sim: Simulator,
                                                  network: Network):
    a, _b, inbox, _ = two_hosts(network)
    network.set_gray_host("b", allow=("ping",))
    a.send("b", request("ping"))            # allowed control path
    a.send("b", request("record"))          # data path: dropped
    a.send("b", "raw-payload")              # no .method: passes
    sim.run()
    methods = [getattr(p, "method", p) for _, p in inbox]
    assert methods == ["ping", "raw-payload"]
    network.clear_gray_host("b")
    a.send("b", request("record"))
    sim.run()
    assert getattr(inbox[-1][1], "method", None) == "record"


def test_gray_host_filters_inside_coalesced_frames(sim: Simulator):
    network = Network(sim, latency=LatencyModel(Fixed(2.0)),
                      frame_coalescing=True)
    a, _b, inbox, _ = two_hosts(network)
    network.set_gray_host("b", allow=("ping",))
    # Same instant, same destination: one frame with both payloads.
    a.send("b", request("record"))
    a.send("b", request("ping"))
    sim.run()
    assert [p.method for _, p in inbox] == ["ping"]
    assert network.stats.payloads_dropped == 1
    # A frame whose every payload is filtered dies whole.
    a.send("b", request("record"))
    a.send("b", request("replicate"))
    dropped_before = network.stats.messages_dropped
    sim.run()
    assert [p.method for _, p in inbox] == ["ping"]
    assert network.stats.messages_dropped == dropped_before + 1


def test_link_fault_applies_to_frames(sim: Simulator):
    network = Network(sim, latency=LatencyModel(Fixed(2.0)),
                      frame_coalescing=True)
    a, _b, inbox, _ = two_hosts(network)
    network.set_link_fault("a", "b", LinkProfile(extra_delay=50.0))
    a.send("b", "x")
    a.send("b", "y")
    sim.run()
    assert [t for t, _ in inbox] == [52.0, 52.0]


# ----------------------------------------------------------------------
# the scheduled injector
# ----------------------------------------------------------------------

def test_injector_applies_and_reverts_on_schedule(sim: Simulator,
                                                  network: Network):
    a, _b, inbox, _ = two_hosts(network)
    plan = FaultPlan(events=(OneWayPartition(src="a", dst="b",
                                             start=10.0, end=20.0),))
    injector = FaultInjector(network, plan)
    injector.start()
    send_times = [5.0, 15.0, 25.0]
    for t in send_times:
        sim.schedule_callback(t, a.send, "b", t)
    sim.run()
    assert [p for _, p in inbox] == [5.0, 25.0]   # 15.0 fell in the window
    assert [t for t, _ in injector.applied] == [10.0]
    assert [t for t, _ in injector.reverted] == [20.0]
    assert injector.active == []


def test_host_flap_crashes_and_restarts(sim: Simulator, network: Network):
    a, _b, inbox, _ = two_hosts(network)
    plan = FaultPlan(events=(HostFlap(host="b", start=10.0, end=20.0),))
    FaultInjector(network, plan).start()
    for t in (5.0, 15.0, 25.0):
        sim.schedule_callback(t, a.send, "b", t)
    sim.run()
    assert [p for _, p in inbox] == [5.0, 25.0]


def test_permanent_fault_never_reverts(sim: Simulator, network: Network):
    a, _b, inbox, _ = two_hosts(network)
    plan = FaultPlan(events=(GrayHost(host="b", start=0.0),))
    injector = FaultInjector(network, plan)
    injector.start()
    sim.schedule_callback(50.0, a.send, "b", request("record"))
    sim.run()
    assert inbox == []
    assert injector.active  # still gray
    injector.heal_all()
    assert injector.active == []
    a.send("b", request("record"))
    sim.run()
    assert len(inbox) == 1


def test_injector_start_is_idempotent(sim: Simulator, network: Network):
    _a, _b, _inbox, _ = two_hosts(network)
    plan = FaultPlan(events=(SymmetricPartition(a="a", b="b", start=1.0),))
    injector = FaultInjector(network, plan)
    injector.start()
    injector.start()
    sim.run()
    assert len(injector.applied) == 1


def test_slow_disk_multiplier(sim: Simulator):
    from repro.kvstore.wal import VirtualDisk
    disk = VirtualDisk(sim)
    assert disk.charge(2.0) == 2.0
    disk.multiplier = 10.0
    assert disk.charge(2.0) == pytest.approx(22.0)  # queue 2 + 10×2
    disk.multiplier = 1.0
    assert disk.charge(0.0) == 0.0


def test_slow_disk_event_requires_coordinator(sim: Simulator,
                                              network: Network):
    injector = FaultInjector(network, FaultPlan(
        events=(SlowDisk(host="b", start=0.0),)))
    with pytest.raises(ValueError):
        injector.disk("b")


def test_plan_shifted(sim: Simulator):
    plan = FaultPlan(events=(HostFlap(host="x", start=5.0, end=9.0),
                             GrayHost(host="y", start=2.0)))
    moved = plan.shifted(100.0)
    assert [(e.start, e.end) for e in moved.events] == [(105.0, 109.0),
                                                        (102.0, None)]
    assert moved.seed == plan.seed


def test_event_validation():
    with pytest.raises(ValueError):
        HostFlap(host="x", start=-1.0)
    with pytest.raises(ValueError):
        HostFlap(host="x", start=5.0, end=5.0)
    with pytest.raises(ValueError):
        LinkProfile(loss_rate=1.5)
    with pytest.raises(ValueError):
        SlowDisk(host="x", multiplier=0.0)


# ----------------------------------------------------------------------
# the golden-trace contract
# ----------------------------------------------------------------------

def _trace(plan: FaultPlan | None, seed: int = 42):
    """Run a small lossy workload; return (delivery trace, rng state)."""
    sim = Simulator(seed=seed)
    network = Network(sim, latency=LatencyModel(Fixed(2.0)), drop_rate=0.1)
    a, _b, inbox, _ = two_hosts(network)
    if plan is not None:
        FaultInjector(network, plan).start()
    for i in range(50):
        sim.schedule_callback(float(i), a.send, "b", i)
    sim.run()
    return inbox, sim.rng.getstate()


def test_empty_plan_keeps_traces_byte_identical():
    bare_trace, bare_rng = _trace(None)
    empty_trace, empty_rng = _trace(FaultPlan())
    assert empty_trace == bare_trace
    assert empty_rng == bare_rng


def test_fault_plans_replay_deterministically():
    plan = FaultPlan(events=(
        GrayLink(src="a", dst="b", start=5.0, end=30.0, loss_rate=0.4,
                 jitter=1.5, duplicate_rate=0.3),
        OneWayPartition(src="a", dst="b", start=35.0, end=40.0),
    ), seed=9)
    first, first_rng = _trace(plan)
    second, second_rng = _trace(plan)
    assert first == second
    assert first_rng == second_rng


def test_fault_rng_is_isolated_from_sim_rng():
    """The same fault plan with different fault seeds must leave the
    *main* rng stream consuming the same draws for surviving messages:
    loss rolls come only from the dedicated stream."""
    base = (GrayLink(src="a", dst="b", start=0.0, loss_rate=0.5),)
    _t1, rng1 = _trace(FaultPlan(events=base, seed=1))
    _t2, rng2 = _trace(FaultPlan(events=base, seed=2))
    # Different fault seeds drop different messages, but every message
    # that reaches the drop_rate roll consumes exactly one sim.rng draw
    # either way... so the total sim.rng consumption differs only via
    # latency sampling of survivors.  The strong invariant we pin:
    # with loss_rate=0 the fault seed is irrelevant to the main stream.
    none = (GrayLink(src="a", dst="b", start=0.0, extra_delay=1.0),)
    t3, rng3 = _trace(FaultPlan(events=none, seed=1))
    t4, rng4 = _trace(FaultPlan(events=none, seed=2))
    assert rng3 == rng4
    assert [p for _, p in t3] == [p for _, p in t4]
