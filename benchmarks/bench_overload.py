"""Overload protection: goodput vs offered load, defenses on vs off.

The open-loop engine offers Poisson traffic at a multiple of the
cluster's service capacity; unlike every closed-loop bench, the offered
rate does not self-throttle to what the cluster absorbs.  Undefended,
the master's worker queue grows without bound past saturation, queueing
delay exceeds every client's RPC patience (``rpc_timeout`` ×
``max_attempts``), and *goodput collapses* — workers burn their cycles
on requests whose clients already gave up.  With the defenses on
(bounded admission queue + ``RETRY_LATER`` pushback + client AIMD
windows + edge drops), goodput stays flat at capacity no matter how
hard the engine pushes.

The cluster is deliberately tiny — 2 workers × 50 µs/op ≈ 40k ops/s —
so a 10× overload is cheap to simulate; the defense mechanisms don't
care about the absolute numbers.  ``gc_stale_threshold`` is raised so
the witness orphan-replay path (a crash-recovery mechanism that
re-executes abandoned records at zero modelled cost, normally
minutes-scale) cannot masquerade as extra capacity inside a 60 ms
measurement window.

Acceptance (ISSUE 6): goodput at 10× saturation ≥ 80% of peak with
defenses on; the defenses-off run must actually collapse (< 50% of
peak) or the bench is not measuring overload at all.  All virtual-time,
deterministic per seed.
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import run_once
from repro.baselines import curp_config
from repro.core.config import OverloadConfig
from repro.harness.builder import build_cluster
from repro.harness.profiles import TEST_PROFILE
from repro.metrics import format_table, jain_fairness
from repro.workload.openloop import (
    ConstantRate,
    FlashCrowd,
    KeySetWorkload,
    OpenLoopEngine,
    TenantSpec,
)
from repro.workload.ycsb import YcsbWorkload

#: 2 workers × 50 µs/op ≈ 40k ops/s of master service capacity
OVERLOAD_PROFILE = dataclasses.replace(TEST_PROFILE, name="overload",
                                       master_workers=2, execute_time=50.0)
CAPACITY_OPS_PER_SEC = 40_000.0

#: small key space keeps zipfian setup cheap; the mix is 50/50 so both
#: the update and read shed paths are exercised
MIX = YcsbWorkload(name="overload-mix", read_fraction=0.5, item_count=200,
                   value_size=8)

#: arrival→completion SLO (µs) for goodput filtering, and the client-
#: side edge-drop bound that keeps admitted work fresh under surges
SLO = 20_000.0
MAX_QUEUE_WAIT = 5_000.0


def overload_config(enabled: bool, **overrides):
    overrides.setdefault("rpc_timeout", 2_000.0)
    overrides.setdefault("max_attempts", 6)
    overrides.setdefault("retry_backoff", 200.0)
    overrides.setdefault("gc_stale_threshold", 1_000_000)
    overrides.setdefault("overload", OverloadConfig(
        enabled=enabled, max_queue_depth=16, retry_after=300.0,
        retry_after_cap=3_000.0))
    return curp_config(1, **overrides)


def _tenants(rate: float, n_clients: int = 8) -> list[TenantSpec]:
    """Two equal tenants on disjoint key spaces splitting ``rate`` —
    per-tenant goodput at saturation feeds the Jain fairness index."""
    return [
        TenantSpec("a", ConstantRate(rate / 2),
                   dataclasses.replace(MIX, key_prefix="a/"), n_clients),
        TenantSpec("b", ConstantRate(rate / 2),
                   dataclasses.replace(MIX, key_prefix="b/"), n_clients),
    ]


def _run_point(enabled: bool, rate: float, duration: float, warmup: float,
               seed: int) -> dict:
    cluster = build_cluster(overload_config(enabled),
                            profile=OVERLOAD_PROFILE, seed=seed)
    engine = OpenLoopEngine(cluster, _tenants(rate), max_window=32,
                            max_queue_wait=MAX_QUEUE_WAIT, slo=SLO)
    result = engine.run(duration=duration, warmup=warmup)
    master = cluster.master()
    result["shed"] = master.stats.shed_updates + master.stats.shed_reads
    result["executed"] = master.stats.updates + master.stats.reads
    result["master_queue"] = master.workers.queue_length
    return result


def goodput_curve(multipliers=(0.5, 1.0, 2.0, 5.0, 10.0),
                  duration: float = 50_000.0, warmup: float = 10_000.0,
                  seed: int = 7) -> dict:
    """The headline series: goodput at each offered-load multiple of
    capacity, defenses on vs off, plus the derived acceptance numbers."""
    curve: dict = {}
    for mult in multipliers:
        rate = CAPACITY_OPS_PER_SEC * mult
        point: dict = {"offered_per_sec": rate}
        for label, enabled in (("on", True), ("off", False)):
            point[label] = _run_point(enabled, rate, duration, warmup, seed)
        curve[f"{mult:g}x" if mult != int(mult) else f"{int(mult)}x"] = point
    saturated = curve[_last_key(curve)]
    peak_on = max(point["on"]["goodput"] for point in curve.values())
    peak_off = max(point["off"]["goodput"] for point in curve.values())
    sat_on = saturated["on"]
    return {
        "capacity_ops_per_sec": CAPACITY_OPS_PER_SEC,
        "curve": curve,
        "peak_goodput": peak_on,
        "goodput_at_saturation": sat_on["goodput"],
        "retention": sat_on["goodput"] / peak_on if peak_on else 0.0,
        "collapse_ratio_off": (saturated["off"]["goodput"] / peak_off
                               if peak_off else 0.0),
        "fairness_jain": jain_fairness(
            [t["goodput"] for t in sat_on["per_tenant"].values()]),
    }


def _last_key(curve: dict) -> str:
    return list(curve)[-1]


# ----------------------------------------------------------------------
# per-tenant witness fairness (shared endpoints)
# ----------------------------------------------------------------------
def _keys_owned_by(cluster, master_id: str, count: int) -> tuple:
    """First ``count`` keys whose hash routes to ``master_id``."""
    keys = []
    i = 0
    while len(keys) < count:
        key = f"fair{i}"
        if cluster.shard_for(key) == master_id:
            keys.append(key)
        i += 1
    return tuple(keys)


def fairness_comparison(duration: float = 30_000.0, warmup: float = 5_000.0,
                        seed: int = 11) -> dict:
    """Two masters share multi-tenant witness endpoints; the hot
    master's tenant offers 10× capacity while the quiet one trickles.
    Per-tenant fair admission must keep the quiet master's records
    flowing — its throttle rate stays ~0 while the hot master absorbs
    every rejection its own excess caused."""
    # The witness budget must sit *below* the record rate the master's
    # own admission control lets through (records fan out at attempt
    # time, so admitted ≈ capacity ≈ 40 records/ms here): 30/ms makes
    # the endpoint the binding constraint, which is the scenario under
    # test.  A rejected record is not an error — the sender falls back
    # to the 2-RTT sync path.
    config = overload_config(True, overload=OverloadConfig(
        enabled=True, max_queue_depth=16, retry_after=300.0,
        retry_after_cap=3_000.0, witness_window=1_000.0,
        witness_window_records=30))
    cluster = build_cluster(config, profile=OVERLOAD_PROFILE, n_masters=2,
                            seed=seed, multi_tenant_witnesses=True)
    masters = sorted(cluster.masters)
    hot_id, quiet_id = masters[0], masters[1]
    hot = KeySetWorkload("hot", _keys_owned_by(cluster, hot_id, 16))
    quiet = KeySetWorkload("quiet", _keys_owned_by(cluster, quiet_id, 16))
    engine = OpenLoopEngine(cluster, [
        TenantSpec("hot", ConstantRate(CAPACITY_OPS_PER_SEC * 10), hot,
                   n_clients=8),
        TenantSpec("quiet", ConstantRate(CAPACITY_OPS_PER_SEC / 8), quiet,
                   n_clients=2),
    ], max_window=32, max_queue_wait=MAX_QUEUE_WAIT, slo=SLO)
    result = engine.run(duration=duration, warmup=warmup)

    endpoints = list(cluster.coordinator.witness_endpoints.values())
    per_master: dict[str, dict] = {
        m: {"records": 0, "throttled": 0} for m in masters}
    for endpoint in endpoints:
        for master_id, count in endpoint.tenant_records.items():
            per_master[master_id]["records"] += count
        for master_id, count in endpoint.tenant_throttled.items():
            per_master[master_id]["throttled"] += count
    for detail in per_master.values():
        offered = detail["records"] + detail["throttled"]
        detail["throttle_rate"] = (detail["throttled"] / offered
                                   if offered else 0.0)
    return {
        "result": result,
        "hot_master": hot_id,
        "quiet_master": quiet_id,
        "per_master": per_master,
        "hot_throttle_rate": per_master[hot_id]["throttle_rate"],
        "quiet_throttle_rate": per_master[quiet_id]["throttle_rate"],
        "quiet_goodput": result["per_tenant"]["quiet"]["goodput"],
        "quiet_offered_per_sec":
            result["per_tenant"]["quiet"]["offered_per_sec"],
    }


# ----------------------------------------------------------------------
# flash crowd timeline (docs figure)
# ----------------------------------------------------------------------
def flash_crowd_timeline(duration: float = 60_000.0,
                         surge_start: float = 20_000.0,
                         surge_end: float = 40_000.0,
                         seed: int = 13) -> dict:
    """One defended run through a 10× flash crowd, bucketed goodput and
    p99.9 over time — the defenses-engage picture for PERFORMANCE.md."""
    from repro.metrics import bucketed_percentiles, bucketed_rates

    cluster = build_cluster(overload_config(True),
                            profile=OVERLOAD_PROFILE, seed=seed)
    schedule = FlashCrowd(ConstantRate(CAPACITY_OPS_PER_SEC * 0.8),
                          multiplier=12.5, surge_start=surge_start,
                          surge_end=surge_end)
    engine = OpenLoopEngine(
        cluster,
        [TenantSpec("flash", schedule, MIX, n_clients=8)],
        max_window=32, max_queue_wait=MAX_QUEUE_WAIT, slo=SLO,
        record_timeline=True)
    result = engine.run(duration=duration)
    events = result["per_tenant"]["flash"]["completions"]
    bucket = duration / 12
    return {
        "result": result,
        "goodput_series": bucketed_rates(events, bucket, 0.0, duration),
        "p999_series": bucketed_percentiles(events, bucket, 0.0, duration,
                                            p=99.9),
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_overload_goodput_retention(benchmark, scale):
    duration = 50_000.0 * min(scale, 2)

    def experiment():
        return goodput_curve(duration=duration)

    series = run_once(benchmark, experiment)

    rows = []
    for label, point in series["curve"].items():
        rows.append([
            label, round(point["offered_per_sec"]),
            round(point["on"]["goodput"]), point["on"]["shed"],
            point["on"]["pushbacks"], point["on"]["dropped"],
            round(point["off"]["goodput"]), point["off"]["failed"],
            point["off"]["master_queue"]])
    print()
    print(format_table(
        ["offered", "offered/s", "ON goodput/s", "shed", "pushbacks",
         "edge drops", "OFF goodput/s", "OFF give-ups", "OFF queue"],
        rows,
        title=f"Open-loop goodput vs offered load "
              f"(capacity ≈ {round(series['capacity_ops_per_sec'])} ops/s)"))

    # ISSUE 6 acceptance: flat past saturation with defenses on...
    assert series["retention"] >= 0.8, \
        f"goodput retention at 10x only {series['retention']:.2f}"
    # ...and a real collapse without them, else nothing was measured.
    assert series["collapse_ratio_off"] < 0.5, \
        f"defenses-off run failed to collapse " \
        f"({series['collapse_ratio_off']:.2f} of peak)"
    assert series["fairness_jain"] >= 0.9, \
        f"equal tenants diverged: jain={series['fairness_jain']:.3f}"
    benchmark.extra_info["retention"] = series["retention"]
    benchmark.extra_info["goodput_at_saturation"] = \
        series["goodput_at_saturation"]


def test_overload_witness_fairness(benchmark, scale):
    duration = 30_000.0 * min(scale, 2)

    def experiment():
        return fairness_comparison(duration=duration)

    series = run_once(benchmark, experiment)

    rows = [[m, d["records"], d["throttled"],
             round(d["throttle_rate"], 3)]
            for m, d in sorted(series["per_master"].items())]
    print()
    print(format_table(
        ["master", "records admitted", "records throttled",
         "throttle rate"], rows,
        title="Shared witness endpoints — per-tenant admission"))

    # The hot master must absorb its own excess...
    assert series["hot_throttle_rate"] > 0.2, \
        "hot tenant was never throttled — the budget is not binding"
    # ...while the quiet master's records sail through.
    assert series["quiet_throttle_rate"] < 0.02, \
        f"quiet tenant throttled at " \
        f"{series['quiet_throttle_rate']:.3f} by a hot neighbour"
    # And the quiet tenant's traffic actually completes.
    assert series["quiet_goodput"] >= \
        0.8 * series["quiet_offered_per_sec"]
    benchmark.extra_info["quiet_throttle_rate"] = \
        series["quiet_throttle_rate"]
