"""Unit tests for the RPC transport."""

from __future__ import annotations

import pytest

from repro.net import Network
from repro.rpc import AppError, RpcTimeout, RpcTransport
from repro.rpc.errors import RemoteError
from repro.sim import Simulator


def make_pair(network: Network):
    client = RpcTransport(network.add_host("client"))
    server = RpcTransport(network.add_host("server"))
    return client, server


def test_simple_call_response(sim: Simulator, network: Network):
    client, server = make_pair(network)
    server.register("echo", lambda args, ctx: f"echo:{args}")
    result = sim.run(client.call("server", "echo", "hi"))
    assert result == "echo:hi"
    assert sim.now == 4.0  # two one-way 2 µs hops


def test_unknown_method_is_app_error(sim: Simulator, network: Network):
    client, _server = make_pair(network)
    with pytest.raises(AppError) as exc:
        sim.run(client.call("server", "nope"))
    assert exc.value.code == "NO_SUCH_METHOD"


def test_handler_app_error_propagates(sim: Simulator, network: Network):
    client, server = make_pair(network)
    def handler(args, ctx):
        raise AppError("NOT_OWNER", {"partition": 3})
    server.register("write", handler)
    with pytest.raises(AppError) as exc:
        sim.run(client.call("server", "write", {}))
    assert exc.value.code == "NOT_OWNER"
    assert exc.value.info == {"partition": 3}


def test_handler_crash_becomes_remote_error(sim: Simulator, network: Network):
    client, server = make_pair(network)
    def handler(args, ctx):
        raise KeyError("boom")
    server.register("bad", handler)
    with pytest.raises(RemoteError, match="KeyError"):
        sim.run(client.call("server", "bad"))


def test_timeout_fires_without_response(sim: Simulator, network: Network):
    client, server = make_pair(network)
    def handler(args, ctx):
        def slow():
            yield sim.timeout(1000.0)
            return "late"
        return slow()
    server.register("slow", handler)
    with pytest.raises(RpcTimeout):
        sim.run(client.call("server", "slow", timeout=10.0))


def test_late_response_after_timeout_is_ignored(sim: Simulator, network: Network):
    client, server = make_pair(network)
    def handler(args, ctx):
        def slow():
            yield sim.timeout(50.0)
            return "late"
        return slow()
    server.register("slow", handler)
    call = client.call("server", "slow", timeout=10.0)
    with pytest.raises(RpcTimeout):
        sim.run(call)
    sim.run()  # the late response arrives; must not blow up


def test_generator_handler_auto_reply(sim: Simulator, network: Network):
    client, server = make_pair(network)
    def handler(args, ctx):
        def work():
            yield sim.timeout(5.0)
            return args * 2
        return work()
    server.register("double", handler)
    assert sim.run(client.call("server", "double", 21)) == 42
    assert sim.now == 9.0  # 2 + 5 + 2


def test_early_reply_then_continue(sim: Simulator, network: Network):
    """The speculative-master pattern: reply, then keep working."""
    client, server = make_pair(network)
    background_done = []
    def handler(args, ctx):
        def work():
            ctx.reply("fast-ack")
            yield sim.timeout(100.0)  # simulated backup sync
            background_done.append(sim.now)
        return work()
    server.register("update", handler)
    result = sim.run(client.call("server", "update"))
    assert result == "fast-ack"
    assert sim.now == 4.0  # client saw 1 RTT
    assert background_done == []  # sync still running
    sim.run()
    assert background_done == [102.0]


def test_crashed_server_never_replies(sim: Simulator, network: Network):
    client, server = make_pair(network)
    def handler(args, ctx):
        def work():
            yield sim.timeout(50.0)
            return "done"
        return work()
    server.register("w", handler)
    call = client.call("server", "w", timeout=200.0)
    sim.schedule_callback(10.0, server.host.crash)
    with pytest.raises(RpcTimeout):
        sim.run(call)


def test_crash_mid_handler_after_early_reply(sim: Simulator, network: Network):
    """Reply already went out; crash kills only the background part."""
    client, server = make_pair(network)
    side_effects = []
    def handler(args, ctx):
        def work():
            ctx.reply("ok")
            yield sim.timeout(50.0)
            side_effects.append("synced")
        return work()
    server.register("u", handler)
    call = client.call("server", "u")
    sim.schedule_callback(10.0, server.host.crash)
    assert sim.run(call) == "ok"
    sim.run()
    assert side_effects == []


def test_duplicate_registration_rejected(sim: Simulator, network: Network):
    _client, server = make_pair(network)
    server.register("m", lambda a, c: None)
    with pytest.raises(ValueError):
        server.register("m", lambda a, c: None)


def test_concurrent_calls_matched_by_seq(sim: Simulator, network: Network):
    client, server = make_pair(network)
    def handler(args, ctx):
        def work():
            yield sim.timeout(float(args))
            return args
        return work()
    server.register("sleep", handler)
    calls = [client.call("server", "sleep", d) for d in (30.0, 10.0, 20.0)]
    results = sim.run(sim.all_of(calls))
    assert [results[c] for c in calls] == [30.0, 10.0, 20.0]


def test_reply_twice_is_error(sim: Simulator, network: Network):
    client, server = make_pair(network)
    def handler(args, ctx):
        ctx.reply(1)
        with pytest.raises(RuntimeError):
            ctx.reply(2)
        return None
    server.register("m", handler)
    assert sim.run(client.call("server", "m")) == 1
