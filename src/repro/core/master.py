"""The CURP master (§3.2.3, §4.3–4.5) and the paper's baselines.

One class implements all four replication modes of the evaluation
(CURP / SYNC "Original" / ASYNC / UNREPLICATED) so that every mode pays
identical execution and dispatch costs and benchmark deltas isolate the
protocol itself.

CURP-mode data path for an update:

1. RIFL filter (duplicate → answer from the completion record).
2. Commutativity check: does the operation touch any *unsynced* object
   (log position > last synced position, §4.3)?
3. Execute and append to the log.
4. No conflict → reply immediately, ``synced=False`` (speculative,
   1 RTT for the client) and let the batched sync pick the entry up.
   Conflict → sync through this entry first, reply ``synced=True``
   (client skips witnesses/sync RPC even if a witness rejected,
   §3.2.3).
5. Backup syncs run in a single background process, batched up to
   ``min_sync_batch`` (§4.4); each completed sync garbage-collects the
   synced requests from all witnesses (§4.5) and handles any
   uncollected-garbage suspects the witnesses report back.

Workers: a small pool executes operations; in SYNC mode the worker is
*held* through the backup round trip, modelling RAMCloud's polling
loops that §4.4 blames for wasted cycles — this is what caps the
"Original" throughput line in Figures 6 and 12.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.config import CurpConfig, ReplicationMode
from repro.core.messages import (
    AbsorbPartitionArgs,
    GcArgs,
    GcBatchArgs,
    LoadReport,
    ReadArgs,
    RecordedRequest,
    RETRY_LATER,
    TxnResolveArgs,
    UpdateArgs,
    UpdateReply,
)
from repro.kvstore.backup import ReplicateArgs
from repro.kvstore.hashing import key_hash
from repro.kvstore.operations import (
    Operation,
    Read,
    TxnCompensate,
    TxnPrepare,
)
from repro.kvstore.store import KVStore
from repro.rifl import DuplicateState, ResultRegistry
from repro.rpc import AppError, RpcError, RpcTimeout, RpcTransport
from repro.sim.events import AllOf, QuorumEvent

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.rifl.lease import LeaseServer
    from repro.sim.resources import Resource

FULL_RANGE: tuple[tuple[int, int], ...] = ((0, 2 ** 64),)

#: wire-size model for the §5.2 traffic accounting, calibrated to the
#: paper's 100 B-object workloads: a replicated log entry carries the
#: value plus key and metadata; a gc pair is (64-bit hash, RpcId).
ENTRY_WIRE_BYTES = 140
GC_PAIR_WIRE_BYTES = 20
RPC_HEADER_BYTES = 60


@dataclasses.dataclass
class MasterStats:
    """Counters the benchmarks and tests read."""

    updates: int = 0
    reads: int = 0
    speculative_replies: int = 0
    conflict_syncs: int = 0
    syncs: int = 0
    synced_entries: int = 0
    #: gc RPCs actually sent to witnesses — NOT (key hash, RpcId) pairs;
    #: with batching one RPC collects up to ``max_gc_batch`` pairs
    gc_rpcs: int = 0
    #: (key hash, RpcId) pairs shipped for collection (per flush, not
    #: multiplied by the witness fan-out)
    gc_pairs: int = 0
    #: batched-gc flushes (each sends one RPC per witness)
    gc_flushes: int = 0
    #: gc RPCs avoided by merging the batch into a colocated backup's
    #: replicate RPC (config.gc_piggyback — the sending-edge merge)
    gc_rpcs_saved: int = 0
    stale_suspects_handled: int = 0
    duplicates_filtered: int = 0
    hot_key_syncs: int = 0
    #: updates shed with RETRY_LATER at the admission bound
    #: (config.overload.max_queue_depth; 0 unless overload.enabled)
    shed_updates: int = 0
    #: reads shed with RETRY_LATER at the admission bound
    shed_reads: int = 0
    #: cumulative ops bucketed by owned tablet (lo, hi) — harvested from
    #: the per-hash window whenever the coordinator pulls a load report
    tablet_ops: dict = dataclasses.field(default_factory=dict)
    #: load-report windows served to the coordinator's rebalancer
    load_reports: int = 0
    #: cross-shard transaction slices prepared OK (§B.2 saga prepare)
    txns_prepared: int = 0
    #: compensation operations executed (saga unwind of an aborted txn)
    txns_compensated: int = 0
    #: txn_resolve notifications that cleared pending-txn bookkeeping
    txns_resolved: int = 0


class CurpMaster:
    """One master server: executes, orders and replicates updates."""

    def __init__(self, host: "Host", master_id: str, config: CurpConfig,
                 backups: typing.Sequence[str] = (),
                 witnesses: typing.Sequence[str] = (),
                 witness_list_version: int = 0, epoch: int = 0,
                 lease_server: "LeaseServer | None" = None,
                 n_workers: int = 3, execute_time: float = 0.0,
                 owned_ranges: typing.Sequence[tuple[int, int]] = FULL_RANGE,
                 active: bool = True):
        from repro.sim.resources import Resource

        self.host = host
        self.sim = host.sim
        self.master_id = master_id
        self.config = config
        self.backups = list(backups)
        self.witnesses = list(witnesses)
        self.witness_list_version = witness_list_version
        self.epoch = epoch
        self.lease_server = lease_server
        self.owned_ranges = list(owned_ranges)
        #: False until recovery finishes installing this master
        self.active = active
        #: True once a backup fenced us: a newer master exists (§4.7)
        self.deposed = False

        self.store = KVStore()
        self.registry = ResultRegistry()
        #: log position through which backups have acknowledged
        self.synced_position = 0
        self.execute_time = execute_time
        self.workers: "Resource" = Resource(host.sim, capacity=n_workers,
                                            name=f"{master_id}-workers")
        self.stats = MasterStats()

        #: per-key-hash op counts for the current load-report window
        #: (pure bookkeeping: no events, so golden traces are unchanged)
        self._load_by_hash: dict[int, int] = {}

        self._sync_active = False
        self._flush_armed = False
        #: (target position, event) pairs awaiting a sync
        self._sync_waiters: list[tuple[int, typing.Any]] = []
        #: (position, key_hashes, rpc_id) of speculative updates whose
        #: witness records must be garbage collected once synced
        self._pending_gc: list[tuple[int, tuple[int, ...], typing.Any]] = []
        #: durable (key hash, rpc_id) pairs coalesced across sync rounds,
        #: awaiting a batched gc flush (max_gc_batch > 0 only)
        self._gc_ready: list[tuple[int, typing.Any]] = []
        #: sync rounds harvested into _gc_ready since the last flush
        self._gc_rounds_pending = 0
        self._gc_flush_armed = False
        self._gc_flush_active = False

        self.transport = RpcTransport(host)
        self.transport.register("update", self._handle_update)
        self.transport.register("read", self._handle_read)
        self.transport.register("sync", self._handle_sync)
        self.transport.register("update_witness_config",
                                self._handle_update_witness_config)
        self.transport.register("update_backup_config",
                                self._handle_update_backup_config)
        self.transport.register("migrate_out", self._handle_migrate_out)
        self.transport.register("migrate_in", self._handle_migrate_in)
        self.transport.register("absorb_partition",
                                self._handle_absorb_partition)
        self.transport.register("load_report", self._handle_load_report)
        self.transport.register("split_range", self._handle_split_range)
        self.transport.register("merge_ranges", self._handle_merge_ranges)
        self.transport.register("ping", lambda args, ctx: "PONG")
        self.transport.register("depose", self._handle_depose)
        self.transport.register("txn_resolve", self._handle_txn_resolve)
        host.on_crash(self._on_crash)

        if lease_server is not None and config.lease_check_interval > 0:
            host.spawn(self._lease_expiry_loop(), name="lease-gc")

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------
    def owns_hash(self, key_hash_value: int) -> bool:
        return any(lo <= key_hash_value < hi for lo, hi in self.owned_ranges)

    def owns_all(self, keys: typing.Iterable[str]) -> bool:
        return all(self.owns_hash(key_hash(k)) for k in keys)

    # ------------------------------------------------------------------
    # update path
    # ------------------------------------------------------------------
    def _check_serviceable(self) -> None:
        if not self.active:
            raise AppError("NOT_READY", {"master": self.master_id})
        if self.deposed:
            raise AppError("DEPOSED", {"master": self.master_id})

    def _shedding(self) -> bool:
        """Admission control: True when overload defenses are on and the
        worker pool's wait queue is at the bound.  Pure reads of
        existing state — disabled, this is one attribute check and the
        golden traces never see a difference."""
        overload = self.config.overload
        return (overload.enabled
                and self.workers.queue_length >= overload.max_queue_depth)

    def _pushback_info(self) -> dict:
        return {"retry_after": self.config.overload.retry_after,
                "master": self.master_id,
                "queued": self.workers.queue_length}

    def _handle_update(self, args: UpdateArgs, ctx):
        self._check_serviceable()
        op: Operation = args.op
        if not op.is_update:
            raise AppError("BAD_REQUEST", "reads must use the read RPC")
        if not self.owns_all(op.touched_keys()):
            # The client routed with a stale shard map: make it refetch
            # the map from the coordinator and retry.  Routing wins
            # over the witness-version check below — a mis-routed
            # client needs a new map, not this master's witness list.
            raise AppError("WRONG_SHARD", {"master": self.master_id})
        if args.witness_list_version != self.witness_list_version:
            # §3.6: the client recorded on a stale witness list; its
            # records would not be replayed. Make it refetch and retry.
            raise AppError("WRONG_WITNESS_VERSION",
                           {"current": self.witness_list_version})
        # RIFL: piggybacked ack then duplicate filtering.
        self.registry.process_ack(args.rpc_id.client_id, args.ack_seq)
        state, saved = self.registry.check(args.rpc_id)
        if state is DuplicateState.COMPLETED:
            self.stats.duplicates_filtered += 1
            record = self.registry.get(args.rpc_id)
            synced = (record is None
                      or record.log_position <= self.synced_position)
            return UpdateReply(result=saved, synced=synced)
        if state is DuplicateState.STALE:
            # The client already acknowledged this RPC; §4.8 says ignore.
            raise AppError("STALE_RPC", {"rpc_id": str(args.rpc_id)})
        # Admission control (overload.enabled only): shed *after* the
        # duplicate filter — a retry of an already-executed op answers
        # from its completion record above at no worker cost — and
        # *before* the worker queue, so a flash crowd meets a cheap
        # pushback reply instead of an unbounded queue whose delay
        # eventually exceeds every client's patience (collapse).
        if self._shedding():
            self.stats.shed_updates += 1
            raise AppError(RETRY_LATER, self._pushback_info())
        # Per-tablet load accounting (rebalancer input): counters only,
        # no events — virtual-time behaviour is untouched.
        load = self._load_by_hash
        for h in op.key_hashes():
            load[h] = load.get(h, 0) + 1
        if self.config.fast_completion:
            # Callback fast path: no generator process per update.
            self._update_begin(op, args.rpc_id, ctx)
            return RpcTransport.DEFERRED
        return self._update_process(op, args.rpc_id, ctx)

    def _update_process(self, op: Operation, rpc_id, ctx):
        """Generator: execute one update under the mode's rules."""
        mode = self.config.mode
        yield self.workers.request()
        try:
            if self.execute_time > 0:
                yield self.sim.timeout(self.execute_time)
            # Commutativity + hot-key checks look at state *before* the
            # operation mutates it.
            conflict = any(
                self.store.is_unsynced(key, self.synced_position)
                for key in op.touched_keys())
            hot = False
            if self.config.hot_key_window > 0:
                now = self.sim.now
                for key in op.mutated_keys():
                    last = self.store.last_update_time_of(key)
                    if last is not None and now - last <= self.config.hot_key_window:
                        hot = True
                        break
            result, entry = self.store.execute(op, rpc_id=rpc_id,
                                               now=self.sim.now)
            assert entry is not None
            self.registry.record(rpc_id, result, log_position=entry.index)
            self.stats.updates += 1
            self._note_txn_op(op, result)

            if mode is ReplicationMode.UNREPLICATED:
                self.synced_position = self.store.log.end
                ctx.reply(UpdateReply(result=result, synced=True))
                return
            if mode is ReplicationMode.SYNC:
                # Traditional primary-backup: hold the worker (polling)
                # until all backups acknowledge, then reply. 2 RTTs.
                yield self._request_sync(entry.index)
                ctx.reply(UpdateReply(result=result, synced=True))
                return
            # CURP / ASYNC
            if self.config.uses_witnesses:
                self._pending_gc.append(
                    (entry.index, op.key_hashes(), rpc_id))
            if conflict:
                self.stats.conflict_syncs += 1
                yield self._request_sync(entry.index)
                ctx.reply(UpdateReply(result=result, synced=True))
                return
            self.stats.speculative_replies += 1
            ctx.reply(UpdateReply(result=result, synced=False))
        finally:
            self.workers.release()
        # Post-reply sync scheduling (speculative path only).
        unsynced = self.store.log.end - self.synced_position
        if hot:
            self.stats.hot_key_syncs += 1
            self._kick_sync()
        elif unsynced >= self.config.min_sync_batch:
            self._kick_sync()
        else:
            self._arm_flush_timer()

    # ------------------------------------------------------------------
    # update path, callback fast mode (config.fast_completion)
    # ------------------------------------------------------------------
    # The continuation-passing mirror of _update_process: same stages at
    # the same virtual instants, but no generator/process allocation per
    # update.  Continuations crossing an async boundary carry the host
    # incarnation — a crash mid-update must kill the lifecycle exactly
    # as it interrupts the generator path's process.
    def _update_begin(self, op: Operation, rpc_id, ctx) -> None:
        incarnation = self.host.incarnation
        if self.workers.try_acquire():
            self._update_execute(op, rpc_id, ctx, incarnation)
        else:
            self.workers.request().when_done(self._update_granted,
                                             op, rpc_id, ctx, incarnation)

    def _update_granted(self, _grant, op: Operation, rpc_id, ctx,
                        incarnation: int) -> None:
        self._update_execute(op, rpc_id, ctx, incarnation)

    def _gone(self, incarnation: int) -> bool:
        """True when the host crashed since the continuation was armed
        (the generator path's Interrupt, in callback form)."""
        return not self.host.alive or self.host.incarnation != incarnation

    def _update_execute(self, op: Operation, rpc_id, ctx,
                        incarnation: int) -> None:
        if self._gone(incarnation):
            return
        if self.execute_time > 0:
            self.sim.schedule_callback(self.execute_time,
                                       self._update_executed,
                                       op, rpc_id, ctx, incarnation)
        else:
            self._update_executed(op, rpc_id, ctx, incarnation)

    def _update_executed(self, op: Operation, rpc_id, ctx,
                         incarnation: int) -> None:
        if self._gone(incarnation):
            return
        mode = self.config.mode
        hot = False
        try:
            # Commutativity + hot-key checks look at state *before* the
            # operation mutates it.
            conflict = any(
                self.store.is_unsynced(key, self.synced_position)
                for key in op.touched_keys())
            if self.config.hot_key_window > 0:
                now = self.sim.now
                for key in op.mutated_keys():
                    last = self.store.last_update_time_of(key)
                    if last is not None \
                            and now - last <= self.config.hot_key_window:
                        hot = True
                        break
            result, entry = self.store.execute(op, rpc_id=rpc_id,
                                               now=self.sim.now)
            assert entry is not None
            self.registry.record(rpc_id, result, log_position=entry.index)
            self.stats.updates += 1
            self._note_txn_op(op, result)

            if mode is ReplicationMode.UNREPLICATED:
                self.synced_position = self.store.log.end
                ctx.reply(UpdateReply(result=result, synced=True))
                self.workers.release()
                return
            if mode is ReplicationMode.SYNC:
                # Hold the worker through the backup round trip; it is
                # released by the continuation — the polling cost §4.4
                # blames for the "Original" ceiling.
                self._request_sync(entry.index).when_done(
                    self._update_synced_reply, result, ctx, incarnation)
                return
            # CURP / ASYNC
            if self.config.uses_witnesses:
                self._pending_gc.append(
                    (entry.index, op.key_hashes(), rpc_id))
            if conflict:
                self.stats.conflict_syncs += 1
                self._request_sync(entry.index).when_done(
                    self._update_synced_reply, result, ctx, incarnation)
                return
            self.stats.speculative_replies += 1
            ctx.reply(UpdateReply(result=result, synced=False))
        except AppError as error:
            if not ctx.replied:
                ctx.reply_error(error.code, error.info)
            self.workers.release()
            return
        except Exception as error:  # noqa: BLE001 - serialize to caller
            if not ctx.replied:
                ctx.reply_error("REMOTE_ERROR",
                                f"{type(error).__name__}: {error}")
            self.workers.release()
            return
        self.workers.release()
        # Post-reply sync scheduling (speculative path only).
        unsynced = self.store.log.end - self.synced_position
        if hot:
            self.stats.hot_key_syncs += 1
            self._kick_sync()
        elif unsynced >= self.config.min_sync_batch:
            self._kick_sync()
        else:
            self._arm_flush_timer()

    @staticmethod
    def _reply_failure(event, ctx) -> None:
        """Map a failed event to an error reply (the continuation-path
        equivalent of _run_handler_process's error serialization)."""
        if ctx.replied:
            return
        error = event.exception
        if isinstance(error, AppError):
            ctx.reply_error(error.code, error.info)
        else:
            ctx.reply_error("REMOTE_ERROR",
                            f"{type(error).__name__}: {error}")

    def _update_synced_reply(self, event, result, ctx,
                             incarnation: int) -> None:
        """Sync-then-reply continuation (SYNC mode and conflict path)."""
        if self._gone(incarnation):
            return
        if event.ok:
            ctx.reply(UpdateReply(result=result, synced=True))
        else:
            self._reply_failure(event, ctx)
        self.workers.release()

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _handle_read(self, args: ReadArgs, ctx):
        self._check_serviceable()
        if not self.owns_all((args.key,)):
            raise AppError("WRONG_SHARD", {"master": self.master_id})
        if self.config.overload.shed_reads and self._shedding() \
                and not args.probe:
            self.stats.shed_reads += 1
            raise AppError(RETRY_LATER, self._pushback_info())
        h = key_hash(args.key)
        self._load_by_hash[h] = self._load_by_hash.get(h, 0) + 1
        if self.config.fast_completion:
            self._read_begin(args, ctx)
            return RpcTransport.DEFERRED
        return self._read_process(args, ctx)

    def _read_process(self, args: ReadArgs, ctx):
        """Generator: linearizable read at the master.

        Reads *touch* their key (§3.2.3): returning an unsynced value
        would externalize state that might not survive a crash, so an
        unsynced key forces a sync first.  Exception (§A.3):
        ``allow_unsynced`` reads — preparation for a conditional update
        — skip the wait, because the commit's version check revalidates
        them; the version floor raised during recovery guarantees a
        lost value's version is never reissued.
        """
        key = args.key
        yield self.workers.request()
        try:
            if self.execute_time > 0:
                yield self.sim.timeout(self.execute_time)
            self.stats.reads += 1
            if not args.allow_unsynced and \
                    self.store.is_unsynced(key, self.synced_position):
                yield self._request_sync(self.store.last_position_of(key))
            value, _ = self.store.execute(Read(key))
            if args.return_version:
                ctx.reply((value, self.store.version(key)))
            else:
                ctx.reply(value)
        finally:
            self.workers.release()

    # ------------------------------------------------------------------
    # read path, callback fast mode (mirrors _read_process)
    # ------------------------------------------------------------------
    def _read_begin(self, args: ReadArgs, ctx) -> None:
        incarnation = self.host.incarnation
        if self.workers.try_acquire():
            self._read_execute(args, ctx, incarnation)
        else:
            self.workers.request().when_done(self._read_granted,
                                             args, ctx, incarnation)

    def _read_granted(self, _grant, args: ReadArgs, ctx,
                      incarnation: int) -> None:
        self._read_execute(args, ctx, incarnation)

    def _read_execute(self, args: ReadArgs, ctx, incarnation: int) -> None:
        if self._gone(incarnation):
            return
        if self.execute_time > 0:
            self.sim.schedule_callback(self.execute_time,
                                       self._read_executed,
                                       args, ctx, incarnation)
        else:
            self._read_executed(args, ctx, incarnation)

    def _read_executed(self, args: ReadArgs, ctx, incarnation: int) -> None:
        if self._gone(incarnation):
            return
        try:
            self.stats.reads += 1
            if not args.allow_unsynced and \
                    self.store.is_unsynced(args.key, self.synced_position):
                # Worker held through the sync, as in the generator path.
                self._request_sync(
                    self.store.last_position_of(args.key)).when_done(
                    self._read_after_sync, args, ctx, incarnation)
                return
            self._read_reply(args, ctx)
        except Exception as error:  # noqa: BLE001 - serialize to caller
            if not ctx.replied:
                ctx.reply_error("REMOTE_ERROR",
                                f"{type(error).__name__}: {error}")
        self.workers.release()

    def _read_after_sync(self, event, args: ReadArgs, ctx,
                         incarnation: int) -> None:
        if self._gone(incarnation):
            return
        try:
            if event.ok:
                self._read_reply(args, ctx)
            else:
                self._reply_failure(event, ctx)
        finally:
            self.workers.release()

    def _read_reply(self, args: ReadArgs, ctx) -> None:
        value, _ = self.store.execute(Read(args.key))
        if args.return_version:
            ctx.reply((value, self.store.version(args.key)))
        else:
            ctx.reply(value)

    # ------------------------------------------------------------------
    # client slow path
    # ------------------------------------------------------------------
    def _handle_sync(self, args, ctx):
        """Client couldn't record on all witnesses: make state durable."""
        self._check_serviceable()
        if self.config.fast_completion:
            self._request_sync(self.store.log.end).when_done(
                self._sync_rpc_done, ctx, self.host.incarnation)
            return RpcTransport.DEFERRED
        def work():
            yield self._request_sync(self.store.log.end)
            return "SYNCED"
        return work()

    def _sync_rpc_done(self, event, ctx, incarnation: int) -> None:
        if self._gone(incarnation):
            return
        if event.ok:
            ctx.reply("SYNCED")
        else:
            self._reply_failure(event, ctx)

    # ------------------------------------------------------------------
    # cross-shard transactions (§B.2)
    # ------------------------------------------------------------------
    def _handle_txn_resolve(self, args: TxnResolveArgs, ctx):
        """Fire-and-forget commit notification: the client's cross-shard
        transaction committed on every shard, so this shard's pending
        bookkeeping can go.  Deliberately no serviceability check — the
        map is advisory (the client carries the undo data), so clearing
        it is harmless in any master state, and a lost notification
        merely leaves a stale entry behind."""
        if self.store.resolve_txn(args.txn_id):
            self.stats.txns_resolved += 1
        return "OK"

    def _note_txn_op(self, op: Operation, result) -> None:
        """Count saga prepares/compensations (two cheap isinstance
        checks per update; no events, golden traces unchanged)."""
        if isinstance(op, TxnPrepare):
            if result[0] == "OK":
                self.stats.txns_prepared += 1
        elif isinstance(op, TxnCompensate):
            self.stats.txns_compensated += 1

    # ------------------------------------------------------------------
    # sync machinery
    # ------------------------------------------------------------------
    def _request_sync(self, target: int):
        """Event that triggers once synced_position >= target."""
        done = self.sim.event()
        if not self.config.uses_backups:
            # No backups: everything is trivially "synced".
            self.synced_position = self.store.log.end
            done.succeed()
            return done
        if self.synced_position >= target:
            done.succeed()
            return done
        self._sync_waiters.append((target, done))
        self._kick_sync()
        return done

    def _kick_sync(self) -> None:
        if (self._sync_active or self.deposed or not self.host.alive
                or not self.config.uses_backups):
            return
        if self.synced_position >= self.store.log.end:
            return
        self._sync_active = True
        self.host.spawn(self._sync_process(), name="sync")

    def _sync_process(self):
        """Background replication loop: one outstanding sync at a time
        (matching RAMCloud), batching whatever accumulated (§4.4)."""
        try:
            while (self.synced_position < self.store.log.end
                   and not self.deposed):
                entries = tuple(self.store.log.entries_after(
                    self.synced_position))
                args = ReplicateArgs(master_id=self.master_id,
                                     epoch=self.epoch, entries=entries)
                wire_size = RPC_HEADER_BYTES + ENTRY_WIRE_BYTES * len(entries)
                # Sending-edge gc merge (config.gc_piggyback): witnesses
                # colocated on our backup hosts get the ready gc chunk
                # inside that host's replicate RPC — one RPC to the
                # shared host where a standalone gc_batch would have
                # been the second.  Pairs in _gc_ready are durable from
                # *previous* rounds, so shipping them with this round's
                # entries is safe.  (config.frame_coalescing subsumes
                # the transport half of this: a replicate and a
                # same-instant gc_batch to one host share a NIC frame
                # even without piggybacking — but the piggyback still
                # saves the second *RPC*, not just the second frame.)
                batch, rounds, riders, standalone = self._take_piggyback()
                gc_args = None
                if batch:
                    gc_args = ReplicateArgs(
                        master_id=self.master_id, epoch=self.epoch,
                        entries=entries, gc_pairs=batch, gc_rounds=rounds)
                    gc_wire_size = (wire_size
                                    + GC_PAIR_WIRE_BYTES * len(batch))
                acks: list = []
                if self.config.fast_completion:
                    # Callback fan-out: acks land in the join straight
                    # from response delivery; fail_fast reproduces
                    # AllOf's first-error contract.
                    join = QuorumEvent(self.sim, len(self.backups),
                                       fail_fast=True)
                    acks = join.results
                    for index, backup in enumerate(self.backups):
                        if backup in riders:
                            self.transport.call_cb(
                                backup, "replicate", gc_args,
                                join.child_result, index,
                                timeout=self.config.rpc_timeout,
                                request_size=gc_wire_size)
                        else:
                            self.transport.call_cb(
                                backup, "replicate", args,
                                join.child_result, index,
                                timeout=self.config.rpc_timeout,
                                request_size=wire_size)
                else:
                    calls = [self.transport.call(
                        backup, "replicate",
                        gc_args if backup in riders else args,
                        timeout=self.config.rpc_timeout,
                        request_size=(gc_wire_size if backup in riders
                                      else wire_size))
                        for backup in self.backups]
                    join = AllOf(self.sim, calls)
                try:
                    yield join
                except AppError as error:
                    self._requeue_piggyback(batch, rounds)
                    if error.code == "FENCED":
                        self._become_deposed()
                        return
                    raise
                except RpcTimeout:
                    # A backup is unreachable; durability requires all f
                    # acks, so retry (the coordinator replaces dead
                    # backups out of band).  Re-queue the merged gc
                    # chunk: a witness that did receive it treats the
                    # re-send as a no-op.
                    self._requeue_piggyback(batch, rounds)
                    continue
                if not self.config.fast_completion:
                    acks = [call.value for call in calls]
                self.synced_position = entries[-1].index
                self.stats.syncs += 1
                self.stats.synced_entries += len(entries)
                self._wake_sync_waiters()
                if batch:
                    self.stats.gc_pairs += len(batch)
                    self.stats.gc_flushes += 1
                    self.stats.gc_rpcs_saved += len(riders)
                    # Stale suspects ride the merged acks' return leg;
                    # standalone gc covers the non-colocated witnesses.
                    for backup, ack in zip(self.backups, acks):
                        if backup in riders and type(ack) is tuple:
                            for request in ack[1]:
                                self._handle_stale_suspect(request)
                    if standalone:
                        self.stats.gc_rpcs += len(standalone)
                        yield from self._gc_fanout(
                            "gc_batch",
                            GcBatchArgs(master_id=self.master_id,
                                        pairs=batch, rounds=rounds),
                            RPC_HEADER_BYTES
                            + GC_PAIR_WIRE_BYTES * len(batch),
                            standalone)
                if self.config.uses_witnesses and self.witnesses:
                    if self.config.max_gc_batch == 0:
                        # Per-round cadence: one gc RPC per witness per
                        # completed sync round (§4.5, the paper's shape).
                        yield from self._gc_witnesses()
                    else:
                        # Batched cadence: coalesce durable pairs across
                        # rounds; only full batches flush inline, the
                        # rest ride the gc flush timer.
                        self._harvest_gc()
                        if (len(self._gc_ready)
                                >= self.config.max_gc_batch):
                            yield from self._flush_gc(full_only=True)
                # Between rounds, honour the minimum batch (§4.4/C.1):
                # unless someone is blocked waiting, don't start another
                # sync until min_sync_batch operations accumulated (the
                # idle-flush timer covers stragglers).
                if (not self._sync_waiters
                        and self.store.log.end - self.synced_position
                        < self.config.min_sync_batch):
                    break
            if self._gc_ready:
                self._arm_gc_flush_timer()
        finally:
            self._sync_active = False
        if self.synced_position < self.store.log.end:
            self._arm_flush_timer()

    def _take_piggyback(self):
        """Carve this sync round's merged gc chunk (config.gc_piggyback).

        Returns ``(batch, rounds, riders, standalone)``: the durable
        (key hash, RpcId) pairs to ship, the coalesced round count,
        the witnesses that receive them inside their colocated backup's
        replicate RPC, and the witnesses still needing a standalone
        ``gc_batch``.  Empty batch = nothing to merge this round.
        """
        if (not self.config.gc_piggyback or not self._gc_ready
                or not self.config.uses_witnesses or not self.witnesses):
            return (), 0, frozenset(), ()
        riders = frozenset(witness for witness in self.witnesses
                           if witness in self.backups)
        if not riders:
            return (), 0, frozenset(), ()
        limit = self.config.max_gc_batch or len(self._gc_ready)
        batch = tuple(self._gc_ready[:limit])
        del self._gc_ready[:len(batch)]
        rounds = self._gc_rounds_pending
        self._gc_rounds_pending = 0
        standalone = tuple(witness for witness in self.witnesses
                           if witness not in riders)
        return batch, rounds, riders, standalone

    def _requeue_piggyback(self, batch, _rounds: int) -> None:
        """Put a merged chunk back after a failed sync round.

        Witnesses that already applied it treat the re-sent *pairs* as
        a no-op, but their stale-suspect clock advanced — so the
        shipped ``rounds`` count is deliberately dropped rather than
        restored.  A witness the failed round never reached under-ages
        by that one round, which errs on the side of *fewer* premature
        stale suspects; restoring it would double-age the witnesses
        that did apply the batch."""
        if batch:
            self._gc_ready[:0] = batch

    def _wake_sync_waiters(self) -> None:
        still_waiting = []
        for target, event in self._sync_waiters:
            if target <= self.synced_position:
                event.succeed()
            else:
                still_waiting.append((target, event))
        self._sync_waiters = still_waiting

    def _handle_depose(self, epoch: int, ctx) -> str:
        """Coordinator → replaced master, after a recovery goes live.

        Backup fencing (§4.7) already guarantees no zombie sync can
        complete, but a zombie that cannot *reach* its backups (e.g. a
        one-way partition — the very fault that got it replaced) never
        sees FENCED and would keep shedding clients with retryable
        pushback forever.  This direct notice makes it answer DEPOSED
        so clients refresh their view and find the new master.  The
        epoch guard keeps a delayed depose from killing a newer master
        recovered back onto the same host."""
        if epoch > self.epoch and not self.deposed:
            self._become_deposed()
        return "OK"

    def _become_deposed(self) -> None:
        """A backup fenced us: a recovery replaced this master (§4.7)."""
        self.deposed = True
        waiters, self._sync_waiters = self._sync_waiters, []
        for _target, event in waiters:
            event.fail(AppError("DEPOSED", {"master": self.master_id}))

    def _take_durable_gc_pairs(self) -> list[tuple[int, typing.Any]]:
        """Split _pending_gc on durability: return the (key hash,
        rpc_id) pairs whose log entries are synced, keep the rest."""
        pairs: list[tuple[int, typing.Any]] = []
        remaining = []
        for position, hashes, rpc_id in self._pending_gc:
            if position <= self.synced_position:
                pairs.extend((key_hash_value, rpc_id)
                             for key_hash_value in hashes)
            else:
                remaining.append((position, hashes, rpc_id))
        self._pending_gc = remaining
        return pairs

    def _gc_witnesses(self):
        """Drop newly-synced requests from all witnesses (§3.5, §4.5)."""
        pairs = self._take_durable_gc_pairs()
        if not pairs:
            return
        args = GcArgs(master_id=self.master_id, pairs=tuple(pairs))
        wire_size = RPC_HEADER_BYTES + GC_PAIR_WIRE_BYTES * len(pairs)
        self.stats.gc_rpcs += len(self.witnesses)
        self.stats.gc_pairs += len(pairs)
        self.stats.gc_flushes += 1
        yield from self._gc_fanout("gc", args, wire_size, self.witnesses)

    def _gc_fanout(self, method: str, args, wire_size: int,
                   witnesses: typing.Sequence[str]):
        """Generator: one gc RPC per witness, suspects handled as the
        replies land; unreachable witnesses are skipped (the coordinator
        replaces them out of band)."""
        if self.config.fast_completion:
            join = QuorumEvent(self.sim, len(witnesses))
            for index, witness in enumerate(witnesses):
                self.transport.call_cb(witness, method, args,
                                       join.child_result, index,
                                       timeout=self.config.rpc_timeout,
                                       request_size=wire_size)
            results = yield join
            for stale in results:
                if isinstance(stale, BaseException):
                    continue  # witness down/replaced
                for request in stale:
                    self._handle_stale_suspect(request)
            return
        calls = [self.transport.call(witness, method, args,
                                     timeout=self.config.rpc_timeout,
                                     request_size=wire_size)
                 for witness in witnesses]
        for call in calls:
            try:
                stale = yield call
            except RpcError:
                continue  # witness down/replaced; coordinator handles it
            for request in stale:
                self._handle_stale_suspect(request)

    # ------------------------------------------------------------------
    # batched gc (max_gc_batch > 0)
    # ------------------------------------------------------------------
    def _harvest_gc(self) -> None:
        """Move pairs whose log entries are now durable into the ready
        buffer.  Each harvest with pairs counts as one gc 'round' for
        the witnesses' stale-suspect aging clock."""
        pairs = self._take_durable_gc_pairs()
        if pairs:
            self._gc_ready.extend(pairs)
            self._gc_rounds_pending += 1

    def _flush_gc(self, full_only: bool = False):
        """Generator: drain the ready buffer as ``gc_batch`` RPCs — one
        per witness per chunk of at most ``max_gc_batch`` pairs.

        ``full_only=True`` (the in-sync-loop call) leaves a partial
        chunk in the buffer for the flush timer, so back-to-back syncs
        keep coalescing instead of flushing every round.
        """
        if self._gc_flush_active:
            return
        self._gc_flush_active = True
        try:
            limit = self.config.max_gc_batch or len(self._gc_ready)
            while self._gc_ready and not self.deposed and self.witnesses:
                if full_only and len(self._gc_ready) < limit:
                    return
                batch = tuple(self._gc_ready[:limit])
                del self._gc_ready[:len(batch)]
                rounds = self._gc_rounds_pending
                self._gc_rounds_pending = 0
                args = GcBatchArgs(master_id=self.master_id, pairs=batch,
                                   rounds=rounds)
                wire_size = (RPC_HEADER_BYTES
                             + GC_PAIR_WIRE_BYTES * len(batch))
                self.stats.gc_rpcs += len(self.witnesses)
                self.stats.gc_pairs += len(batch)
                self.stats.gc_flushes += 1
                yield from self._gc_fanout("gc_batch", args, wire_size,
                                           self.witnesses)
        finally:
            self._gc_flush_active = False

    def _arm_gc_flush_timer(self) -> None:
        """One-shot: flush coalesced gc pairs that never fill a batch."""
        if (self._gc_flush_armed or self.deposed or not self.host.alive
                or not self.witnesses):
            return
        self._gc_flush_armed = True
        incarnation = self.host.incarnation

        def fire() -> None:
            self._gc_flush_armed = False
            if (not self.host.alive or self.host.incarnation != incarnation
                    or self.deposed or not self._gc_ready):
                return
            self.host.spawn(self._flush_gc(), name="gc-flush")
        self.sim.schedule_callback(self.config.gc_flush_delay, fire)

    def _handle_stale_suspect(self, request: RecordedRequest) -> None:
        """§4.5: a witness reports an uncollected record (its client
        probably crashed before reaching us).  Retry it through RIFL,
        let the normal sync+gc cycle collect it."""
        self.stats.stale_suspects_handled += 1
        state, _ = self.registry.check(request.rpc_id)
        if state is DuplicateState.NEW and self.owns_all(
                request.op.touched_keys()):
            result, entry = self.store.execute(request.op,
                                               rpc_id=request.rpc_id,
                                               now=self.sim.now)
            if entry is not None:
                self.registry.record(request.rpc_id, result,
                                     log_position=entry.index)
                self._pending_gc.append(
                    (entry.index, request.op.key_hashes(), request.rpc_id))
                self._arm_flush_timer()
        else:
            # Already executed (or foreign): the data is durable, so the
            # slot can be collected right away — waiting for the next
            # sync could leave the orphan pinned forever on an idle
            # master.
            pairs = tuple((key_hash_value, request.rpc_id)
                          for key_hash_value in request.op.key_hashes())
            if self.config.max_gc_batch > 0:
                self._gc_ready.extend(pairs)
                self._arm_gc_flush_timer()
            else:
                self.host.spawn(self._send_gc_round(pairs), name="orphan-gc")

    def _send_gc_round(self, pairs):
        """One explicit gc round (outside the sync loop)."""
        args = GcArgs(master_id=self.master_id, pairs=pairs)
        self.stats.gc_pairs += len(pairs)
        self.stats.gc_flushes += 1
        for witness in list(self.witnesses):
            self.stats.gc_rpcs += 1
            try:
                stale = yield self.transport.call(
                    witness, "gc", args, timeout=self.config.rpc_timeout)
            except RpcError:
                continue
            for request in stale:
                self._handle_stale_suspect(request)

    def _arm_flush_timer(self) -> None:
        """One-shot: flush stragglers that never fill a batch."""
        if (self._flush_armed or not self.config.uses_backups
                or self.deposed or not self.host.alive):
            return
        self._flush_armed = True
        incarnation = self.host.incarnation

        def check() -> None:
            self._flush_armed = False
            if (not self.host.alive or self.host.incarnation != incarnation
                    or self.deposed):
                return
            if self.synced_position < self.store.log.end:
                self._kick_sync()
        self.sim.schedule_callback(self.config.idle_sync_delay, check)

    # ------------------------------------------------------------------
    # reconfiguration (§3.6)
    # ------------------------------------------------------------------
    def _handle_update_witness_config(self, args, ctx):
        """Coordinator installed a new witness list: sync first so the
        requests recorded only on the old witnesses are durable, then
        adopt the new list and version.

        ``args`` is ``(witnesses, version)`` or ``(witnesses, version,
        witnesses_reset)``.  ``witnesses_reset=False`` (migration: the
        same witnesses continue with their caches intact, only the
        version moves) keeps the pending-gc bookkeeping — their slots
        still exist and still need collecting.  The default ``True``
        matches witness *replacement*, where the old slots are gone."""
        witnesses, version, *rest = args
        witnesses_reset = rest[0] if rest else True
        def work():
            yield self._request_sync(self.store.log.end)
            self.witnesses = list(witnesses)
            self.witness_list_version = version
            if witnesses_reset:
                self._pending_gc.clear()  # old witnesses' slots are gone
                self._gc_ready.clear()
                self._gc_rounds_pending = 0
            return "OK"
        return work()

    def _handle_update_backup_config(self, args, ctx):
        """Coordinator replaced a backup: bring the newcomer up to date
        with the full log before switching over."""
        new_backups = list(args)
        def work():
            fresh = [b for b in new_backups if b not in self.backups]
            entries = tuple(self.store.log.all_entries())
            for backup in fresh:
                # reset_log, not replicate: the newcomer may carry a
                # stale log from an earlier life.
                replicate = ReplicateArgs(master_id=self.master_id,
                                          epoch=self.epoch, entries=entries)
                yield from self._call_until_ok(backup, "reset_log", replicate)
            self.backups = new_backups
            return "OK"
        return work()

    def _call_until_ok(self, dst: str, method: str, args):
        while True:
            try:
                value = yield self.transport.call(
                    dst, method, args, timeout=self.config.rpc_timeout)
                return value
            except RpcTimeout:
                continue

    def _handle_migrate_out(self, args, ctx):
        """Final step of migration: stop owning [lo, hi), hand objects
        over.  The coordinator already synced+reset witnesses (§3.6)."""
        lo, hi = args
        def work():
            yield self._request_sync(self.store.log.end)
            moved = []
            for key in list(self.store.keys()):
                h = key_hash(key)
                if lo <= h < hi:
                    moved.append((key, self.store.read(key),
                                  self.store.version(key)))
            storage = self.config.storage
            if storage.enabled and storage.migrate_entry_time > 0 and moved:
                # Segment-transfer cost: reading the tablet's objects
                # out of the log-structured store and shipping them is
                # not free once storage is modeled (docs/STORAGE.md).
                yield self.sim.timeout(
                    len(moved) * storage.migrate_entry_time)
            self.owned_ranges = _subtract_range(self.owned_ranges, (lo, hi))
            return tuple(moved)
        return work()

    def _handle_migrate_in(self, args, ctx):
        lo, hi, objects = args
        def work():
            for key, value, version in objects:
                self.store.install(key, value, version, now=self.sim.now)
            if (lo, hi) not in self.owned_ranges:
                # Idempotent: a coordinator retry after a lost reply
                # must not create a duplicate tablet (the shard map
                # rejects overlapping tablets).
                self.owned_ranges.append((lo, hi))
            yield self._request_sync(self.store.log.end)
            return "OK"
        return work()

    def _handle_absorb_partition(self, args: AbsorbPartitionArgs, ctx):
        """Partitioned recovery: absorb one partition of a dead
        master's tablets (RAMCloud's recovery-master role).

        Install the backed-up entries for the partition's ranges in log
        order, record their RIFL completions, take ownership, replay
        the witness-recovered speculative requests through the RIFL
        filter, and sync to *this* master's backups before acking —
        re-replication makes the absorbed data durable again, and the
        coordinator only cuts routing over on the ack.  Idempotent for
        coordinator retries: installs preserve versions and the replay
        is filtered by the completion records the first attempt wrote.
        """
        self._check_serviceable()

        def work():
            storage = self.config.storage
            entries = sorted(args.entries, key=lambda e: e.index)
            if storage.enabled and storage.replay_entry_time > 0 and entries:
                # Replay CPU — the term that partitioning across k
                # recovery masters divides by k.
                yield self.sim.timeout(
                    len(entries) * storage.replay_entry_time)
            installed = 0
            for entry in entries:
                for key, value, version in entry.effects:
                    h = key_hash(key)
                    if any(lo <= h < hi for lo, hi in args.ranges):
                        self.store.install(key, value, version,
                                           now=self.sim.now)
                        installed += 1
                if entry.rpc_id is not None:
                    state, _ = self.registry.check(entry.rpc_id)
                    if state is DuplicateState.NEW:
                        self.registry.record(
                            entry.rpc_id, entry.result,
                            log_position=self.store.log.end)
            # Anti-ABA (RAMCloud's safeVersion): speculative writes the
            # dead master lost consumed versions beyond what its
            # backups saw; never reissue them for absorbed keys.
            self.store.raise_version_floor(
                self.store.max_version_seen + 10_000)
            for lo, hi in args.ranges:
                if (lo, hi) not in self.owned_ranges:
                    self.owned_ranges.append((lo, hi))
            replayed = 0
            filtered = 0
            self.registry.begin_recovery()  # §4.8: ignore piggybacked acks
            try:
                for request in args.requests:
                    op = request.op
                    if not self.owns_all(op.touched_keys()):
                        filtered += 1  # migrated-away keys (§3.6 filter)
                        continue
                    state, _ = self.registry.check(request.rpc_id)
                    if state is not DuplicateState.NEW:
                        filtered += 1  # already durable in the backup log
                        continue
                    result, entry = self.store.execute(
                        op, rpc_id=request.rpc_id, now=self.sim.now)
                    if entry is not None:
                        self.registry.record(request.rpc_id, result,
                                             log_position=entry.index)
                    replayed += 1
            finally:
                self.registry.end_recovery()
            if self.config.uses_backups:
                yield self._request_sync(self.store.log.end)
            return {"installed": installed, "replayed": replayed,
                    "filtered": filtered}
        return work()

    # ------------------------------------------------------------------
    # load accounting + tablet bookkeeping (rebalancer-facing)
    # ------------------------------------------------------------------
    def _handle_load_report(self, args, ctx) -> LoadReport:
        """One load window: per-tablet totals + the per-hash histogram
        the rebalancer splits on.  Pulling the report resets the window
        (and folds it into the cumulative ``stats.tablet_ops``).

        The reset is deliberate even though the reply might be lost in
        flight: load windows are advisory, and a hot master that loses
        one report re-accumulates from live traffic within a single
        ``rebalance_interval`` — the rebalancer just acts one round
        later.  Acknowledged-delivery bookkeeping would buy nothing
        but complexity here."""
        window, self._load_by_hash = self._load_by_hash, {}
        per_tablet = {tablet: 0 for tablet in self.owned_ranges}
        hash_ops = []
        total = 0
        for key_hash_value, count in sorted(window.items()):
            for tablet in self.owned_ranges:
                if tablet[0] <= key_hash_value < tablet[1]:
                    per_tablet[tablet] += count
                    hash_ops.append((key_hash_value, count))
                    total += count
                    break
            # hashes outside every owned range (just migrated out) are
            # dropped: they are the new owner's load now
        for tablet, count in per_tablet.items():
            self.stats.tablet_ops[tablet] = (
                self.stats.tablet_ops.get(tablet, 0) + count)
        self.stats.load_reports += 1
        return LoadReport(master_id=self.master_id,
                          tablet_ops=tuple(per_tablet.items()),
                          hash_ops=tuple(hash_ops),
                          window_ops=total)

    def _handle_split_range(self, args, ctx) -> str:
        """Split owned tablet [lo, hi) at ``split`` (pure bookkeeping:
        ownership of every hash is unchanged, so no data moves and no
        sync is needed — the split only creates the boundary a
        subsequent ``migrate_out`` cuts along)."""
        lo, hi, split = args
        if (lo, hi) not in self.owned_ranges:
            if ((lo, split) in self.owned_ranges
                    and (split, hi) in self.owned_ranges):
                return "OK"  # idempotent coordinator retry
            raise AppError("BAD_SPLIT", {"range": (lo, hi),
                                         "owned": tuple(self.owned_ranges)})
        if not lo < split < hi:
            raise AppError("BAD_SPLIT", {"range": (lo, hi), "split": split})
        index = self.owned_ranges.index((lo, hi))
        self.owned_ranges[index:index + 1] = [(lo, split), (split, hi)]
        return "OK"

    def _handle_merge_ranges(self, args, ctx) -> tuple[tuple[int, int], ...]:
        """Coalesce adjacent owned ranges (the inverse bookkeeping of
        split; keeps long split/migrate histories from growing the
        ownership list without bound)."""
        self.owned_ranges = _coalesce_ranges(self.owned_ranges)
        return tuple(self.owned_ranges)

    # ------------------------------------------------------------------
    # lease expiry (§4.8 modification 2)
    # ------------------------------------------------------------------
    def _lease_expiry_loop(self):
        while True:
            yield self.sim.timeout(self.config.lease_check_interval)
            if self.deposed or self.lease_server is None:
                return
            expired = [cid for cid in self.lease_server.expired_clients()]
            if not expired:
                continue
            # Sync *before* dropping records: a witness replay of this
            # client's requests must still be filtered afterwards.
            yield self._request_sync(self.store.log.end)
            for client_id in expired:
                self.registry.expire_client(client_id)
                self.lease_server.drop(client_id)

    # ------------------------------------------------------------------
    # crash
    # ------------------------------------------------------------------
    def _on_crash(self) -> None:
        """Masters are volatile: everything but the backups' logs and
        the witnesses' NVM dies with the process."""
        self.active = False
        waiters, self._sync_waiters = self._sync_waiters, []
        del waiters  # their processes were interrupted with the host
        self._sync_active = False
        self._gc_ready.clear()
        self._gc_rounds_pending = 0
        self._gc_flush_armed = False
        self._gc_flush_active = False

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def unsynced_count(self) -> int:
        return self.store.log.end - self.synced_position


def _coalesce_ranges(ranges: typing.Sequence[tuple[int, int]]
                     ) -> list[tuple[int, int]]:
    """Sort [lo, hi) ranges and merge the adjacent/overlapping ones."""
    merged: list[tuple[int, int]] = []
    for lo, hi in sorted(ranges):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _subtract_range(ranges: list[tuple[int, int]],
                    cut: tuple[int, int]) -> list[tuple[int, int]]:
    """Remove [cut_lo, cut_hi) from a list of [lo, hi) ranges."""
    cut_lo, cut_hi = cut
    result: list[tuple[int, int]] = []
    for lo, hi in ranges:
        if cut_hi <= lo or hi <= cut_lo:
            result.append((lo, hi))
            continue
        if lo < cut_lo:
            result.append((lo, cut_lo))
        if cut_hi < hi:
            result.append((cut_hi, hi))
    return result
