"""Cross-partition mailbox: the serialized half of a partitioned Network.

Parallel discrete-event simulation (ISSUE 9) splits the cluster into
per-shard partitions, each running its own :class:`Simulator`.  Traffic
*within* a partition uses the normal in-memory delivery path; traffic
*between* partitions cannot — the destination's heap lives in another
worker (possibly another process).  The mailbox is that boundary:

- the sending partition's :class:`~repro.net.network.Network` runs its
  full transmission pipeline (stats, taps, partitions, fault verdicts,
  drop rolls, latency sample) and, instead of scheduling a delivery,
  deposits a latency-stamped :class:`Envelope` in the outbox;
- the partition runner collects outboxes at every conservative-window
  barrier, routes envelopes to their destination partitions, and each
  receiving mailbox schedules them into its own simulator.

Conservative lookahead makes this safe: with windows no longer than the
minimum inter-partition wire latency, a message sent during window
``[T, T+L)`` carries ``deliver_at >= T + L``, i.e. it lands at or after
the barrier where it is imported — never in the receiver's past.  The
:class:`LookaheadViolation` check turns any breach of that invariant
(a mis-sized window, a latency override below the declared lookahead)
into a loud failure instead of silent causality corruption.

Determinism: envelopes are applied in ``(deliver_at, src_partition,
seq)`` order, a total order independent of arrival interleaving, so a
fixed seed and partition count reproduce identical runs whatever the
worker backend.  Everything in an envelope is picklable (Message and
Frame are slotted plain classes) so the process backend can ship them
over a pipe unchanged.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network


class LookaheadViolation(RuntimeError):
    """An imported envelope's deliver_at precedes the receiver's clock.

    Raised at import time when the conservative-window contract is
    broken — the window was longer than the true minimum cross-partition
    latency (e.g. a per-link override below the declared lookahead).
    """


class Envelope:
    """One cross-partition transmission, latency already applied.

    The sender samples wire latency from its own rng stream (keeping
    the per-partition rng sequences identical to a serial run of the
    same partition) and stamps the absolute delivery time; the receiver
    just schedules delivery at that instant.
    """

    __slots__ = ("deliver_at", "src_partition", "seq", "dst", "payload")

    def __init__(self, deliver_at: float, src_partition: int, seq: int,
                 dst: str, payload: typing.Any):
        self.deliver_at = deliver_at
        self.src_partition = src_partition
        self.seq = seq
        self.dst = dst
        self.payload = payload

    def sort_key(self) -> tuple[float, int, int]:
        return (self.deliver_at, self.src_partition, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Envelope(@{self.deliver_at} p{self.src_partition}"
                f"#{self.seq} -> {self.dst})")


class CrossPartitionMailbox:
    """Outbox + import gate attached to one partition's Network.

    A Network with no mailbox (``network.mailbox is None``, the
    default) behaves exactly as before — the attribute is only
    consulted on the previously-raising unknown-destination path, so
    serial runs and goldens take zero extra branches.
    """

    def __init__(self, network: "Network", partition_id: int):
        self.network = network
        self.partition_id = partition_id
        #: hosts that live in other partitions: name → partition id
        self.remote_hosts: dict[str, int] = {}
        #: name-prefix routes for hosts created *after* build time
        #: (each partition's dynamically-added clients carry a
        #: partition prefix, e.g. ``p2-client7``)
        self.remote_prefixes: list[tuple[str, int]] = []
        #: envelopes produced since the last collect()
        self.outbox: list[Envelope] = []
        self._seq = 0
        # counters for tests / scaling diagnostics
        self.exported = 0
        self.imported = 0
        network.mailbox = self

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def register_remote(self, name: str, partition_id: int) -> None:
        """Declare that ``name`` lives in ``partition_id``."""
        if name in self.network.hosts:
            raise ValueError(f"host is local, not remote: {name}")
        if partition_id == self.partition_id:
            raise ValueError(
                f"cannot register {name} as remote in its own partition")
        self.remote_hosts[name] = partition_id

    def register_remote_prefix(self, prefix: str,
                               partition_id: int) -> None:
        """Route any host whose name starts with ``prefix`` to
        ``partition_id`` — the door for hosts another partition creates
        after build time (its ``new_client`` namespace)."""
        if partition_id == self.partition_id:
            raise ValueError(
                f"cannot route prefix {prefix!r} to its own partition")
        self.remote_prefixes.append((prefix, partition_id))

    def route(self, name: str) -> int | None:
        """Destination partition for ``name``; None = not remote.
        Prefix hits are cached as exact entries."""
        partition_id = self.remote_hosts.get(name)
        if partition_id is not None:
            return partition_id
        for prefix, pid in self.remote_prefixes:
            if name.startswith(prefix):
                self.remote_hosts[name] = pid
                return pid
        return None

    def is_remote(self, name: str) -> bool:
        return self.route(name) is not None

    # ------------------------------------------------------------------
    # export (called by Network on the unknown-destination path)
    # ------------------------------------------------------------------
    def export(self, dst: str, payload: typing.Any,
               deliver_at: float) -> None:
        self._seq += 1
        self.outbox.append(
            Envelope(deliver_at, self.partition_id, self._seq, dst, payload))
        self.exported += 1

    def collect(self) -> list[Envelope]:
        """Drain the outbox (one barrier's worth of exports)."""
        out = self.outbox
        self.outbox = []
        return out

    # ------------------------------------------------------------------
    # import (called by the partition runner at each barrier)
    # ------------------------------------------------------------------
    def apply(self, envelopes: list[Envelope]) -> None:
        """Schedule imported envelopes into this partition's simulator.

        Applied in ``(deliver_at, src_partition, seq)`` order so the
        import sequence — and therefore the receiver's event heap — is
        deterministic regardless of how the runner interleaved the
        senders' outboxes.
        """
        if not envelopes:
            return
        network = self.network
        sim = network.sim
        now = sim.now
        hosts = network.hosts
        for env in sorted(envelopes, key=Envelope.sort_key):
            if env.deliver_at < now:
                raise LookaheadViolation(
                    f"envelope for {env.dst} delivers at {env.deliver_at} "
                    f"but partition {self.partition_id} is already at "
                    f"{now}; the lookahead window exceeds the true "
                    f"minimum cross-partition latency")
            target = hosts.get(env.dst)
            if target is None:
                raise KeyError(
                    f"imported envelope for unknown host {env.dst} in "
                    f"partition {self.partition_id}")
            sim._schedule_deliver(env.deliver_at - now, target, env.payload)
            self.imported += 1
