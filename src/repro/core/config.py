"""Protocol configuration.

One config object drives both CURP and the paper's comparison systems:
``ReplicationMode`` selects between the protocol variants measured in
Figures 5/6/12 ("Original RAMCloud" = SYNC, "Async" = ASYNC,
"Unreplicated" = UNREPLICATED, CURP = CURP).  Keeping them in one
implementation guarantees the baselines pay identical execution and
dispatch costs, so benchmark deltas isolate the protocol difference —
the same methodology the paper uses by implementing CURP inside
RAMCloud itself.
"""

from __future__ import annotations

import dataclasses
import enum


class ReplicationMode(enum.Enum):
    """Which replication protocol a master runs."""

    #: no backups at all; the latency/throughput upper bound
    UNREPLICATED = "unreplicated"
    #: traditional primary-backup: sync to all backups before replying
    SYNC = "sync"
    #: reply before sync, *without* witnesses (fast but unsafe — loses
    #: acknowledged updates on crash; the paper's "Async" line)
    ASYNC = "async"
    #: the paper's protocol: speculative execution + witnesses
    CURP = "curp"


@dataclasses.dataclass
class OverloadConfig:
    """Overload-protection knobs (admission control, pushback,
    per-tenant fairness).

    Everything here is **off by default** (``enabled=False``): the
    defenses add zero events and zero rng draws when disabled, so every
    pre-existing golden trace is byte-identical.  When enabled:

    - masters bound their admission queue: an update/read arriving
      while ``Resource.queue_length`` of the worker pool is already at
      ``max_queue_depth`` is *shed* with a ``RETRY_LATER`` AppError
      carrying a ``retry_after`` hint (µs) instead of joining an
      unbounded queue.  Shedding costs one cheap reply, not a worker;
      the waiting clients that *are* admitted see bounded queue delay
      instead of collapse (goodput stays flat past saturation).
    - clients honor the pushback: a ``RETRY_LATER`` reply backs off by
      the hint (exponentially grown per consecutive pushback, jittered
      via ``sim.rng``) without refetching the cluster view — overload
      is not a routing problem, and hammering the coordinator during a
      flash crowd would just move the collapse there.
    - the shared multi-tenant :class:`~repro.core.witness.
      WitnessEndpoint` applies windowed per-tenant fair admission so
      one hot tenant's record storm cannot starve the other shards'
      1-RTT fast path (an under-fair-share tenant is always admitted).
    - open-loop drivers shrink their in-flight window AIMD-style on
      pushback (``min_window``/``window_decrease``/``window_increase``)
      — the backpressure half of the contract.
    """

    enabled: bool = False
    #: shed updates/reads once this many acquisitions are queued on the
    #: master's worker pool (the admission bound; the workers themselves
    #: stay busy — shedding only caps *waiting*)
    max_queue_depth: int = 64
    #: base retry hint (µs) carried in the RETRY_LATER pushback
    retry_after: float = 200.0
    #: cap for the exponentially-grown client pushback delay (µs)
    retry_after_cap: float = 2_000.0
    #: also shed reads (updates are always subject to the bound)
    shed_reads: bool = True
    #: accounting window (µs) for per-tenant fair admission on a shared
    #: WitnessEndpoint
    witness_window: float = 1_000.0
    #: record admissions per endpoint per window; 0 disables fairness.
    #: A tenant below ``witness_window_records / n_tenants`` is always
    #: admitted; past the global budget, tenants at/over fair share are
    #: rejected (REJECTED → the hot tenant's clients take the 2-RTT
    #: sync path and their AIMD windows shrink).
    witness_window_records: int = 0
    # -- client backpressure (AIMD in-flight window) --------------------
    #: floor for the adaptive in-flight window
    min_window: int = 1
    #: multiplicative shrink factor applied on pushback
    window_decrease: float = 0.5
    #: additive growth per window's worth of clean completions
    window_increase: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.retry_after <= 0:
            raise ValueError("retry_after must be > 0")
        if self.retry_after_cap < self.retry_after:
            raise ValueError("retry_after_cap must be >= retry_after")
        if self.witness_window <= 0:
            raise ValueError("witness_window must be > 0")
        if self.witness_window_records < 0:
            raise ValueError("witness_window_records must be >= 0 "
                             "(0 disables fairness)")
        if self.min_window < 1:
            raise ValueError("min_window must be >= 1")
        if not 0.0 < self.window_decrease < 1.0:
            raise ValueError("window_decrease must be in (0, 1)")
        if self.window_increase <= 0:
            raise ValueError("window_increase must be > 0")


@dataclasses.dataclass
class StorageProfile:
    """Virtual-time cost model for the backups' log-structured store
    (segmented WAL + background compaction, docs/STORAGE.md).

    Everything is **off by default** (``enabled=False``): backups keep
    organising their entries into segments either way (that is pure
    bookkeeping), but with the profile disabled every cost below is
    zero, no cleaner task is spawned, and no rng is consulted — so the
    PR 1–6 golden traces stay byte-identical.  When enabled, every
    durable byte starts costing virtual disk time:

    - ``replicate`` acks wait for the segment append (and any segment
      rotation it triggers) to drain through the backup's single
      virtual disk — the latency CURP hides behind witnesses;
    - the background cleaner rewrites low-live-ratio sealed segments,
      charging read amplification (scan the whole segment) and write
      amplification (rewrite the survivors) on the same disk the
      update path needs;
    - recovery reads are charged per stored entry on each backup's
      disk, which is what makes partitioned recovery's
      read-once/replay-in-parallel shape measurable;
    - tablet migration charges a per-object segment-transfer cost on
      the source master.
    """

    enabled: bool = False
    # -- segment geometry ------------------------------------------------
    #: log entries per segment before the active segment is sealed and
    #: a new one opened (RAMCloud: 8 MB segments; here we count entries
    #: because the simulator's unit of work is the log entry)
    segment_size: int = 128
    # -- write path (µs of disk time) ------------------------------------
    #: disk time to append one log entry to the active segment
    append_time: float = 0.5
    #: disk time to seal a full segment and open a fresh one
    rotation_time: float = 20.0
    # -- read path (µs of disk time) -------------------------------------
    #: disk time to read one *stored* entry back (recovery, compaction
    #: scans — read amplification is this cost times entries scanned)
    read_entry_time: float = 0.3
    # -- background cleaner ----------------------------------------------
    #: cleaner wake-up period (µs); 0 = never spawn the cleaner task
    compaction_interval: float = 0.0
    #: sealed segments whose live-payload ratio drops below this are
    #: cleaned on the next cleaner pass
    compaction_live_ratio: float = 0.5
    #: disk time to rewrite one surviving payload during cleaning
    #: (write amplification = survivors rewritten / payloads reclaimed)
    compaction_write_time: float = 0.5
    # -- recovery master replay ------------------------------------------
    #: CPU time for a recovery master to install one replayed entry
    #: (hash, insert, version bookkeeping); this is the term that
    #: partitioning across k recovery masters divides by k
    replay_entry_time: float = 1.0
    # -- migration ---------------------------------------------------------
    #: per-object segment-transfer cost charged on the source master
    #: during ``migrate_out`` (reading the tablet's objects out of its
    #: backups' segments and shipping them)
    migrate_entry_time: float = 0.0

    def __post_init__(self) -> None:
        if self.segment_size < 1:
            raise ValueError("segment_size must be >= 1")
        if self.append_time < 0:
            raise ValueError("append_time must be >= 0")
        if self.rotation_time < 0:
            raise ValueError("rotation_time must be >= 0")
        if self.read_entry_time < 0:
            raise ValueError("read_entry_time must be >= 0")
        if self.compaction_interval < 0:
            raise ValueError("compaction_interval must be >= 0 "
                             "(0 disables the cleaner)")
        if not 0.0 < self.compaction_live_ratio <= 1.0:
            raise ValueError("compaction_live_ratio must be in (0, 1]")
        if self.compaction_write_time < 0:
            raise ValueError("compaction_write_time must be >= 0")
        if self.replay_entry_time < 0:
            raise ValueError("replay_entry_time must be >= 0")
        if self.migrate_entry_time < 0:
            raise ValueError("migrate_entry_time must be >= 0")


@dataclasses.dataclass
class CurpConfig:
    """Knobs for masters, witnesses and clients."""

    #: fault-tolerance level: number of backups and witnesses (§3.1)
    f: int = 3
    mode: ReplicationMode = ReplicationMode.CURP

    # -- witness geometry (§4.2, §B.1) ---------------------------------
    #: total request slots per witness (paper: 4096 × 2 KB ≈ 9 MB/master)
    witness_slots: int = 4096
    #: set associativity (paper: 4-way after the Figure 11 study)
    witness_associativity: int = 4
    #: gc generations before a surviving record is suspected as
    #: uncollected garbage (§4.5: "three is a good number")
    gc_stale_threshold: int = 3

    # -- master sync batching (§4.4, §C.1) ------------------------------
    #: start a backup sync once this many unsynced ops accumulate
    #: ("masters batch at most 50 operations before syncs")
    min_sync_batch: int = 50
    #: flush unsynced ops after this much quiet time (bounds how long a
    #: witness must hold a record; not varied in the paper's figures)
    idle_sync_delay: float = 200.0
    #: window (µs) for the hot-key heuristic: an update to a key updated
    #: this recently triggers a preemptive sync (§4.4); 0 disables
    hot_key_window: float = 0.0

    # -- witness gc batching -------------------------------------------
    #: 0 = flush witness gc after every completed sync round (one gc RPC
    #: per witness per round — the paper's cadence).  N > 0 = coalesce
    #: ready (key hash, RpcId) pairs across sync rounds and send one
    #: ``gc_batch`` RPC per witness once N pairs accumulate; stragglers
    #: flush after ``gc_flush_delay`` of quiet.  Batching trades a
    #: bounded extra witness-slot hold time for ~max_gc_batch /
    #: min_sync_batch fewer gc RPCs under load.
    max_gc_batch: int = 0
    #: quiet time (µs) before leftover coalesced gc pairs are flushed
    gc_flush_delay: float = 200.0
    #: merge gc batches into same-host sync traffic (requires
    #: max_gc_batch > 0): when a witness is colocated on one of the
    #: master's backup hosts (the Figure 2 deployment), the master
    #: attaches the ready gc chunk to that host's next ``replicate``
    #: RPC instead of sending a standalone ``gc_batch`` — one RPC to
    #: the shared host where there were two.  Saved RPCs are counted
    #: in ``MasterStats.gc_rpcs_saved``.
    gc_piggyback: bool = False

    # -- protocol hot path (docs/PERFORMANCE.md) ------------------------
    #: True = clients and masters run the callback fast path: the
    #: 1 + f CURP fan-out goes through ``RpcTransport.call_cb`` into a
    #: ``QuorumEvent`` and the master's update lifecycle runs
    #: continuation-style, with no generator process or ``AllOf`` dict
    #: per operation.  Virtual-time results are identical to the
    #: generator path (same messages at the same instants); only the
    #: within-instant dispatch sequence — and therefore
    #: ``processed_events`` and wall-clock cost — changes.  False (the
    #: default) keeps the PR 1 golden-trace dispatch order exactly.
    fast_completion: bool = False

    #: True = transport-level frame coalescing: messages a host sends
    #: to one destination within one virtual instant are packed into a
    #: single NIC :class:`~repro.net.message.Frame` at the
    #: end-of-instant flush boundary — one transmission (one delivery
    #: record, one rx dispatch, one latency sample, one drop roll) for
    #: the whole batch, unpacked in send order at the receiver.  The
    #: client's 1 + f fan-out and the master's replicate/gc fan-outs
    #: are the primary producers; pipelined/batched workloads coalesce
    #: hardest (CURP §4 batches syncs and gc the same way, and
    #: commutative operations are exactly the ones safe to pack).
    #: Latency physics change per *frame* (tx_cost and wire latency are
    #: paid once per frame, not per message), so False (the default)
    #: preserves the PR 1/PR 3 golden traces byte-for-byte; the
    #: coalesced path is pinned by its own golden trace.
    frame_coalescing: bool = False

    # -- load-driven tablet rebalancing (§3.6 migration, driven) --------
    #: how often (µs) the coordinator's :class:`~repro.cluster.
    #: rebalancer.Rebalancer` pulls per-tablet load reports from the
    #: masters.  The loop only runs once ``Rebalancer.start()`` (or
    #: ``Cluster.start_rebalancer()``) is called, so the default does
    #: not change any existing trace; 0 disables the loop outright even
    #: if started.
    rebalance_interval: float = 500.0
    #: imbalance trigger: a master is *hot* when its window load
    #: exceeds ``rebalance_threshold`` × the mean master load
    rebalance_threshold: float = 1.5
    #: ignore report windows with fewer total ops than this (noise
    #: floor — don't churn tablets on an idle cluster)
    rebalance_min_ops: int = 100

    # -- client behaviour ------------------------------------------------
    #: per-RPC timeout for client operations
    rpc_timeout: float = 2_000.0
    #: attempts before an update/read raises to the application
    max_attempts: int = 30
    #: backoff between client retries after a timeout/config refresh
    retry_backoff: float = 50.0

    # -- overload protection ---------------------------------------------
    #: admission control, RETRY_LATER pushback and per-tenant fair
    #: witness admission; disabled by default (golden-trace safe)
    overload: OverloadConfig = dataclasses.field(
        default_factory=OverloadConfig)

    # -- durable storage model --------------------------------------------
    #: segmented-WAL cost model for backups + recovery/migration data
    #: movement; disabled by default (golden-trace safe)
    storage: StorageProfile = dataclasses.field(
        default_factory=StorageProfile)

    # -- lease management (§4.8) -----------------------------------------
    lease_check_interval: float = 50_000.0

    def __post_init__(self) -> None:
        if self.f < 0:
            raise ValueError(f"f must be >= 0: {self.f}")
        if self.witness_associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.witness_slots % self.witness_associativity != 0:
            raise ValueError("witness_slots must be a multiple of associativity")
        if self.min_sync_batch < 1:
            raise ValueError("min_sync_batch must be >= 1")
        if self.max_gc_batch < 0:
            raise ValueError("max_gc_batch must be >= 0 (0 disables batching)")
        if self.gc_flush_delay <= 0:
            raise ValueError("gc_flush_delay must be > 0")
        if self.gc_piggyback and self.max_gc_batch == 0:
            raise ValueError("gc_piggyback requires max_gc_batch > 0")
        if self.rebalance_interval < 0:
            raise ValueError("rebalance_interval must be >= 0 (0 disables)")
        if self.rebalance_threshold <= 1.0:
            raise ValueError("rebalance_threshold must be > 1 (a master at "
                             "exactly the mean is not hot)")
        if self.rebalance_min_ops < 1:
            raise ValueError("rebalance_min_ops must be >= 1")
        if self.mode is ReplicationMode.UNREPLICATED and self.f != 0:
            raise ValueError("unreplicated mode requires f=0")

    @property
    def uses_witnesses(self) -> bool:
        return self.mode is ReplicationMode.CURP and self.f > 0

    @property
    def uses_backups(self) -> bool:
        return self.mode is not ReplicationMode.UNREPLICATED and self.f > 0
