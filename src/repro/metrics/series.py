"""Distribution series for the paper's CDF/CCDF figures."""

from __future__ import annotations

import typing


def ccdf_points(samples: typing.Sequence[float],
                points: int = 50) -> list[tuple[float, float]]:
    """Complementary CDF samples: (x, fraction of samples >= x).

    Figures 5 and 7 plot exactly this (log-log).  Points are taken at
    evenly spaced sample ranks so the tail is represented.
    """
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    out = []
    for i in range(points):
        rank = min(n - 1, int(i * n / points))
        fraction = (n - rank) / n
        out.append((ordered[rank], fraction))
    out.append((ordered[-1], 1.0 / n))
    return out


def cdf_points(samples: typing.Sequence[float],
               points: int = 50) -> list[tuple[float, float]]:
    """CDF samples: (x, fraction of samples <= x) — Figure 8's shape."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    out = []
    for i in range(points):
        rank = min(n - 1, int((i + 1) * n / points) - 1)
        out.append((ordered[rank], (rank + 1) / n))
    return out
