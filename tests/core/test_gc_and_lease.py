"""Failure-injection tests: uncollected witness garbage (§4.5) and
lease expiry (§4.8 modification 2)."""

from __future__ import annotations

from repro.core.config import CurpConfig, ReplicationMode
from repro.core.messages import RecordedRequest
from repro.harness import build_cluster
from repro.kvstore import Write, key_hash
from repro.rifl import LeaseServer, RpcId


def curp_cluster(**kwargs):
    defaults = dict(f=3, mode=ReplicationMode.CURP, min_sync_batch=1,
                    idle_sync_delay=50.0, retry_backoff=10.0,
                    rpc_timeout=100.0, gc_stale_threshold=3)
    defaults.update(kwargs)
    return build_cluster(CurpConfig(**defaults))


def test_orphaned_witness_record_eventually_collected():
    """A client crashes after recording on witnesses but before its
    update reaches the master (§4.5's 'uncollected garbage').  The
    witness keeps rejecting writes to that key; after 3 gc rounds it
    reports the orphan, the master executes it through RIFL, syncs, and
    the slot is finally freed."""
    cluster = curp_cluster()
    client = cluster.new_client()
    # Simulate the crashed client: a record present on one witness only.
    orphan_rpc = RpcId(424242, 1)
    orphan_op = Write("X", "orphan-value")
    witness = cluster.coordinator.witness_servers[
        cluster.witness_hosts["m0"][0]]
    witness.cache.record([key_hash("X")], orphan_rpc,
                         RecordedRequest(op=orphan_op, rpc_id=orphan_rpc))
    # Three unrelated writes → three sync+gc rounds age the orphan.
    for i in range(3):
        cluster.run(client.update(Write(f"other{i}", i)))
        cluster.settle(500.0)
    assert witness.cache.occupied_slots() == 1  # orphan still there
    # Now a write to X: the witness rejects (slow path), the rejection
    # marks the orphan as a suspect, and the next gc reports it.
    outcome = cluster.run(client.update(Write("X", "client-value")))
    assert not outcome.fast_path  # rejected at the witness
    cluster.settle(3_000.0)
    master = cluster.master()
    assert master.stats.stale_suspects_handled >= 1
    # The orphan was executed (its client never completed, so a late
    # execution is a valid linearization of a forever-pending op)...
    cluster.settle(3_000.0)
    assert witness.cache.occupied_slots() == 0  # ...and collected.
    # The key is writable on the fast path again.
    outcome = cluster.run(client.update(Write("X", "final")))
    assert outcome.fast_path
    assert cluster.run(client.read("X")) == "final"


def test_orphan_already_executed_is_rifl_filtered():
    """The suspect was executed before (record RPC delayed past the
    master's gc): retry must be filtered, not re-executed."""
    cluster = curp_cluster()
    client = cluster.new_client()
    outcome = cluster.run(client.update(Write("K", "v1")))
    rpc_id = None
    # Find the rpc id the client used.
    master = cluster.master()
    entry = master.store.log.entry(master.store.log.end)
    rpc_id = entry.rpc_id
    cluster.settle(500.0)  # synced + gc'd everywhere
    # A duplicate (delayed) record arrives at one witness now.
    witness = cluster.coordinator.witness_servers[
        cluster.witness_hosts["m0"][0]]
    witness.cache.record([key_hash("K")], rpc_id,
                         RecordedRequest(op=Write("K", "v1"), rpc_id=rpc_id))
    for i in range(3):
        cluster.run(client.update(Write(f"pad{i}", i)))
        cluster.settle(500.0)
    # Conflict → suspect → master retries → RIFL filters (no new entry
    # for K) → gc clears the slot.
    cluster.run(client.update(Write("K", "v2")))
    cluster.settle(3_000.0)
    assert witness.cache.occupied_slots() == 0
    assert cluster.run(client.read("K")) == "v2"  # v1 never re-applied


def test_lease_expiry_syncs_before_dropping_records():
    """§4.8 mod 2: masters must sync before expiring a client lease —
    otherwise a later witness replay of that client's ops would be
    ignored and the ops lost."""
    cluster = curp_cluster(min_sync_batch=1000, idle_sync_delay=1e9,
                           lease_check_interval=5_000.0)
    # Wire a lease server with a short lease into the master directly.
    master = cluster.master()
    lease_server = LeaseServer(cluster.sim, lease_duration=20_000.0)
    master.lease_server = lease_server
    master.host.spawn(master._lease_expiry_loop(), name="lease-gc")
    client = cluster.new_client()
    client_id = lease_server.register_client()  # the lease that expires
    # Make the master hold an unsynced op from that client.
    from repro.core.messages import UpdateArgs
    from repro.rpc import RpcTransport
    caller = RpcTransport(cluster.network.add_host("legacy-client"))
    args = UpdateArgs(op=Write("L", 1), rpc_id=RpcId(client_id, 1),
                      ack_seq=1, witness_list_version=0)
    cluster.run(caller.call("m0-host", "update", args))
    assert master.unsynced_count == 1
    assert master.registry.record_count() == 1
    # Let the lease expire and the expiry loop run.
    cluster.sim.run(until=cluster.sim.now + 60_000.0)
    assert master.registry.record_count() == 0       # records dropped...
    assert master.unsynced_count == 0                # ...but synced first
    assert lease_server.expiry_of(client_id) is None


def test_gc_pairs_cover_multiwrite_all_keys():
    """gc RPCs must clear every slot a multi-object update occupied."""
    from repro.kvstore import MultiWrite
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(MultiWrite((("a", 1), ("b", 2), ("c", 3)))))
    for name in cluster.witness_hosts["m0"]:
        witness = cluster.coordinator.witness_servers[name]
        assert witness.cache.occupied_slots() == 3
    cluster.settle(2_000.0)
    for name in cluster.witness_hosts["m0"]:
        witness = cluster.coordinator.witness_servers[name]
        assert witness.cache.occupied_slots() == 0
