"""Linearizability verification.

The paper's central claim is that CURP keeps updates *linearizable*
while completing them in 1 RTT (§3.4).  This package provides the
machinery to check that claim mechanically:

- :class:`~repro.verify.history.History` — invoke/response event logs
  collected from concurrent simulated clients (crashes included).
- :class:`~repro.verify.checker.check_linearizable` — a Wing & Gong
  style search with per-key partitioning (operations on different keys
  are independent in a KV store, so each key's subhistory is checked
  separately — the standard P-compositionality optimization).
- :mod:`~repro.verify.models` — sequential specifications (register,
  counter) the search executes against.

Integration and property tests crash masters mid-workload, recover
them, and assert every surviving history is linearizable.
"""

from repro.verify.history import History, OpRecord
from repro.verify.models import CounterModel, RegisterModel
from repro.verify.checker import (
    CheckerLimitExceeded,
    LinearizabilityError,
    check_linearizable,
)
from repro.verify.instrument import HistoryClient
from repro.verify.transactions import (
    AtomicityError,
    RecordedCrossShardTransaction,
    TxnTrace,
    audit_atomicity,
)

__all__ = [
    "AtomicityError",
    "CheckerLimitExceeded",
    "CounterModel",
    "History",
    "HistoryClient",
    "LinearizabilityError",
    "OpRecord",
    "RecordedCrossShardTransaction",
    "RegisterModel",
    "TxnTrace",
    "audit_atomicity",
    "check_linearizable",
]
