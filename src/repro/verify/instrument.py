"""History-collecting client wrapper.

Wraps a :class:`~repro.core.client.CurpClient` so every operation is
recorded as an invoke/response pair in a :class:`History`.  Operations
that never complete (client crash, retries exhausted) stay *pending*,
which the checker treats as may-or-may-not-have-happened — exactly the
paper's §3.4 reading of a client crash.
"""

from __future__ import annotations

from repro.core.client import ClientGaveUp, CurpClient
from repro.kvstore.operations import Increment, Operation, Read, Write
from repro.verify.history import History, OpRecord


class HistoryClient:
    """Records every operation a client performs into a shared history."""

    def __init__(self, client: CurpClient, history: History):
        self.client = client
        self.history = history
        self.sim = client.sim

    def _begin(self, op: Operation) -> OpRecord:
        if isinstance(op, Write):
            return self.history.begin(self.client.tracker.client_id,
                                      op.key, "write", op.value, self.sim.now)
        if isinstance(op, Increment):
            return self.history.begin(self.client.tracker.client_id,
                                      op.key, "increment", op.delta,
                                      self.sim.now)
        if isinstance(op, Read):
            return self.history.begin(self.client.tracker.client_id,
                                      op.key, "read", None, self.sim.now)
        raise TypeError(f"unsupported op for history: {op!r}")

    def update(self, op: Operation):
        """Generator: perform + record an update; pending on give-up."""
        record = self._begin(op)
        try:
            outcome = yield from self.client.update(op)
        except ClientGaveUp:
            return None  # stays pending
        self.history.complete(record, outcome.result, self.sim.now)
        return outcome

    def read(self, key: str):
        """Generator: perform + record a linearizable read."""
        record = self._begin(Read(key))
        try:
            value = yield from self.client.read(key)
        except ClientGaveUp:
            return None
        self.history.complete(record, value, self.sim.now)
        return value
