"""Tests for load accounting and the load-driven rebalancer (ISSUE 5)."""

from __future__ import annotations

import pytest

from repro.cluster.rebalancer import Rebalancer, weighted_split_point
from repro.core.config import CurpConfig, ReplicationMode
from repro.core.messages import LoadReport
from repro.harness import build_cluster
from repro.kvstore import Write, key_hash


def sharded_cluster(n_masters=2, **kwargs):
    defaults = dict(f=1, mode=ReplicationMode.CURP, min_sync_batch=10,
                    idle_sync_delay=100.0, rpc_timeout=150.0,
                    retry_backoff=10.0)
    defaults.update(kwargs)
    return build_cluster(CurpConfig(**defaults), n_masters=n_masters)


def keys_for(cluster, shard, count, prefix="key"):
    found = []
    i = 0
    while len(found) < count:
        key = f"{prefix}-{i}"
        if cluster.shard_for(key) == shard:
            found.append(key)
        i += 1
    return found


# ----------------------------------------------------------------------
# per-tablet load accounting on masters
# ----------------------------------------------------------------------
def test_load_report_buckets_by_tablet_and_resets_window():
    cluster = sharded_cluster(n_masters=2)
    client = cluster.new_client()
    m0_keys = keys_for(cluster, "m0", 3)
    for key in m0_keys:
        cluster.run(client.update(Write(key, 1)))
        cluster.run(client.read(key))
    managed = cluster.coordinator.masters["m0"]
    report = cluster.run(cluster.sim.process(_pull_report(cluster, "m0")))
    assert isinstance(report, LoadReport)
    assert report.master_id == "m0"
    assert report.window_ops == 6  # 3 updates + 3 reads
    (tablet, ops), = report.tablet_ops
    assert tablet == tuple(managed.owned_ranges[0])
    assert ops == 6
    assert {h for h, _ in report.hash_ops} \
        == {key_hash(k) for k in m0_keys}
    assert list(report.hash_ops) == sorted(report.hash_ops)
    # Cumulative stats kept; the window itself reset.
    assert cluster.master("m0").stats.tablet_ops[tablet] == 6
    assert cluster.master("m0").stats.load_reports == 1
    again = cluster.run(cluster.sim.process(_pull_report(cluster, "m0")))
    assert again.window_ops == 0
    assert cluster.master("m0").stats.tablet_ops[tablet] == 6


def _pull_report(cluster, master_id):
    managed = cluster.coordinator.masters[master_id]
    report = yield cluster.coordinator.transport.call(
        managed.host, "load_report", None, timeout=1_000.0)
    return report


# ----------------------------------------------------------------------
# split planning
# ----------------------------------------------------------------------
def test_weighted_split_point_is_load_weighted_median():
    histogram = [(10, 1), (20, 1), (30, 6), (40, 1), (50, 1)]
    split, low = weighted_split_point(histogram, target=5.0)
    # Cutting before or after the dominant hash is equidistant from the
    # target (|2-5| == |8-5|); the earlier cut wins ties.
    assert split == 30
    assert low == 2
    # An even histogram cuts in the middle.
    split, low = weighted_split_point([(i, 1) for i in range(10)], 5.0)
    assert split == 5
    assert low == 5
    assert weighted_split_point([(10, 7)], 3.0) is None


def test_plan_move_balances_hot_master():
    cluster = sharded_cluster(n_masters=2)
    rebalancer = Rebalancer(cluster.coordinator, threshold=1.2, min_ops=10)
    lo, hi = cluster.coordinator.masters["m0"].owned_ranges[0]
    mid = (lo + hi) // 2
    hot = LoadReport(master_id="m0",
                     tablet_ops=(((lo, hi), 90),),
                     hash_ops=((lo + 10, 45), (mid, 30), (hi - 10, 15)),
                     window_ops=90)
    cold = LoadReport(master_id="m1", tablet_ops=(), hash_ops=(),
                      window_ops=10)
    plan = rebalancer._plan_move({"m0": hot, "m1": cold})
    assert plan is not None
    hot_id, cold_id, move_lo, move_hi, splits = plan
    assert (hot_id, cold_id) == ("m0", "m1")
    # Budget = min(90-50, 50-10) = 40: the best cut puts the first
    # hash (45 ops) in the moved half.
    assert (move_lo, move_hi) == (lo, mid)
    assert splits == ((lo, hi, mid),)


def test_plan_move_isolates_single_hot_key():
    cluster = sharded_cluster(n_masters=2)
    rebalancer = Rebalancer(cluster.coordinator, threshold=1.2, min_ops=10)
    lo, hi = cluster.coordinator.masters["m0"].owned_ranges[0]
    mid = (lo + hi) // 2
    h = lo + 12345
    # The hottest tablet's whole load sits on one key hash: the planner
    # carves the narrowest tablet [h, h+1) around it and moves that.
    hot = LoadReport(master_id="m0",
                     tablet_ops=(((lo, mid), 30), ((mid, hi), 28)),
                     hash_ops=((h, 30), (mid + 5, 14), (mid + 9, 14)),
                     window_ops=58)
    cold = LoadReport(master_id="m1", tablet_ops=(), hash_ops=(),
                      window_ops=10)
    plan = rebalancer._plan_move({"m0": hot, "m1": cold})
    hot_id, cold_id, move_lo, move_hi, splits = plan
    assert (move_lo, move_hi) == (h, h + 1)
    assert splits == ((lo, mid, h), (h, mid, h + 1))


def test_plan_move_declines_unwinnable_single_key_swap():
    """Moving the only loaded key when its load exceeds twice the
    budget would just swap which master is hot — the planner must
    decline rather than oscillate."""
    cluster = sharded_cluster(n_masters=2)
    rebalancer = Rebalancer(cluster.coordinator, threshold=1.2, min_ops=10)
    lo, hi = cluster.coordinator.masters["m0"].owned_ranges[0]
    hot = LoadReport(master_id="m0", tablet_ops=(((lo, hi), 60),),
                     hash_ops=((lo + 7, 60),), window_ops=60)
    cold = LoadReport(master_id="m1", tablet_ops=(), hash_ops=(),
                      window_ops=20)
    assert rebalancer._plan_move({"m0": hot, "m1": cold}) is None


def test_plan_move_skips_balanced_and_idle_windows():
    cluster = sharded_cluster(n_masters=2)
    rebalancer = Rebalancer(cluster.coordinator, threshold=1.5, min_ops=100)
    lo, hi = cluster.coordinator.masters["m0"].owned_ranges[0]
    even = {
        "m0": LoadReport("m0", (((lo, hi), 60),), ((lo + 1, 60),), 60),
        "m1": LoadReport("m1", (), (), 55),
    }
    assert rebalancer._plan_move(even) is None  # 60 < 1.5 × 57.5
    idle = {
        "m0": LoadReport("m0", (((lo, hi), 3),), ((lo + 1, 3),), 3),
        "m1": LoadReport("m1", (), (), 0),
    }
    assert rebalancer._plan_move(idle) is None  # below min_ops


# ----------------------------------------------------------------------
# the full loop against a live cluster
# ----------------------------------------------------------------------
def test_rebalancer_moves_hot_tablet_and_clients_follow():
    cluster = sharded_cluster(n_masters=2)
    client = cluster.new_client()
    hot_keys = keys_for(cluster, "m0", 6)
    rebalancer = cluster.start_rebalancer(interval=400.0, threshold=1.3,
                                          min_ops=10)

    def load():
        for round_number in range(40):
            for key in hot_keys:
                yield from client.update(Write(key, round_number))
    process = client.host.spawn(load(), name="hot-load")
    cluster.run(process, timeout=10_000_000.0)
    rebalancer.stop()
    cluster.settle(2_000.0)
    assert rebalancer.stats.rounds >= 1
    assert rebalancer.stats.migrations >= 1
    assert rebalancer.stats.splits >= 1
    # Some of the hot keys now live on m1, and all keys stay readable
    # with their latest values.
    owners = {cluster.shard_for(key) for key in hot_keys}
    assert owners == {"m0", "m1"}
    for key in hot_keys:
        assert cluster.run(client.read(key), timeout=1_000_000.0) == 39
    # The shard map stayed a partition of the hash space throughout.
    assert cluster.shard_map.covers_full_range()


def test_rebalancer_is_idle_on_balanced_cluster():
    cluster = sharded_cluster(n_masters=2)
    client = cluster.new_client()
    rebalancer = cluster.start_rebalancer(interval=300.0, threshold=2.0,
                                          min_ops=10)
    keys = keys_for(cluster, "m0", 3) + keys_for(cluster, "m1", 3)

    def load():
        for round_number in range(20):
            for key in keys:
                yield from client.update(Write(key, round_number))
    cluster.run(client.host.spawn(load(), name="even-load"),
                timeout=10_000_000.0)
    rebalancer.stop()
    assert rebalancer.stats.rounds >= 1
    assert rebalancer.stats.migrations == 0
    assert cluster.coordinator.masters["m0"].owned_ranges \
        == [tuple(cluster.shard_map.tablets()[0][:2])]


def test_cooling_merge_shrinks_cold_masters_ownership():
    """ISSUE 9 satellite: once load decays, a fragmented master's
    adjacent tablets are coalesced on balanced rounds — the ownership
    list shrinks — while a master still seeing traffic keeps its fine
    tablets."""
    cluster = sharded_cluster(n_masters=2)
    client = cluster.new_client()
    coordinator = cluster.coordinator
    rebalancer = Rebalancer(coordinator, threshold=5.0, min_ops=200,
                            cooling_max_ops=10)
    lo, hi = coordinator.masters["m0"].owned_ranges[0]
    cut1 = lo + (hi - lo) // 3
    cut2 = lo + 2 * (hi - lo) // 3

    def fragment():
        yield from coordinator.split_tablet("m0", lo, hi, cut1)
        yield from coordinator.split_tablet("m0", cut1, hi, cut2)
    cluster.run(cluster.sim.process(fragment()), timeout=1_000_000.0)
    assert len(coordinator.masters["m0"].owned_ranges) == 3

    # While m0 still sees traffic above cooling_max_ops the pass leaves
    # its tablets alone (the next split plan wants them fine-grained).
    m0_keys = keys_for(cluster, "m0", 4)
    def warm_load():
        for round_number in range(4):
            for key in m0_keys:
                yield from client.update(Write(key, round_number))
    cluster.run(client.host.spawn(warm_load(), name="warm"),
                timeout=10_000_000.0)
    cluster.run(cluster.sim.process(rebalancer.rebalance_once()),
                timeout=1_000_000.0)
    assert len(coordinator.masters["m0"].owned_ranges) == 3
    assert rebalancer.stats.cooling_merges == 0

    # After the load decays (the report window reset above, nothing
    # since) the next balanced round coalesces m0 back to one tablet.
    cluster.run(cluster.sim.process(rebalancer.rebalance_once()),
                timeout=1_000_000.0)
    assert len(coordinator.masters["m0"].owned_ranges) == 1
    assert rebalancer.stats.cooling_merges == 1
    assert cluster.shard_map.covers_full_range()
    for key in m0_keys:
        assert cluster.run(client.read(key), timeout=1_000_000.0) == 3


def test_cooling_merge_skips_single_tablet_masters_without_rpcs():
    """A stable cluster pays nothing: with every master on one tablet
    the cooling pass issues no merge RPCs at all."""
    cluster = sharded_cluster(n_masters=2)
    rebalancer = Rebalancer(cluster.coordinator, min_ops=100)
    sent_before = cluster.network.stats.messages_sent
    cluster.run(cluster.sim.process(rebalancer.rebalance_once()),
                timeout=1_000_000.0)
    # Exactly one load_report round trip per master, nothing more.
    assert cluster.network.stats.messages_sent == sent_before + 4
    assert rebalancer.stats.cooling_merges == 0


def test_rebalancer_interval_zero_never_spawns():
    cluster = sharded_cluster(n_masters=2)
    rebalancer = Rebalancer(cluster.coordinator, interval=0.0)
    assert rebalancer.start() is None
    cluster.settle(2_000.0)
    assert rebalancer.stats.rounds == 0


def test_rebalancer_double_start_rejected():
    cluster = sharded_cluster(n_masters=2)
    rebalancer = cluster.start_rebalancer(interval=500.0)
    with pytest.raises(RuntimeError):
        rebalancer.start()


def test_config_validates_rebalance_knobs():
    with pytest.raises(ValueError):
        CurpConfig(rebalance_threshold=1.0)
    with pytest.raises(ValueError):
        CurpConfig(rebalance_interval=-1.0)
    with pytest.raises(ValueError):
        CurpConfig(rebalance_min_ops=0)
