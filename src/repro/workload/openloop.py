"""Open-loop traffic: Poisson arrivals decoupled from completions.

Every pre-existing driver in this package is *closed-loop*: each client
issues its next operation only after the previous one completes, so the
offered load self-throttles to whatever the cluster can absorb and the
cluster can never be pushed past saturation.  Real traffic ("millions
of users", the ROADMAP's north star) is open-loop: arrivals keep coming
at the offered rate no matter how slowly completions drain — which is
exactly the regime where an undefended cluster collapses (queues grow
without bound, queueing delay exceeds every client's RPC patience, and
goodput falls off a cliff past saturation instead of flattening).

This module provides:

- :class:`ArrivalSchedule` and its shapes — :class:`ConstantRate`,
  :class:`DiurnalRate` (sinusoidal day/night swing), and
  :class:`FlashCrowd` (a step surge multiplier over any base schedule).
  Arrival instants are a non-homogeneous Poisson process sampled by
  Lewis–Shedler thinning against the schedule's peak rate, driven
  entirely from ``sim.rng`` — deterministic per seed.
- :class:`TenantSpec` / :class:`OpenLoopEngine` — N tenants, each with
  its own schedule, its own (prefix-disjoint, independently zipfian)
  YCSB key space and its own small pool of connections, offered
  against one cluster.  Arrivals enqueue; a dispatcher issues queued
  operations up to an AIMD in-flight window per tenant (the
  backpressure half of the ``RETRY_LATER`` contract: multiplicative
  shrink on pushback, additive growth on clean completions, knobs in
  ``config.overload``).  With backpressure off the window is
  unbounded and every arrival fires immediately — the naive open loop
  that demonstrates the collapse.

Goodput is reported as completions/s (optionally SLO-filtered) over
the measured window, per tenant and aggregate, alongside latency
percentiles (arrival → completion, queueing included), pushback
counts, and drop/give-up totals.
"""

from __future__ import annotations

import collections
import dataclasses
import math
import typing

from repro.core.client import ClientGaveUp, CurpClient
from repro.kvstore.operations import Read
from repro.metrics.stats import LatencyRecorder
from repro.workload.ycsb import YcsbOpStream, YcsbWorkload

if typing.TYPE_CHECKING:  # pragma: no cover
    import random

    from repro.harness.builder import Cluster
    from repro.verify.history import History


# ----------------------------------------------------------------------
# arrival schedules (rates in operations per second; time in µs)
# ----------------------------------------------------------------------
class ArrivalSchedule:
    """A time-varying offered rate r(t), in ops/s."""

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    @property
    def peak_rate(self) -> float:
        """An upper bound on ``rate_at`` over all t (thinning envelope)."""
        raise NotImplementedError

    def next_interval(self, now: float, rng: "random.Random") -> float:
        """Time (µs) from ``now`` to the next Poisson arrival.

        Lewis–Shedler thinning: candidate arrivals at the peak rate,
        each kept with probability r(t)/peak.  Exactly reproduces the
        non-homogeneous process as long as ``rate_at`` never exceeds
        ``peak_rate`` (the constructors enforce that).
        """
        peak = self.peak_rate
        if peak <= 0:
            raise ValueError(f"peak rate must be > 0: {peak}")
        t = now
        while True:
            t += rng.expovariate(peak / 1e6)
            if rng.random() * peak <= self.rate_at(t):
                return t - now


@dataclasses.dataclass(frozen=True)
class ConstantRate(ArrivalSchedule):
    """Flat r(t) = rate ops/s."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0: {self.rate}")

    def rate_at(self, t: float) -> float:
        return self.rate

    @property
    def peak_rate(self) -> float:
        return self.rate


@dataclasses.dataclass(frozen=True)
class DiurnalRate(ArrivalSchedule):
    """Sinusoidal day/night swing around a base rate:
    r(t) = base × (1 + amplitude × sin(2π (t + phase) / period))."""

    base: float
    #: swing as a fraction of base, in [0, 1)
    amplitude: float = 0.5
    #: one "day", in µs (benches compress this far below 24 h)
    period: float = 1_000_000.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"base must be > 0: {self.base}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1) — the rate "
                             "must stay positive")
        if self.period <= 0:
            raise ValueError(f"period must be > 0: {self.period}")

    def rate_at(self, t: float) -> float:
        swing = math.sin(2 * math.pi * (t + self.phase) / self.period)
        return self.base * (1.0 + self.amplitude * swing)

    @property
    def peak_rate(self) -> float:
        return self.base * (1.0 + self.amplitude)


@dataclasses.dataclass(frozen=True)
class FlashCrowd(ArrivalSchedule):
    """A step surge over any base schedule: rate × ``multiplier``
    during [surge_start, surge_end), the base rate outside it."""

    base: ArrivalSchedule
    multiplier: float
    surge_start: float
    surge_end: float

    def __post_init__(self) -> None:
        if isinstance(self.base, (int, float)):
            object.__setattr__(self, "base", ConstantRate(float(self.base)))
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (a lull is a "
                             "diurnal trough, not a flash crowd)")
        if self.surge_end <= self.surge_start:
            raise ValueError("surge_end must be > surge_start")

    def rate_at(self, t: float) -> float:
        rate = self.base.rate_at(t)
        if self.surge_start <= t < self.surge_end:
            return rate * self.multiplier
        return rate

    @property
    def peak_rate(self) -> float:
        return self.base.peak_rate * self.multiplier


# ----------------------------------------------------------------------
# tenants
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class KeySetWorkload:
    """A fixed set of keys, chosen uniformly — fairness scenarios pick
    keys by owning shard (``cluster.shard_for``) so one tenant's entire
    load lands on one master, which a hash-routed YCSB key space cannot
    arrange."""

    name: str
    keys: tuple
    read_fraction: float = 0.0
    value_size: int = 100

    def __post_init__(self) -> None:
        if not self.keys:
            raise ValueError("at least one key is required")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")

    def generator(self) -> "KeySetStream":
        return KeySetStream(self)


class KeySetStream:
    """Op stream over a :class:`KeySetWorkload`."""

    def __init__(self, workload: KeySetWorkload):
        self.workload = workload
        self._value = "v" * workload.value_size

    def next_op(self, rng: "random.Random"):
        from repro.kvstore.operations import Write

        key = self.workload.keys[rng.randrange(len(self.workload.keys))]
        if rng.random() < self.workload.read_fraction:
            return Read(key)
        return Write(key, self._value)


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant's offered traffic: a schedule over its own key space."""

    name: str
    schedule: ArrivalSchedule
    workload: YcsbWorkload
    #: connection pool: arrivals round-robin over this many clients
    #: (one client id = one RIFL sequence = one op at a time per rpc_id,
    #: but the engine issues concurrent ops across the pool)
    n_clients: int = 4

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")


class _TenantState:
    """Runtime counters and queue for one tenant."""

    def __init__(self, spec: TenantSpec, initial_window: float):
        self.spec = spec
        self.stream: YcsbOpStream = spec.workload.generator()
        self.clients: list[CurpClient] = []
        self.queue: collections.deque = collections.deque()
        self.window = initial_window
        self.in_flight = 0
        self.next_client = 0
        self.offered = 0
        self.issued = 0
        self.completed = 0
        self.good = 0
        self.failed = 0
        self.dropped = 0
        self.pushback_base = 0
        self.latency = LatencyRecorder()
        #: (completion time, latency) pairs, when record_timeline
        self.completions: list[tuple[float, float]] = []

    def reset(self) -> None:
        self.offered = 0
        self.issued = 0
        self.completed = 0
        self.good = 0
        self.failed = 0
        self.dropped = 0
        self.latency.reset()
        self.completions.clear()
        self.pushback_base = sum(c.pushbacks for c in self.clients)

    @property
    def pushbacks(self) -> int:
        return sum(c.pushbacks for c in self.clients) - self.pushback_base


class OpenLoopEngine:
    """Drive N tenants of open-loop traffic against a cluster.

    ``backpressure=None`` (the default) follows
    ``cluster.config.overload.enabled`` — one switch turns on both the
    server defenses and the client half of the contract.  ``max_window``
    caps the AIMD window (and is the initial window); with backpressure
    off the window is effectively infinite.  ``max_queue_wait`` (µs,
    backpressure mode) drops arrivals that waited too long client-side
    — shedding at the edge, where it is cheapest.  ``slo`` (µs) makes
    goodput SLO-filtered: completions slower than the SLO count as
    completed but not *good*.  ``history`` wires every operation
    through a :class:`~repro.verify.history.History` for
    linearizability audits (chaos tests).
    """

    def __init__(self, cluster: "Cluster",
                 tenants: typing.Sequence[TenantSpec],
                 backpressure: bool | None = None,
                 max_window: int = 64,
                 max_queue_wait: float | None = None,
                 slo: float | None = None,
                 history: "History | None" = None,
                 record_timeline: bool = False):
        if not tenants:
            raise ValueError("at least one tenant is required")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.cluster = cluster
        self.sim = cluster.sim
        overload = cluster.config.overload
        self.backpressure = (overload.enabled if backpressure is None
                             else backpressure)
        self.max_window = max_window
        self.max_queue_wait = max_queue_wait
        self.slo = slo
        self.history = history
        self.record_timeline = record_timeline
        self._min_window = overload.min_window
        self._decrease = overload.window_decrease
        self._increase = overload.window_increase
        self.tenants = [_TenantState(spec, float(max_window))
                        for spec in tenants]
        self.running = False
        self.started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Connect the tenant pools and start the arrival loops."""
        if self.started:
            return
        self.started = True
        for tenant in self.tenants:
            tenant.clients = [
                self.cluster.new_client(collect_outcomes=False)
                for _ in range(tenant.spec.n_clients)]
        self.running = True
        for tenant in self.tenants:
            # Arrival loops are plain sim processes, not host processes:
            # offered load is generated by the outside world and must
            # survive any in-cluster crash.
            self.sim.process(self._arrivals(tenant))

    def stop(self) -> None:
        self.running = False

    def _arrivals(self, tenant: _TenantState):
        rng = self.sim.rng
        schedule = tenant.spec.schedule
        while self.running:
            yield self.sim.timeout(schedule.next_interval(self.sim.now, rng))
            if not self.running:
                return
            tenant.offered += 1
            tenant.queue.append((tenant.stream.next_op(rng), self.sim.now))
            self._pump(tenant)

    # ------------------------------------------------------------------
    # dispatch (the backpressure window)
    # ------------------------------------------------------------------
    def _limit(self, tenant: _TenantState) -> float:
        if not self.backpressure:
            return math.inf
        return max(self._min_window, int(tenant.window))

    def _pump(self, tenant: _TenantState) -> None:
        while tenant.queue and tenant.in_flight < self._limit(tenant):
            op, arrived = tenant.queue.popleft()
            if (self.max_queue_wait is not None
                    and self.sim.now - arrived > self.max_queue_wait):
                tenant.dropped += 1
                continue
            tenant.in_flight += 1
            tenant.issued += 1
            client = tenant.clients[tenant.next_client]
            tenant.next_client = ((tenant.next_client + 1)
                                  % len(tenant.clients))
            client.host.spawn(self._run_op(tenant, client, op, arrived),
                              name=f"openloop-{tenant.spec.name}")

    def _run_op(self, tenant: _TenantState, client: CurpClient, op,
                arrived: float):
        before = client.pushbacks
        ok = yield from self._perform(client, op)
        if ok:
            latency = self.sim.now - arrived
            tenant.completed += 1
            tenant.latency.record(latency)
            if self.slo is None or latency <= self.slo:
                tenant.good += 1
            if self.record_timeline:
                tenant.completions.append((self.sim.now, latency))
        else:
            tenant.failed += 1
        tenant.in_flight -= 1
        self._adjust_window(tenant, saw_pushback=client.pushbacks > before)
        self._pump(tenant)

    def _perform(self, client: CurpClient, op):
        """Generator: one operation; True iff it completed.  With a
        history attached, the op is recorded invoke/complete (give-ups
        stay pending — may-or-may-not-have-happened, §3.4)."""
        record = None
        if self.history is not None:
            from repro.verify.instrument import HistoryClient
            record = HistoryClient(client, self.history)._begin(op)
        try:
            if isinstance(op, Read):
                value = yield from client.read(op.key)
            else:
                outcome = yield from client.update(op)
                value = outcome.result
        except ClientGaveUp:
            return False
        if record is not None:
            self.history.complete(record, value, self.sim.now)
        return True

    def _adjust_window(self, tenant: _TenantState,
                       saw_pushback: bool) -> None:
        if not self.backpressure:
            return
        if saw_pushback:
            # Multiplicative decrease: the op absorbed >= 1 RETRY_LATER.
            tenant.window = max(float(self._min_window),
                                tenant.window * self._decrease)
        else:
            # Additive increase: +window_increase per window's worth of
            # clean completions (TCP congestion avoidance's shape).
            tenant.window = min(float(self.max_window),
                                tenant.window
                                + self._increase / max(tenant.window, 1.0))

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def run(self, duration: float, warmup: float = 0.0) -> dict:
        """Offer load for ``warmup + duration`` µs; return the measured
        window's per-tenant and aggregate results."""
        self.start()
        if warmup > 0:
            self.sim.run(until=self.sim.now + warmup)
            for tenant in self.tenants:
                tenant.reset()
        start = self.sim.now
        self.sim.run(until=start + duration)
        self.stop()
        return self.results(self.sim.now - start)

    def drain(self, timeout: float = 1_000_000.0) -> bool:
        """After stop(): step until in-flight ops finish (or timeout).
        True iff everything drained."""
        deadline = self.sim.now + timeout
        while any(t.in_flight for t in self.tenants):
            if self.sim.now > deadline or not self.sim.step():
                return False
        return True

    def results(self, elapsed: float) -> dict:
        seconds = elapsed / 1e6
        per_tenant = {}
        for tenant in self.tenants:
            summary = tenant.latency.summary()
            per_tenant[tenant.spec.name] = {
                "offered": tenant.offered,
                "offered_per_sec": tenant.offered / seconds if seconds else 0.0,
                "issued": tenant.issued,
                "completed": tenant.completed,
                "failed": tenant.failed,
                "dropped": tenant.dropped,
                "queued": len(tenant.queue),
                "in_flight": tenant.in_flight,
                "goodput": tenant.good / seconds if seconds else 0.0,
                "completed_per_sec": (tenant.completed / seconds
                                      if seconds else 0.0),
                "pushbacks": tenant.pushbacks,
                "window": tenant.window if self.backpressure else None,
                "latency": summary,
                "completions": (list(tenant.completions)
                                if self.record_timeline else None),
            }
        total_good = sum(t.good for t in self.tenants)
        total_offered = sum(t.offered for t in self.tenants)
        return {
            "elapsed": elapsed,
            "offered": total_offered,
            "offered_per_sec": total_offered / seconds if seconds else 0.0,
            "completed": sum(t.completed for t in self.tenants),
            "failed": sum(t.failed for t in self.tenants),
            "dropped": sum(t.dropped for t in self.tenants),
            "goodput": total_good / seconds if seconds else 0.0,
            "pushbacks": sum(t.pushbacks for t in self.tenants),
            "per_tenant": per_tenant,
        }
