"""Frame coalescing: same-instant same-destination sends share one
NIC frame (``Network(frame_coalescing=True)``).

Covers the ISSUE 4 transport tentpole: packing and send-order
determinism, per-frame cost accounting (tx, rx, latency, drop roll),
whole-frame loss under partitions/drops, and the crash semantics —
a pending (unflushed) buffer dies with the host so a restarted
incarnation can never flush its previous life's RPCs.
"""

from __future__ import annotations

import pytest

from repro.net import Network
from repro.net.latency import LatencyModel
from repro.sim import Fixed, Simulator


@pytest.fixture
def coalescing_network(sim: Simulator) -> Network:
    return Network(sim, latency=LatencyModel(Fixed(2.0)),
                   frame_coalescing=True)


def two_hosts(network: Network, tx: float = 0.0, rx: float = 0.0):
    a = network.add_host("a", tx_cost=tx)
    b = network.add_host("b", rx_cost=rx)
    inbox = []
    b.set_message_handler(lambda m: inbox.append((network.sim.now, m.payload)))
    return a, b, inbox


# ----------------------------------------------------------------------
# packing
# ----------------------------------------------------------------------
def test_same_instant_sends_pack_into_one_frame(
        sim: Simulator, coalescing_network: Network):
    a, _b, inbox = two_hosts(coalescing_network)
    for i in range(5):
        a.send("b", i)
    sim.run()
    stats = coalescing_network.stats
    assert [p for _, p in inbox] == [0, 1, 2, 3, 4]  # send order kept
    assert {t for t, _ in inbox} == {2.0}  # one wire latency, shared
    assert stats.messages_sent == 1
    assert stats.payloads_sent == 5
    assert stats.frames_sent == 1
    assert stats.frame_payloads == 5


def test_different_destinations_use_separate_frames(
        sim: Simulator, coalescing_network: Network):
    a = coalescing_network.add_host("a")
    seen = []
    for name in ("b", "c"):
        host = coalescing_network.add_host(name)
        host.set_message_handler(
            lambda m, name=name: seen.append((name, m.payload)))
    a.send("b", 1)
    a.send("c", 2)
    a.send("b", 3)
    sim.run()
    assert sorted(seen) == [("b", 1), ("b", 3), ("c", 2)]
    assert coalescing_network.stats.messages_sent == 2
    assert coalescing_network.stats.frames_sent == 1  # only the b pair


def test_different_instants_use_separate_frames(
        sim: Simulator, coalescing_network: Network):
    a, _b, inbox = two_hosts(coalescing_network)
    a.send("b", "t0")
    sim.schedule_callback(1.0, a.send, "b", "t1")
    sim.run()
    assert inbox == [(2.0, "t0"), (3.0, "t1")]
    assert coalescing_network.stats.messages_sent == 2
    assert coalescing_network.stats.frames_sent == 0


def test_singleton_buffer_delivers_like_a_plain_message(
        sim: Simulator, coalescing_network: Network):
    """One buffered message transmits as a bare Message: same delivery
    time and stats as the uncoalesced path."""
    a, _b, inbox = two_hosts(coalescing_network)
    a.send("b", "solo", size_bytes=77)
    sim.run()
    assert inbox == [(2.0, "solo")]
    stats = coalescing_network.stats
    assert stats.messages_sent == 1
    assert stats.frames_sent == 0
    assert stats.bytes_sent == 77


def test_messages_per_update_helper(sim: Simulator,
                                    coalescing_network: Network):
    a, _b, _inbox = two_hosts(coalescing_network)
    for i in range(8):
        a.send("b", i)
    sim.run()
    assert coalescing_network.stats.messages_per_update(2) == 0.5
    assert coalescing_network.stats.messages_per_update(0) == 0.0


# ----------------------------------------------------------------------
# cost model: one tx occupation, one rx dispatch per frame
# ----------------------------------------------------------------------
def test_frame_occupies_nic_once(sim: Simulator,
                                 coalescing_network: Network):
    """Three messages in one frame pay tx_cost once; a second-instant
    frame queues behind the first (nic_free_at advances per frame)."""
    a, _b, inbox = two_hosts(coalescing_network, tx=0.5)
    for i in range(3):
        a.send("b", i)
    sim.run()
    # One frame: departs at 0.5, +2.0 wire; all three payloads together.
    assert [t for t, _ in inbox] == [2.5, 2.5, 2.5]


def test_frame_charges_rx_cost_once(sim: Simulator,
                                    coalescing_network: Network):
    a, _b, inbox = two_hosts(coalescing_network, rx=0.4)
    for i in range(3):
        a.send("b", i)
    sim.run()
    # One rx occupation for the whole frame: all dispatch at 2.4, in
    # order (uncoalesced messages would stagger at 2.4 / 2.8 / 3.2).
    assert [t for t, _ in inbox] == [2.4, 2.4, 2.4]
    assert [p for _, p in inbox] == [0, 1, 2]


# ----------------------------------------------------------------------
# loss: a dropped frame drops every contained RPC
# ----------------------------------------------------------------------
def test_partitioned_frame_loses_all_payloads(
        sim: Simulator, coalescing_network: Network):
    a, _b, inbox = two_hosts(coalescing_network)
    coalescing_network.partition("a", "b")
    for i in range(4):
        a.send("b", i)
    sim.run()
    assert inbox == []
    stats = coalescing_network.stats
    assert stats.messages_dropped == 1  # one transmission lost
    assert stats.payloads_dropped == 4  # ...containing all four RPCs
    coalescing_network.heal("a", "b")
    a.send("b", "after")
    sim.run()
    assert [p for _, p in inbox] == ["after"]


def test_frame_buffered_before_partition_obeys_partition_at_transmit(
        sim: Simulator, coalescing_network: Network):
    """The race the fault injector can create: sends buffer a frame,
    then the partition lands in the same instant (before the
    instant-end flush).  The link state at *transmit* time governs —
    the already-buffered frame must not slip through."""
    a, _b, inbox = two_hosts(coalescing_network)
    for i in range(3):
        a.send("b", i)                      # buffered, not yet flushed
    coalescing_network.partition("a", "b")  # same instant, post-send
    sim.run()
    assert inbox == []
    stats = coalescing_network.stats
    assert stats.messages_dropped == 1
    assert stats.payloads_dropped == 3


def test_frame_buffered_during_partition_flushed_after_heal_delivers(
        sim: Simulator, coalescing_network: Network):
    """The symmetric race: partitioned when the frame buffers, healed
    before the instant-end flush — transmit-time semantics let it
    through (nothing was dropped yet, so nothing is resurrected)."""
    a, _b, inbox = two_hosts(coalescing_network)
    coalescing_network.partition("a", "b")
    a.send("b", "lucky")
    coalescing_network.heal("a", "b")       # still the same instant
    sim.run()
    assert [p for _, p in inbox] == ["lucky"]
    assert coalescing_network.stats.messages_dropped == 0


def test_healing_does_not_resurrect_dropped_frames(
        sim: Simulator, coalescing_network: Network):
    """Frames transmitted into a partition are gone for good: a later
    heal must not deliver them, only traffic sent after it."""
    a, _b, inbox = two_hosts(coalescing_network)
    coalescing_network.partition("a", "b")
    sim.schedule_callback(1.0, a.send, "b", "lost-1")
    sim.schedule_callback(2.0, a.send, "b", "lost-2")
    sim.schedule_callback(5.0, coalescing_network.heal, "a", "b")
    sim.schedule_callback(6.0, a.send, "b", "after-heal")
    sim.run()
    assert [p for _, p in inbox] == ["after-heal"]
    stats = coalescing_network.stats
    assert stats.messages_dropped == 2      # the two pre-heal frames
    assert stats.payloads_dropped == 2


def test_one_way_fault_partition_races_with_frames(
        sim: Simulator, coalescing_network: Network):
    """Same transmit-time contract through the fault-injection hooks:
    a one-way block applied after the frame buffered still drops it,
    the reverse direction stays open, and a mid-instant heal lets the
    buffered frame through."""
    a = coalescing_network.add_host("a")
    b = coalescing_network.add_host("b")
    seen_a, seen_b = [], []
    a.set_message_handler(lambda m: seen_a.append(m.payload))
    b.set_message_handler(lambda m: seen_b.append(m.payload))
    a.send("b", "blocked")                  # buffered a→b
    b.send("a", "counterflow")              # buffered b→a
    coalescing_network.partition_one_way("a", "b")  # post-send
    sim.run()
    assert seen_b == []                     # obeyed at transmit time
    assert seen_a == ["counterflow"]        # one-way: reverse flows
    a.send("b", "still-blocked")
    coalescing_network.heal_one_way("a", "b")  # same instant, pre-flush
    sim.run()
    assert seen_b == ["still-blocked"]      # healed at transmit time


def test_drop_roll_is_per_frame(sim: Simulator):
    """With drop_rate=0.5 and 100 frames of 4 payloads, payload losses
    come in whole-frame multiples."""
    network = Network(sim, latency=LatencyModel(Fixed(1.0)),
                      drop_rate=0.5, frame_coalescing=True)
    a, _b, inbox = two_hosts(network)
    for wave in range(100):
        sim.schedule_callback(float(wave), _send_burst, a, wave)
    sim.run()
    stats = network.stats
    assert stats.payloads_dropped == 4 * stats.messages_dropped
    assert len(inbox) == 400 - stats.payloads_dropped
    assert 10 < stats.messages_dropped < 90  # ~50 expected


def _send_burst(host, wave: int) -> None:
    for i in range(4):
        host.send("b", (wave, i))


def test_receiver_crash_mid_frame_drops_the_tail(
        sim: Simulator, coalescing_network: Network):
    """A handler that crashes the host while unpacking a frame loses
    the remaining payloads, exactly as separately-sent messages would
    be refused on arrival at a dead host."""
    a = coalescing_network.add_host("a")
    b = coalescing_network.add_host("b")
    seen = []

    def handler(message) -> None:
        seen.append(message.payload)
        if message.payload == "poison":
            b.crash()
    b.set_message_handler(handler)
    for payload in ("ok", "poison", "lost", "lost-too"):
        a.send("b", payload)
    sim.run()
    assert seen == ["ok", "poison"]


# ----------------------------------------------------------------------
# crash: pending buffers die with the host
# ----------------------------------------------------------------------
def test_crash_discards_pending_frame_buffer(
        sim: Simulator, coalescing_network: Network):
    """Buffered-but-unflushed messages die with the host: a crash in
    the same instant (before the end-of-instant flush) must not let a
    restarted incarnation transmit its previous life's RPCs."""
    a, _b, inbox = two_hosts(coalescing_network)
    a.send("b", "pre-crash")
    a.crash()
    a.restart()
    a.send("b", "post-restart")
    sim.run()
    assert [p for _, p in inbox] == ["post-restart"]
    assert coalescing_network.stats.payloads_sent == 1


def test_crash_without_restart_flushes_nothing(
        sim: Simulator, coalescing_network: Network):
    a, _b, inbox = two_hosts(coalescing_network)
    a.send("b", "doomed")
    a.crash()
    sim.run()
    assert inbox == []
    assert coalescing_network.stats.messages_sent == 0


def test_in_flight_frame_outlives_sender_crash(
        sim: Simulator, coalescing_network: Network):
    """A frame already on the wire is not recalled by a later sender
    crash — matching per-message semantics."""
    a, _b, inbox = two_hosts(coalescing_network)
    a.send("b", 1)
    a.send("b", 2)
    sim.schedule_callback(1.0, a.crash)  # after the t=0 flush
    sim.run()
    assert [p for _, p in inbox] == [1, 2]


def test_unknown_destination_raises_at_send(
        sim: Simulator, coalescing_network: Network):
    """The coalesced path must surface a bad destination at the call
    site, like the uncoalesced path — not as a KeyError erupting from
    the end-of-instant flush with the sender's stack gone."""
    a = coalescing_network.add_host("a")
    with pytest.raises(KeyError):
        a.send("ghost", "hi")
    sim.run()  # and nothing is left to explode at the flush boundary
