"""Workload drivers shaped for partitioned (PDES) simulation.

A :class:`~repro.sim.partition.PartitionedSimulation` driver cannot
call ``sim.run`` across phase boundaries itself — the runner owns the
clock and all partitions must cross each barrier together.  The driver
here therefore splits the usual "run a workload" call into barrier-
synchronous steps (``start`` / ``reset`` / ``stop`` / ``results``)
invoked via ``PartitionedSimulation.call``, with the runner's
``advance`` doing all time-keeping in between.

:func:`build_openloop_partition` is the module-level setup entry point
(picklable, so the process and subinterpreter backends can ship it):
it builds this partition's cluster slice and returns an
:class:`OpenLoopPartitionDriver` driving Poisson open-loop tenants —
one per *local* shard, keys pinned to that shard, with an optional
``remote_fraction`` of keys owned by other partitions' shards to
exercise the cross-partition mailbox.  Run with ``n_partitions == 1``
the same function builds the whole cluster and drives every shard from
one simulator — the serial baseline the scaling bench compares
against, running literally the same workload code.
"""

from __future__ import annotations

import hashlib
import typing

from repro.core.config import CurpConfig
from repro.harness.builder import Cluster, build_partitioned_cluster
from repro.harness.profiles import TEST_PROFILE
from repro.workload.openloop import (
    ConstantRate,
    KeySetWorkload,
    OpenLoopEngine,
    TenantSpec,
)


def keys_for_master(cluster: "Cluster", master_id: str,
                    count: int) -> list[str]:
    """Deterministic keys that hash into ``master_id``'s tablets.

    Probes ``{master_id}:key{i}`` for i = 0, 1, ... against the
    coordinator's shard map (which covers the whole keyspace even on a
    partition slice), keeping the first ``count`` hits — every caller
    with the same map gets the same keys.
    """
    keys: list[str] = []
    i = 0
    while len(keys) < count:
        candidate = f"{master_id}:key{i}"
        if cluster.shard_for(candidate) == master_id:
            keys.append(candidate)
        i += 1
        if i > 1_000_000:  # pragma: no cover - degenerate shard map
            raise RuntimeError(f"could not find {count} keys for "
                               f"{master_id}")
    return keys


class OpenLoopPartitionDriver:
    """One partition's open-loop workload, driven at barriers.

    Exposes the ``sim`` / ``network`` attributes the partition runner
    requires, plus barrier-callable phases.  Every method argument and
    return value is picklable.
    """

    def __init__(self, cluster: "Cluster", rate_per_shard: float,
                 n_clients: int = 4, keys_per_shard: int = 32,
                 read_fraction: float = 0.5, value_size: int = 100,
                 remote_fraction: float = 0.0, max_window: int = 64):
        if not 0.0 <= remote_fraction <= 0.9:
            raise ValueError(f"remote_fraction must be in [0, 0.9]: "
                             f"{remote_fraction}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network
        local_ids = sorted(cluster.masters, key=lambda m: int(m[1:]))
        all_ids = sorted(cluster.coordinator.masters,
                         key=lambda m: int(m[1:]))
        tenants = []
        for master_id in local_ids:
            keys = keys_for_master(cluster, master_id, keys_per_shard)
            if remote_fraction > 0.0 and len(all_ids) > 1:
                # Mix in keys owned by every *other* shard (local or
                # remote partition alike) so the tenant's traffic
                # crosses shards at the requested rate.
                others = [m for m in all_ids if m != master_id]
                n_remote = max(len(others), round(
                    keys_per_shard * remote_fraction
                    / max(1.0 - remote_fraction, 1e-9)))
                per_other = max(1, n_remote // len(others))
                for other in others:
                    keys.extend(keys_for_master(cluster, other, per_other))
            tenants.append(TenantSpec(
                name=f"shard-{master_id}",
                schedule=ConstantRate(rate_per_shard),
                workload=KeySetWorkload(
                    name=f"keys-{master_id}", keys=tuple(keys),
                    read_fraction=read_fraction, value_size=value_size),
                n_clients=n_clients))
        self.engine = OpenLoopEngine(cluster, tenants,
                                     max_window=max_window)

    # ------------------------------------------------------------------
    # barrier-callable phases
    # ------------------------------------------------------------------
    def start(self) -> int:
        """Connect client pools and start the arrival loops; returns
        the number of clients created.  Advances the local clock by the
        connect RPCs (local-coordinator traffic only) — the runner
        resyncs the barrier."""
        self.engine.start()
        return sum(len(t.clients) for t in self.engine.tenants)

    def reset(self) -> None:
        """Zero the measurement counters (end-of-warmup barrier)."""
        for tenant in self.engine.tenants:
            tenant.reset()

    def stop(self) -> None:
        self.engine.stop()

    def results(self, elapsed: float) -> dict:
        """The engine's aggregate results over ``elapsed`` µs, plus
        this partition's cross-partition traffic counters."""
        results = self.engine.results(elapsed)
        mailbox = self.network.mailbox
        results["partition"] = {
            "partition_id": self.cluster.partition_id,
            "exported": mailbox.exported if mailbox else 0,
            "imported": mailbox.imported if mailbox else 0,
            "events": self.sim.processed_events,
        }
        return results

    def digest(self) -> dict:
        """Stable end-state digest of every local master's store —
        the determinism tests' equality witness."""
        digests = {}
        for master_id in sorted(self.cluster.masters):
            master = self.cluster.master(master_id)
            hasher = hashlib.sha256()
            for key in sorted(master.store._objects):
                obj = master.store._objects[key]
                hasher.update(
                    f"{key}={obj.value!r}@{obj.version}".encode())
            digests[master_id] = {
                "keys": len(master.store._objects),
                "sha256": hasher.hexdigest(),
                "log_end": master.store.log.end,
            }
        return digests


def build_openloop_partition(partition_id: int, n_partitions: int,
                             args: dict | None) -> OpenLoopPartitionDriver:
    """Setup entry point for :class:`PartitionedSimulation`.

    ``args`` keys (all optional): ``n_masters``, ``seed``, ``profile``,
    ``config_kwargs`` (forwarded to :class:`CurpConfig`), plus the
    :class:`OpenLoopPartitionDriver` workload knobs (``rate_per_shard``
    etc.).
    """
    args = dict(args or {})
    config = CurpConfig(**args.pop("config_kwargs", {}))
    cluster = build_partitioned_cluster(
        partition_id, n_partitions,
        config=config,
        profile=args.pop("profile", TEST_PROFILE),
        n_masters=args.pop("n_masters", n_partitions),
        seed=args.pop("seed", 0))
    return OpenLoopPartitionDriver(cluster, **args)
