"""Redis clients for the three durability modes.

In CURP mode a write command is sent to the server and recorded on all
witnesses concurrently (§5.4); the client completes when

- the server's reply says ``synced`` (conflict path), or
- the server replied speculatively and **all** witnesses accepted, or
- after an explicit ``sync`` round trip otherwise.

In NONDURABLE/DURABLE modes the client is a plain request/response
client — durability (or its absence) is entirely the server's affair.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.messages import RECORD_ACCEPTED, RecordArgs, RecordedRequest
from repro.kvstore.hashing import key_hash
from repro.redislike.commands import Command
from repro.redislike.server import CommandArgs, DurabilityMode
from repro.rifl import RiflClientTracker
from repro.rpc import RpcError, RpcTransport
from repro.sim.events import AllOf, QuorumEvent

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


@dataclasses.dataclass
class RedisOutcome:
    result: typing.Any
    fast_path: bool
    sync_rpc_needed: bool
    latency: float


class RedisClient:
    """One application client bound to one server."""

    _next_client_id = 0

    def __init__(self, host: "Host", server: str, mode: DurabilityMode,
                 witnesses: typing.Sequence[str] = (),
                 server_master_id: str | None = None,
                 rpc_timeout: float = 5_000.0,
                 collect_outcomes: bool = True,
                 fast_completion: bool = True):
        RedisClient._next_client_id += 1
        self.host = host
        self.sim = host.sim
        self.server = server
        self.mode = mode
        self.witnesses = list(witnesses)
        self.server_master_id = server_master_id or f"redis:{server}"
        self.rpc_timeout = rpc_timeout
        self.transport = RpcTransport(host)
        self.tracker = RiflClientTracker(RedisClient._next_client_id)
        self.collect_outcomes = collect_outcomes
        #: callback fast path for the §5.4 write fan-out (command +
        #: witness records via call_cb into one QuorumEvent); False
        #: restores the spawned-process/AllOf join
        self.fast_completion = fast_completion
        self.outcomes: list[RedisOutcome] = []
        self.completed = 0

    # ------------------------------------------------------------------
    def execute(self, command: Command):
        """Generator: run one command; returns a RedisOutcome."""
        started = self.sim.now
        if not command.is_write or self.mode is not DurabilityMode.CURP \
                or not self.witnesses:
            args = CommandArgs(command=command,
                               rpc_id=(self.tracker.new_rpc()
                                       if command.is_write else None),
                               ack_seq=self.tracker.first_incomplete)
            reply = yield self.transport.call(self.server, "command", args,
                                              timeout=self.rpc_timeout)
            if args.rpc_id is not None:
                self.tracker.completed(args.rpc_id)
            return self._finish(reply.result, started, fast=True,
                                sync_rpc=False)
        # CURP write: command + witness records in parallel.
        rpc_id = self.tracker.new_rpc()
        args = CommandArgs(command=command, rpc_id=rpc_id,
                           ack_seq=self.tracker.first_incomplete)
        record = RecordArgs(master_id=self.server_master_id,
                            key_hashes=(key_hash(command.key),),
                            rpc_id=rpc_id,
                            request=RecordedRequest(op=command, rpc_id=rpc_id))
        if self.fast_completion:
            join = QuorumEvent(self.sim, 1 + len(self.witnesses))
            self.transport.call_cb(self.server, "command", args,
                                   join.child_result, 0,
                                   timeout=self.rpc_timeout)
            for index, witness in enumerate(self.witnesses):
                self.transport.call_cb(witness, "record", record,
                                       join.child_result, 1 + index,
                                       timeout=self.rpc_timeout)
            results = yield join
            reply = results[0]
            if isinstance(reply, Exception):
                raise reply
            accepted = all(value == RECORD_ACCEPTED
                           for value in results[1:])
        else:
            command_call = self.host.spawn(self._send_command(args),
                                           name="redis-cmd")
            record_calls = [self.host.spawn(self._record_on(w, record),
                                            name="redis-record")
                            for w in self.witnesses]
            results = yield AllOf(self.sim, [command_call] + record_calls)
            reply = results[command_call]
            if isinstance(reply, Exception):
                raise reply
            accepted = all(results[c] for c in record_calls)
        self.tracker.completed(rpc_id)
        if reply.synced:
            return self._finish(reply.result, started, fast=False,
                                sync_rpc=False)
        if accepted:
            return self._finish(reply.result, started, fast=True,
                                sync_rpc=False)
        yield self.transport.call(self.server, "sync", None,
                                  timeout=self.rpc_timeout)
        return self._finish(reply.result, started, fast=False, sync_rpc=True)

    def _send_command(self, args: CommandArgs):
        try:
            reply = yield self.transport.call(self.server, "command", args,
                                              timeout=self.rpc_timeout)
            return reply
        except RpcError as error:
            return error

    def _record_on(self, witness: str, record: RecordArgs):
        try:
            result = yield self.transport.call(witness, "record", record,
                                               timeout=self.rpc_timeout)
            return result == RECORD_ACCEPTED
        except RpcError:
            return False

    def _finish(self, result, started, fast: bool,
                sync_rpc: bool) -> RedisOutcome:
        outcome = RedisOutcome(result=result, fast_path=fast,
                               sync_rpc_needed=sync_rpc,
                               latency=self.sim.now - started)
        self.completed += 1
        if self.collect_outcomes:
            self.outcomes.append(outcome)
        return outcome

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    def set(self, key: str, value: str):
        return self.execute(Command("SET", (key, value)))

    def get(self, key: str):
        return self.execute(Command("GET", (key,)))

    def incr(self, key: str):
        return self.execute(Command("INCR", (key,)))

    def hmset(self, key: str, mapping: dict):
        return self.execute(Command("HMSET", (key, mapping)))
