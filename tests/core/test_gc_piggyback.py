"""Sending-edge gc merge (config.gc_piggyback).

In the Figure 2 colocated deployment a witness shares its host with one
of the master's backups, so per gc flush the shared host used to get
two RPCs from the master: the ``replicate`` and a standalone
``gc_batch``.  With ``gc_piggyback=True`` the master merges the ready
gc chunk into the replicate RPC and counts the avoided RPC in
``MasterStats.gc_rpcs_saved``.
"""

from __future__ import annotations

import pytest

from repro.core.config import CurpConfig, ReplicationMode
from repro.harness import build_cluster
from repro.kvstore import Write


def piggyback_config(**kwargs) -> CurpConfig:
    defaults = dict(f=3, mode=ReplicationMode.CURP, min_sync_batch=10,
                    idle_sync_delay=200.0, retry_backoff=20.0,
                    rpc_timeout=200.0, max_attempts=50,
                    max_gc_batch=64, gc_flush_delay=300.0,
                    gc_piggyback=True)
    defaults.update(kwargs)
    return CurpConfig(**defaults)


def run_updates(cluster, n: int = 200):
    client = cluster.new_client(collect_outcomes=False)
    for i in range(n):
        cluster.run(client.update(Write(f"k{i}", i)))
    cluster.settle(5_000.0)
    return client


def test_piggyback_requires_batched_gc():
    with pytest.raises(ValueError):
        CurpConfig(gc_piggyback=True, max_gc_batch=0)


def test_colocated_flushes_ride_replicate_rpcs():
    cluster = build_cluster(piggyback_config(), colocate_witnesses=True)
    run_updates(cluster)
    stats = cluster.master().stats
    # Every witness is colocated, so steady-state flushes send zero
    # standalone gc RPCs — only idle-timer leftovers do.
    assert stats.gc_rpcs_saved > 0
    assert stats.gc_rpcs < stats.gc_rpcs_saved
    # All slots were still collected through the merged path.
    for witness in cluster.witness_hosts["m0"]:
        server = cluster.coordinator.witness_servers[witness]
        assert server.cache.occupied_slots() == 0
        assert server.gc_batches_processed > 0


def test_piggyback_saves_rpcs_vs_standalone():
    def gc_rpc_count(piggyback: bool) -> tuple[int, int]:
        cluster = build_cluster(piggyback_config(gc_piggyback=piggyback),
                                colocate_witnesses=True)
        run_updates(cluster)
        stats = cluster.master().stats
        return stats.gc_rpcs, stats.gc_pairs

    plain_rpcs, plain_pairs = gc_rpc_count(False)
    merged_rpcs, merged_pairs = gc_rpc_count(True)
    assert merged_rpcs < plain_rpcs
    # The same pairs get collected either way.
    assert merged_pairs == plain_pairs == 200


def test_non_colocated_witnesses_still_get_standalone_gc():
    """Without colocation there is nothing to merge: piggyback must be
    a no-op (no saved RPCs, normal gc traffic, slots collected)."""
    cluster = build_cluster(piggyback_config(), colocate_witnesses=False)
    run_updates(cluster)
    stats = cluster.master().stats
    assert stats.gc_rpcs_saved == 0
    assert stats.gc_rpcs > 0
    for witness in cluster.witness_hosts["m0"]:
        server = cluster.coordinator.witness_servers[witness]
        assert server.cache.occupied_slots() == 0


def test_piggyback_with_fast_completion_linearizable_outcome():
    """The merged path under the callback fast path: updates complete,
    reads observe them, witnesses drain."""
    cluster = build_cluster(piggyback_config(fast_completion=True),
                            colocate_witnesses=True)
    client = run_updates(cluster, n=120)
    for i in (0, 59, 119):
        assert cluster.run(client.read(f"k{i}")) == i
    assert cluster.master().stats.gc_rpcs_saved > 0
    for witness in cluster.witness_hosts["m0"]:
        server = cluster.coordinator.witness_servers[witness]
        assert server.cache.occupied_slots() == 0
