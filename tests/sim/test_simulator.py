"""Unit tests for the simulator core."""

from __future__ import annotations

import pytest

from repro.sim import Simulator


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_run_until_time_advances_clock(sim: Simulator):
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_run_until_past_time_rejected(sim: Simulator):
    sim.run(until=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_run_until_event_returns_value(sim: Simulator):
    event = sim.timeout(4.0, value="v")
    assert sim.run(event) == "v"
    assert sim.now == 4.0


def test_run_until_event_deadlock_detected(sim: Simulator):
    never = sim.event()
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run(never)


def test_same_time_events_fifo(sim: Simulator):
    order = []
    for tag in ("a", "b", "c"):
        sim.schedule_callback(5.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_events_before_deadline_processed(sim: Simulator):
    hits = []
    sim.schedule_callback(3.0, lambda: hits.append(3))
    sim.schedule_callback(7.0, lambda: hits.append(7))
    sim.run(until=5.0)
    assert hits == [3]
    sim.run(until=10.0)
    assert hits == [3, 7]


def test_negative_delay_rejected(sim: Simulator):
    with pytest.raises(ValueError):
        sim.schedule_callback(-1.0, lambda: None)


def test_determinism_same_seed():
    def trace(seed: int) -> list[float]:
        simulator = Simulator(seed=seed)
        samples = []
        def proc():
            for _ in range(20):
                yield simulator.timeout(simulator.rng.uniform(0, 10))
                samples.append(simulator.now)
        simulator.process(proc())
        simulator.run()
        return samples
    assert trace(7) == trace(7)
    assert trace(7) != trace(8)


def test_max_steps_guard(sim: Simulator):
    def forever():
        while True:
            yield sim.timeout(1.0)
    sim.process(forever())
    with pytest.raises(RuntimeError, match="max_steps"):
        sim.run(max_steps=100)


def test_processed_events_counter(sim: Simulator):
    sim.schedule_callback(1.0, lambda: None)
    sim.schedule_callback(2.0, lambda: None)
    sim.run()
    assert sim.processed_events == 2
