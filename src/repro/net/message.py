"""Network messages."""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Message:
    """A datagram in flight between two hosts.

    ``payload`` is opaque to the network (the RPC layer puts request /
    response frames in it).  ``size_bytes`` only feeds the traffic
    accounting used by the §5.2 network-amplification analysis — the
    simulator does not model bandwidth-limited links, matching the
    paper's small-object (100 B) workloads where latency, not bandwidth,
    dominates.
    """

    src: str
    dst: str
    payload: typing.Any
    size_bytes: int = 100
    sent_at: float = 0.0
