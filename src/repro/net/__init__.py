"""Network fabric substrate.

Models the pieces of a datacenter network that the paper's evaluation
depends on:

- :class:`~repro.net.host.Host` — a machine with a NIC that serializes
  outgoing messages (per-message TX cost), crash/restart semantics, and
  a registry of the processes running on it.
- :class:`~repro.net.network.Network` — delivers messages between hosts
  with a configurable one-way latency model, drop probability and
  partitions; counts messages/bytes for the traffic-amplification
  analysis of §5.2.
- :class:`~repro.net.latency.LatencyModel` — per-pair one-way latency
  distributions (e.g. intra-datacenter vs wide-area links for the
  geo-replication example).
"""

from repro.net.host import Host
from repro.net.latency import LatencyModel
from repro.net.message import Frame, Message
from repro.net.network import Network

__all__ = ["Frame", "Host", "LatencyModel", "Message", "Network"]
