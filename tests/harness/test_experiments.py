"""Smoke tests for the per-figure experiment drivers (tiny parameters:
these verify plumbing and basic shape, not calibration — the
benchmarks assert the paper's shapes at full CI scale)."""

from __future__ import annotations

from repro.harness.experiments import (
    fig5_write_latency,
    fig6_write_throughput,
    fig7_ycsb_latency,
    fig11_witness_collisions,
    fig12_batch_size,
    sec52_network_amplification,
)
from repro.harness.redis_experiments import (
    fig8_set_latency,
    fig9_set_throughput,
    fig10_command_latency,
    fig13_latency_vs_throughput,
)


def test_fig5_driver_smoke():
    results = fig5_write_latency(n_ops=40)
    assert set(results) == {"Original RAMCloud (f=3)", "CURP (f=3)",
                            "CURP (f=2)", "CURP (f=1)", "Unreplicated"}
    assert all(r.count == 40 for r in results.values())
    assert results["Original RAMCloud (f=3)"].median \
        > results["CURP (f=3)"].median


def test_fig6_driver_smoke():
    series = fig6_write_throughput(client_counts=(2,), duration=800.0,
                                   warmup=200.0)
    assert all(len(points) == 1 for points in series.values())
    assert series["Unreplicated"][0][1] > 0


def test_fig7_driver_smoke():
    results = fig7_ycsb_latency(workload_name="YCSB-B", n_ops=30,
                                item_count=2_000)
    assert results["CURP (f=3)"].count == 30


def test_fig11_driver_smoke():
    series = fig11_witness_collisions(slot_counts=(64, 128),
                                      associativities=(1, 4), trials=30)
    direct = dict(series[1])
    fourway = dict(series[4])
    assert fourway[128] > direct[128]
    assert direct[128] > direct[64]


def test_fig12_driver_smoke():
    series = fig12_batch_size(batch_sizes=(5,), n_clients=4,
                              duration=800.0, warmup=200.0)
    assert series["CURP (f=3)"][0][0] == 5


def test_sec52_driver_smoke():
    result = sec52_network_amplification(n_ops=30)
    assert result["curp_bytes"] > result["original_bytes"]
    # Payload-copy accounting: 7 copies vs 4 (paper's +75%).
    assert 0.5 < result["amplification_copies"] < 1.0


def test_fig8_driver_smoke():
    results = fig8_set_latency(n_ops=40)
    assert results["Original Redis (durable)"].median \
        > results["Original Redis (non-durable)"].median


def test_fig9_driver_smoke():
    series = fig9_set_throughput(client_counts=(2,), duration=3_000.0,
                                 warmup=500.0)
    assert all(points[0][1] > 0 for points in series.values())


def test_fig10_driver_smoke():
    results = fig10_command_latency(n_ops=30)
    assert set(results["CURP (1 witness)"]) == {"SET", "HMSET", "INCR"}


def test_fig13_driver_smoke():
    series = fig13_latency_vs_throughput(client_counts=(1, 4),
                                         duration=3_000.0, warmup=500.0)
    curp = series["CURP (1 witness)"]
    assert len(curp) == 2
    assert curp[1][0] > curp[0][0]  # more clients, more throughput
