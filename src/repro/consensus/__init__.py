"""Consensus substrate: Raft + the CURP consensus extension (§A.2).

The paper sketches how CURP drops consensus update latency from 2 RTTs
to 1: clients record requests on *witness components* colocated with
the 2f+1 replicas while the strong leader executes speculatively and
replies before the quorum commit.  The fast path needs a
**superquorum** of f + ⌈f/2⌉ + 1 witness accepts, so that any f+1
recovery quorum contains a majority (⌈f/2⌉+1) of copies of every
completed-but-uncommitted request — the replay rule on leader change.

- :mod:`~repro.consensus.raft` — a from-scratch Raft: randomized
  elections, log replication, commit rules (including the
  current-term-only commit restriction), state-machine application,
  plus the CURP extension: speculative execution windows, witness
  components, term-tagged records (zombie leaders, §A.2), and the
  majority-of-quorum witness replay on leadership change.
- :mod:`~repro.consensus.client` — the 1-RTT client: propose + record
  in parallel, complete on superquorum, fall back to commit waits.
"""

from repro.consensus.raft import RaftNode, RaftConfig
from repro.consensus.client import RaftCurpClient, superquorum_size

__all__ = ["RaftConfig", "RaftCurpClient", "RaftNode", "superquorum_size"]
