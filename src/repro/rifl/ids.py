"""Unique RPC identifiers."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, order=True)
class TxnId:
    """Identifies one cross-shard transaction attempt (§B.2).

    Derived from the first RpcId the attempt allocated, so it is unique
    for the same reason RpcIds are: one lease-issued ``client_id`` plus
    that client's monotonic sequence.  Every participant shard sees the
    same TxnId; each shard's prepare still carries its own RpcId, which
    is what RIFL deduplicates.
    """

    client_id: int
    seq: int

    def __str__(self) -> str:
        return f"txn:{self.client_id}.{self.seq}"


@dataclasses.dataclass(frozen=True, order=True)
class RpcId:
    """Identifies one linearizable RPC, globally and forever.

    ``client_id`` is allocated by the lease server; ``seq`` increases by
    one per update RPC issued by that client.  Ordering (lexicographic)
    is meaningful only within one client.
    """

    client_id: int
    seq: int

    def __str__(self) -> str:
        return f"{self.client_id}.{self.seq}"
