"""Network messages."""

from __future__ import annotations

import typing


class Message:
    """A datagram in flight between two hosts.

    ``payload`` is opaque to the network (the RPC layer puts request /
    response frames in it).  ``size_bytes`` only feeds the traffic
    accounting used by the §5.2 network-amplification analysis — the
    simulator does not model bandwidth-limited links, matching the
    paper's small-object (100 B) workloads where latency, not bandwidth,
    dominates.

    A slotted plain class (not a dataclass): one Message is allocated
    per simulated packet, so construction cost and per-instance memory
    are on the hot path.  Treat instances as immutable.
    """

    __slots__ = ("src", "dst", "payload", "size_bytes", "sent_at")

    def __init__(self, src: str, dst: str, payload: typing.Any,
                 size_bytes: int = 100, sent_at: float = 0.0):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size_bytes = size_bytes
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(src={self.src!r}, dst={self.dst!r}, "
                f"payload={self.payload!r}, size_bytes={self.size_bytes}, "
                f"sent_at={self.sent_at})")


class Frame:
    """A coalesced NIC frame: several messages to one destination in
    one transmission (``CurpConfig.frame_coalescing``).

    Messages a host sends to the same destination within one virtual
    instant are packed into a single frame at the end-of-instant flush
    boundary (``Host._flush_frame``).  The frame costs one traffic-stats
    entry, one latency sample, one drop/partition roll, one delivery
    record and one rx dispatch — the per-message floor the ISSUE 4
    tentpole cuts — while the receiver unpacks and handles the contained
    messages in send order, so RPC semantics are unchanged.  A dropped
    or partitioned frame loses *all* contained messages, exactly as the
    same messages would have been lost individually.

    ``size_bytes`` is the sum of the contained messages' sizes (frame
    headers are not modelled, matching the Message header convention).
    """

    __slots__ = ("src", "dst", "messages", "size_bytes", "sent_at")

    def __init__(self, src: str, dst: str,
                 messages: "list[Message]", size_bytes: int,
                 sent_at: float = 0.0):
        self.src = src
        self.dst = dst
        self.messages = messages
        self.size_bytes = size_bytes
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Frame(src={self.src!r}, dst={self.dst!r}, "
                f"n={len(self.messages)}, size_bytes={self.size_bytes}, "
                f"sent_at={self.sent_at})")
