"""Consistent key → tablet → master routing for sharded clusters.

The coordinator owns one :class:`ShardMap` per configuration version:
an immutable, sorted snapshot of tablet ownership.  Clients cache it
inside their :class:`~repro.core.messages.ClusterView` and route every
operation with an O(log n) bisect over the tablet lower bounds, keyed
on :func:`repro.kvstore.hashing.key_hash` — the same 64-bit hash the
witnesses compare, so routing and commutativity agree on key identity.

A client holding a stale map is bounced by the owning master with a
``WRONG_SHARD`` error (the sharded analogue of §3.6's stale-witness
version check); it refetches the map from the coordinator and retries.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing

from repro.kvstore.hashing import key_hash

FULL_SPAN = 2 ** 64


@dataclasses.dataclass(frozen=True)
class ShardMap:
    """Immutable tablet-ownership snapshot, sorted for fast routing.

    ``starts``/``ends``/``owners`` are parallel tuples: tablet i covers
    key hashes in ``[starts[i], ends[i])`` and is owned by master
    ``owners[i]``.  Tablets never overlap; gaps are legal mid-migration
    and route to ``None``.
    """

    version: int
    starts: tuple[int, ...]
    ends: tuple[int, ...]
    owners: tuple[str, ...]

    @classmethod
    def from_tablets(cls, tablets: typing.Iterable[tuple[int, int, str]],
                     version: int = 0) -> "ShardMap":
        """Build from (lo, hi, master_id) triples in any order."""
        ordered = sorted(tablets)
        starts = tuple(lo for lo, _hi, _owner in ordered)
        ends = tuple(hi for _lo, hi, _owner in ordered)
        owners = tuple(owner for _lo, _hi, owner in ordered)
        for i in range(len(ordered)):
            if starts[i] >= ends[i]:
                raise ValueError(f"empty tablet {ordered[i]!r}")
            if i and starts[i] < ends[i - 1]:
                raise ValueError(
                    f"overlapping tablets {ordered[i - 1]!r} / {ordered[i]!r}")
        return cls(version=version, starts=starts, ends=ends, owners=owners)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def master_for_hash(self, key_hash_value: int) -> str | None:
        index = bisect.bisect_right(self.starts, key_hash_value) - 1
        if index < 0 or key_hash_value >= self.ends[index]:
            return None
        return self.owners[index]

    def master_for_key(self, key: str | bytes) -> str | None:
        return self.master_for_hash(key_hash(key))

    def group_keys(self, keys: typing.Iterable[str]) \
            -> dict[str, tuple[str, ...]]:
        """Partition ``keys`` by owning master (cross-shard fan-out).

        Returns ``{master_id: (keys...)}`` preserving each key's first-
        seen order within its group, so a transaction's per-shard slices
        are deterministic.  Raises :class:`KeyError` for a key routing
        to no master (a coverage gap mid-migration) — the caller must
        refresh its view and regroup rather than silently drop a key.
        """
        groups: dict[str, list[str]] = {}
        for key in keys:
            owner = self.master_for_hash(key_hash(key))
            if owner is None:
                raise KeyError(f"key {key!r} routes to no master "
                               f"(map version {self.version})")
            groups.setdefault(owner, []).append(key)
        return {owner: tuple(ks) for owner, ks in groups.items()}

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_tablets(self) -> int:
        return len(self.starts)

    def shard_ids(self) -> tuple[str, ...]:
        """Distinct owning masters, in first-tablet order."""
        return tuple(dict.fromkeys(self.owners))

    def tablets(self) -> tuple[tuple[int, int, str], ...]:
        return tuple(zip(self.starts, self.ends, self.owners))

    def covers_full_range(self) -> bool:
        """True when every possible key hash routes to some master."""
        if not self.starts or self.starts[0] != 0 or self.ends[-1] != FULL_SPAN:
            return False
        return all(self.ends[i] == self.starts[i + 1]
                   for i in range(len(self.starts) - 1))
