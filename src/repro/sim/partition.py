"""Conservative parallel discrete-event simulation (PDES) by partition.

Every optimization before this one made the single event loop faster;
this layer runs *several* event loops at once.  The cluster is split
into partitions (one shard — a master plus its witnesses and backups —
per partition, clients routed to the partition of the shard they
drive), each partition owns a full :class:`~repro.sim.simulator.
Simulator` + :class:`~repro.net.network.Network`, and the partitions
synchronize only at conservative-window barriers:

- **lookahead** ``L`` is a lower bound on the wire latency of any
  cross-partition message.  Within a window ``[T, T+L)`` no partition
  can affect another before ``T+L``, so all partitions run the window
  concurrently with no communication at all.
- at the **barrier** each partition drains its cross-partition
  :class:`~repro.net.mailbox.CrossPartitionMailbox` outbox; the runner
  routes the latency-stamped envelopes and the receivers schedule them
  into their own heaps (always in their future — enforced by
  :class:`~repro.net.mailbox.LookaheadViolation`).

This is classic null-message-free conservative PDES (Chandy–Misra with
a global window barrier), shaped to this codebase: the end-of-instant
frame-coalescing boundary already forces sends to quiesce before time
advances, so a window edge is indistinguishable from any other instant
boundary to protocol code.

Backends
--------
``inline``
    every partition in the calling process/thread.  No parallelism —
    this is the determinism-test and debugging backend, and the
    semantics reference for the others.
``process``
    one ``multiprocessing`` worker per partition (fork server where
    available, spawn otherwise).  Partition state is *built inside*
    the worker by the picklable ``setup`` callable, so nothing but
    commands and envelopes ever crosses the pipe.
``subinterpreter``
    one 3.12+ subinterpreter (PEP 684 per-interpreter GIL) per
    partition, each served by a thread, commands pickled over OS
    pipes.  Raises :class:`BackendUnavailable` on older interpreters.
``auto``
    ``process`` (subinterpreters remain opt-in while the stdlib API
    is provisional).

Determinism: each partition's simulator owns its rng and its heap, the
mailbox applies imports in a total order, and windows are fixed by
``(lookahead, until)`` — so a fixed seed and partition count reproduce
bit-identical results on any backend.  With one partition no window
chopping happens at all (the lookahead is infinite), which is what
keeps the serial golden traces byte-identical.

The driver contract: ``setup(partition_id, n_partitions, setup_args)``
returns any object with ``sim`` and ``network`` attributes; extra
methods on it (start workloads, snapshot counters, collect results)
are invoked at barriers via :meth:`PartitionedSimulation.call` and
must take/return picklable values for the out-of-process backends.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import struct
import sys
import threading
import time
import traceback
import typing


class BackendUnavailable(RuntimeError):
    """The requested worker backend cannot run on this interpreter."""


class PartitionError(RuntimeError):
    """A partition worker raised; carries the remote traceback."""


def subinterpreters_supported() -> bool:
    """True when this interpreter can host the subinterpreter backend
    (3.12+ with the low-level interpreters module present)."""
    if sys.version_info < (3, 12):
        return False
    return _interp_module() is not None


def _interp_module():
    try:  # 3.13+
        import _interpreters
        return _interpreters
    except ImportError:
        pass
    try:  # 3.12
        import _xxsubinterpreters
        return _xxsubinterpreters
    except ImportError:
        return None


def available_backends() -> tuple[str, ...]:
    backends = ["inline", "process"]
    if subinterpreters_supported():
        backends.append("subinterpreter")
    return tuple(backends)


# ----------------------------------------------------------------------
# the per-partition serve loop (shared by every out-of-process backend)
# ----------------------------------------------------------------------
def _serve(recv: typing.Callable[[], typing.Any],
           send: typing.Callable[[typing.Any], None]) -> None:
    """Run one partition behind a (recv, send) message pair.

    First message must be ``("init", setup, partition_id, n_partitions,
    setup_args)``; afterwards the loop answers ``advance`` / ``call`` /
    ``stop`` commands until told to exit.  Busy time is accumulated
    with ``time.process_time`` — CPU seconds actually spent inside
    this partition, the honest numerator for scaling measurements on
    oversubscribed machines.
    """
    driver = None
    mailbox = None
    sim = None
    busy = 0.0
    while True:
        try:
            command = recv()
        except EOFError:
            return
        op = command[0]
        try:
            if op == "init":
                _, setup, partition_id, n_partitions, setup_args = command
                t0 = time.process_time()
                driver = setup(partition_id, n_partitions, setup_args)
                busy += time.process_time() - t0
                sim = driver.sim
                mailbox = driver.network.mailbox
                min_latency = driver.network.latency.min_latency()
                send(("ready", min_latency, busy, sim.now))
            elif op == "advance":
                _, window_end, imports = command
                t0 = time.process_time()
                if imports:
                    mailbox.apply(imports)
                # A partition whose clock ran ahead (a driver call did
                # local RPC work) skips the window; the runner resyncs
                # the barrier to the max clock.
                if window_end > sim.now:
                    sim.run(until=window_end)
                busy += time.process_time() - t0
                send(("ok", None, _drain(mailbox), busy, sim.now))
            elif op == "call":
                _, name, args, kwargs = command
                t0 = time.process_time()
                result = getattr(driver, name)(*args, **kwargs)
                busy += time.process_time() - t0
                send(("ok", result, _drain(mailbox), busy, sim.now))
            elif op == "stop":
                send(("bye", busy))
                return
            else:  # pragma: no cover - protocol bug
                raise ValueError(f"unknown partition command: {op!r}")
        except Exception:
            send(("err", traceback.format_exc()))
            if op == "init":
                return


def _drain(mailbox) -> list:
    """Outbox → routed ``(dst_partition, envelope)`` pairs."""
    if mailbox is None:
        return []
    route = mailbox.route
    return [(route(env.dst), env) for env in mailbox.collect()]


# ----------------------------------------------------------------------
# backend: inline (reference semantics, used by determinism tests)
# ----------------------------------------------------------------------
class _InlinePartition:
    def __init__(self, setup, partition_id: int, n_partitions: int,
                 setup_args):
        t0 = time.process_time()
        self.driver = setup(partition_id, n_partitions, setup_args)
        self.busy = time.process_time() - t0
        self.sim = self.driver.sim
        self.mailbox = self.driver.network.mailbox
        self.min_latency = self.driver.network.latency.min_latency()

    @property
    def clock(self) -> float:
        return self.sim.now

    def advance(self, window_end: float, imports: list) -> list:
        t0 = time.process_time()
        if imports:
            self.mailbox.apply(imports)
        if window_end > self.sim.now:
            self.sim.run(until=window_end)
        self.busy += time.process_time() - t0
        return _drain(self.mailbox)

    def call(self, name: str, args, kwargs):
        t0 = time.process_time()
        result = getattr(self.driver, name)(*args, **kwargs)
        self.busy += time.process_time() - t0
        return result, _drain(self.mailbox)

    def stop(self) -> None:
        pass


# ----------------------------------------------------------------------
# backend: multiprocessing
# ----------------------------------------------------------------------
def _process_worker(conn) -> None:
    try:
        _serve(conn.recv, conn.send)
    finally:
        conn.close()


class _ProcessPartition:
    """Half-duplex command channel to one worker process.

    ``post`` / ``wait`` are split so the runner can issue a window to
    every partition before collecting any reply — that concurrency *is*
    the speedup.
    """

    def __init__(self, ctx, setup, partition_id: int, n_partitions: int,
                 setup_args):
        self.conn, child = multiprocessing.Pipe()
        self.proc = ctx.Process(target=_process_worker, args=(child,),
                                daemon=True,
                                name=f"sim-partition-{partition_id}")
        self.proc.start()
        child.close()
        self.busy = 0.0
        self.partition_id = partition_id
        self.conn.send(("init", setup, partition_id, n_partitions,
                        setup_args))
        reply = self._recv()
        self.min_latency = reply[1]
        self.busy = reply[2]
        self.clock = reply[3]

    def _recv(self):
        reply = self.conn.recv()
        if reply[0] == "err":
            raise PartitionError(
                f"partition {self.partition_id} worker failed:\n{reply[1]}")
        return reply

    def post_advance(self, window_end: float, imports: list) -> None:
        self.conn.send(("advance", window_end, imports))

    def post_call(self, name: str, args, kwargs) -> None:
        self.conn.send(("call", name, args, kwargs))

    def wait(self):
        """Collect one (result, exports) reply; updates busy/clock."""
        reply = self._recv()
        _tag, result, exports, self.busy, self.clock = reply
        return result, exports

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
            reply = self.conn.recv()
            if reply[0] == "bye":
                self.busy = reply[1]
        except (BrokenPipeError, EOFError, OSError):
            pass
        finally:
            self.conn.close()
            self.proc.join(timeout=5.0)
            if self.proc.is_alive():  # pragma: no cover - hung worker
                self.proc.terminate()
                self.proc.join(timeout=5.0)


# ----------------------------------------------------------------------
# backend: 3.12+ subinterpreters (per-interpreter GIL, PEP 684)
# ----------------------------------------------------------------------
_SUBINTERP_BOOTSTRAP = """\
import os, sys
sys.path[:0] = {path!r}
from repro.sim.partition import _fd_serve
_fd_serve({rfd}, {wfd})
"""


def _fd_send(wfile, obj) -> None:
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    wfile.write(struct.pack("<Q", len(blob)))
    wfile.write(blob)
    wfile.flush()


def _fd_recv(rfile):
    header = rfile.read(8)
    if len(header) < 8:
        raise EOFError
    (length,) = struct.unpack("<Q", header)
    blob = rfile.read(length)
    if len(blob) < length:
        raise EOFError
    return pickle.loads(blob)


def _fd_serve(rfd: int, wfd: int) -> None:
    """Entry point run *inside* a subinterpreter: serve the partition
    protocol over a pair of pipe file descriptors."""
    rfile = os.fdopen(rfd, "rb")
    wfile = os.fdopen(wfd, "wb")
    try:
        _serve(lambda: _fd_recv(rfile), lambda obj: _fd_send(wfile, obj))
    finally:
        rfile.close()
        wfile.close()


class _SubinterpreterPartition:
    """One partition on a dedicated subinterpreter.

    The interpreter runs :func:`_fd_serve` on a plain thread; with
    per-interpreter GILs (3.12+) the partitions execute Python code in
    true parallel inside one process.  Command traffic is pickled over
    two OS pipes, exactly the process backend's protocol.
    """

    def __init__(self, setup, partition_id: int, n_partitions: int,
                 setup_args):
        interp = _interp_module()
        if interp is None:  # pragma: no cover - guarded by caller
            raise BackendUnavailable(
                "subinterpreter backend needs Python 3.12+")
        self.partition_id = partition_id
        self.busy = 0.0
        self._interp = interp
        self._interp_id = interp.create()
        cmd_r, cmd_w = os.pipe()      # runner -> interpreter
        reply_r, reply_w = os.pipe()  # interpreter -> runner
        os.set_inheritable(cmd_r, True)
        os.set_inheritable(reply_w, True)
        self._wfile = os.fdopen(cmd_w, "wb")
        self._rfile = os.fdopen(reply_r, "rb")
        code = _SUBINTERP_BOOTSTRAP.format(
            path=[p for p in sys.path if p], rfd=cmd_r, wfd=reply_w)
        self._thread = threading.Thread(
            target=self._run_interp, args=(code,),
            name=f"sim-partition-{partition_id}", daemon=True)
        self._thread.start()
        _fd_send(self._wfile, ("init", setup, partition_id, n_partitions,
                               setup_args))
        reply = self._recv()
        self.min_latency = reply[1]
        self.busy = reply[2]
        self.clock = reply[3]

    def _run_interp(self, code: str) -> None:
        # run_string blocks this thread for the worker's lifetime; the
        # subinterpreter owns its own GIL, so the main interpreter (and
        # the other partitions) keep running.
        self._interp.run_string(self._interp_id, code)

    def _recv(self):
        reply = _fd_recv(self._rfile)
        if reply[0] == "err":
            raise PartitionError(
                f"partition {self.partition_id} subinterpreter failed:\n"
                f"{reply[1]}")
        return reply

    def post_advance(self, window_end: float, imports: list) -> None:
        _fd_send(self._wfile, ("advance", window_end, imports))

    def post_call(self, name: str, args, kwargs) -> None:
        _fd_send(self._wfile, ("call", name, args, kwargs))

    def wait(self):
        reply = self._recv()
        _tag, result, exports, self.busy, self.clock = reply
        return result, exports

    def stop(self) -> None:
        try:
            _fd_send(self._wfile, ("stop",))
            reply = _fd_recv(self._rfile)
            if reply[0] == "bye":
                self.busy = reply[1]
        except (BrokenPipeError, EOFError, OSError):
            pass
        finally:
            self._wfile.close()
            self._rfile.close()
            self._thread.join(timeout=5.0)
            try:
                self._interp.destroy(self._interp_id)
            except Exception:  # pragma: no cover - already dead
                pass


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class PartitionedSimulation:
    """Drive ``n_partitions`` simulators in conservative lockstep.

    Parameters
    ----------
    setup:
        picklable callable ``setup(partition_id, n_partitions,
        setup_args) -> driver`` where the driver exposes ``sim`` and
        ``network`` attributes (a :class:`~repro.harness.builder.
        Cluster` qualifies).  Runs once per partition, *inside* the
        worker for out-of-process backends.
    lookahead:
        conservative window length in µs.  ``None`` derives the bound
        from the latency models (min over partitions of
        ``LatencyModel.min_latency()``); pass an explicit value when
        cross-partition links are provably slower than the model-wide
        minimum — the mailbox's :class:`~repro.net.mailbox.
        LookaheadViolation` check still catches an overclaim.  With a
        single partition the lookahead is infinite and ``advance``
        degenerates to one plain ``sim.run`` per call, which is what
        keeps serial golden traces byte-identical.
    backend:
        ``"inline"``, ``"process"``, ``"subinterpreter"`` or
        ``"auto"`` (= process).
    """

    def __init__(self, setup, n_partitions: int, *,
                 setup_args: typing.Any = None,
                 lookahead: float | None = None,
                 backend: str = "auto"):
        if n_partitions < 1:
            raise ValueError(f"n_partitions must be >= 1: {n_partitions}")
        if backend == "auto":
            backend = "process"
        if backend not in ("inline", "process", "subinterpreter"):
            raise ValueError(f"unknown backend: {backend!r}")
        if backend == "subinterpreter" and not subinterpreters_supported():
            raise BackendUnavailable(
                "subinterpreter backend needs Python 3.12+ with the "
                "low-level interpreters module; use backend='process'")
        self.n_partitions = n_partitions
        self.backend = backend
        self.now = 0.0
        self.windows = 0
        self._closed = False
        self._pending: list[list] = [[] for _ in range(n_partitions)]
        if backend == "inline":
            self._parts: list = [
                _InlinePartition(setup, pid, n_partitions, setup_args)
                for pid in range(n_partitions)]
        elif backend == "process":
            ctx = self._mp_context()
            self._parts = [
                _ProcessPartition(ctx, setup, pid, n_partitions, setup_args)
                for pid in range(n_partitions)]
        else:
            self._parts = [
                _SubinterpreterPartition(setup, pid, n_partitions,
                                         setup_args)
                for pid in range(n_partitions)]
        # Setup may do local RPC work (client connects) that advances a
        # partition's clock; the first barrier starts at the max.
        self.now = max(part.clock for part in self._parts)
        if n_partitions == 1:
            self.lookahead = math.inf
        elif lookahead is not None:
            if lookahead <= 0:
                raise ValueError(f"lookahead must be positive: {lookahead}")
            self.lookahead = float(lookahead)
        else:
            derived = min(part.min_latency for part in self._parts)
            if derived <= 0:
                raise ValueError(
                    "latency models admit zero-latency messages, so no "
                    "conservative lookahead can be derived; give the "
                    "cross-partition links a positive floor (e.g. "
                    "Shifted) or pass lookahead= explicitly")
            self.lookahead = derived

    @staticmethod
    def _mp_context():
        # fork is cheapest and fully deterministic here (workers build
        # their own state, inheriting only module code); fall back to
        # spawn on platforms without it.
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - e.g. Windows
            return multiprocessing.get_context("spawn")

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def advance(self, until: float) -> None:
        """Run every partition to virtual time ``until``.

        Chops ``[now, until]`` into lookahead-sized windows with a
        barrier (outbox exchange) between each.  After the last window
        any envelope due exactly at ``until`` is delivered too, so a
        phase boundary observes the same state a serial run would.
        """
        until = float(until)
        if until < self.now:
            raise ValueError(f"until={until} is in the past ({self.now})")
        while self.now < until:
            window_end = min(self.now + self.lookahead, until)
            self._exchange(window_end)
            self.now = max(window_end,
                           max(part.clock for part in self._parts))
        while any(env.deliver_at <= until
                  for pending in self._pending for env in pending):
            self._exchange(until)

    def _exchange(self, window_end: float) -> None:
        """One window: post imports + the deadline to every partition
        (they run concurrently), then collect and route exports."""
        imports, self._pending = (self._pending,
                                  [[] for _ in range(self.n_partitions)])
        parts = self._parts
        if self.backend == "inline":
            routed = [part.advance(window_end, imports[pid])
                      for pid, part in enumerate(parts)]
        else:
            for pid, part in enumerate(parts):
                part.post_advance(window_end, imports[pid])
            routed = [part.wait()[1] for part in parts]
        for exports in routed:
            for dst_pid, env in exports:
                self._pending[dst_pid].append(env)
        self.windows += 1

    # ------------------------------------------------------------------
    # driver methods (barrier-synchronous RPC into the partitions)
    # ------------------------------------------------------------------
    def call(self, name: str, *args, **kwargs) -> list:
        """Invoke ``driver.<name>(*args, **kwargs)`` on every partition
        (concurrently for worker backends); returns per-partition
        results.  Only valid at a barrier — which is always, from the
        caller's point of view: ``advance`` never returns mid-window.
        """
        parts = self._parts
        if self.backend == "inline":
            replies = [part.call(name, args, kwargs) for part in parts]
        else:
            for part in parts:
                part.post_call(name, args, kwargs)
            replies = [part.wait() for part in parts]
        results = []
        for result, exports in replies:
            results.append(result)
            for dst_pid, env in exports:
                self._pending[dst_pid].append(env)
        self.now = max(self.now, max(part.clock for part in parts))
        return results

    def call_on(self, partition_id: int, name: str, *args, **kwargs):
        """Invoke a driver method on a single partition."""
        part = self._parts[partition_id]
        if self.backend == "inline":
            result, exports = part.call(name, args, kwargs)
        else:
            part.post_call(name, args, kwargs)
            result, exports = part.wait()
        for dst_pid, env in exports:
            self._pending[dst_pid].append(env)
        self.now = max(self.now, part.clock)
        return result

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    def scaling_stats(self) -> dict:
        """Per-partition busy CPU seconds and the critical path.

        ``critical_path`` (the slowest partition's busy time) is the
        wall-clock floor on a machine with >= n_partitions idle cores;
        ``total_busy / critical_path`` is the parallel speedup the
        partitioning itself makes available, independent of how many
        cores the measuring machine happens to have.
        """
        busy = [part.busy for part in self._parts]
        critical = max(busy) if busy else 0.0
        return {
            "busy": busy,
            "total_busy": sum(busy),
            "critical_path": critical,
            "windows": self.windows,
            "lookahead": self.lookahead,
            "backend": self.backend,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for part in self._parts:
            part.stop()

    def __enter__(self) -> "PartitionedSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
