"""Redis value types with Redis-style type discipline.

A key holds one of: string, hash, list, set.  Counters are strings
holding integer text, exactly like Redis (INCR on a non-integer string
errors; INCR on a missing key starts from 0).  Commands hitting a key
of the wrong type raise :class:`WrongTypeError` (Redis's WRONGTYPE).
"""

from __future__ import annotations

import typing


class WrongTypeError(Exception):
    """WRONGTYPE Operation against a key holding the wrong kind of value."""

    def __init__(self, key: str, expected: str, actual: str):
        super().__init__(
            f"WRONGTYPE key {key!r} holds {actual}, not {expected}")
        self.key = key


TYPE_NAMES = {str: "string", dict: "hash", list: "list", set: "set"}


class RedisStore:
    """The keyspace: key → string | hash | list | set."""

    def __init__(self) -> None:
        self._data: dict[str, typing.Any] = {}

    # ------------------------------------------------------------------
    # generic
    # ------------------------------------------------------------------
    def exists(self, key: str) -> bool:
        return key in self._data

    def delete(self, key: str) -> bool:
        return self._data.pop(key, None) is not None

    def type_of(self, key: str) -> str | None:
        value = self._data.get(key)
        return None if value is None else TYPE_NAMES[type(value)]

    def key_count(self) -> int:
        return len(self._data)

    def keys(self):
        return self._data.keys()

    def _typed(self, key: str, expected_type: type, create=None):
        value = self._data.get(key)
        if value is None:
            if create is None:
                return None
            value = create()
            self._data[key] = value
            return value
        if not isinstance(value, expected_type) or (
                expected_type is str and not isinstance(value, str)):
            raise WrongTypeError(key, TYPE_NAMES[expected_type],
                                 TYPE_NAMES[type(value)])
        return value

    # ------------------------------------------------------------------
    # strings / counters
    # ------------------------------------------------------------------
    def set_string(self, key: str, value: str) -> None:
        existing = self._data.get(key)
        if existing is not None and not isinstance(existing, str):
            # Redis SET overwrites any type.
            pass
        self._data[key] = value

    def get_string(self, key: str) -> str | None:
        return self._typed(key, str)

    def incr(self, key: str, delta: int = 1) -> int:
        current = self._typed(key, str)
        if current is None:
            new = delta
        else:
            try:
                new = int(current) + delta
            except ValueError:
                raise WrongTypeError(key, "integer string", "string") from None
        self._data[key] = str(new)
        return new

    # ------------------------------------------------------------------
    # hashes
    # ------------------------------------------------------------------
    def hset(self, key: str, mapping: dict[str, str]) -> int:
        value = self._typed(key, dict, create=dict)
        added = sum(1 for field in mapping if field not in value)
        value.update(mapping)
        return added

    def hget(self, key: str, field: str) -> str | None:
        value = self._typed(key, dict)
        return None if value is None else value.get(field)

    def hgetall(self, key: str) -> dict[str, str]:
        value = self._typed(key, dict)
        return {} if value is None else dict(value)

    # ------------------------------------------------------------------
    # lists
    # ------------------------------------------------------------------
    def lpush(self, key: str, *items: str) -> int:
        value = self._typed(key, list, create=list)
        for item in items:
            value.insert(0, item)
        return len(value)

    def rpush(self, key: str, *items: str) -> int:
        value = self._typed(key, list, create=list)
        value.extend(items)
        return len(value)

    def lrange(self, key: str, start: int, stop: int) -> list[str]:
        value = self._typed(key, list)
        if value is None:
            return []
        # Redis LRANGE stop is inclusive; -1 means end.
        if stop == -1:
            return list(value[start:])
        return list(value[start:stop + 1])

    def llen(self, key: str) -> int:
        value = self._typed(key, list)
        return 0 if value is None else len(value)

    # ------------------------------------------------------------------
    # sets
    # ------------------------------------------------------------------
    def sadd(self, key: str, *members: str) -> int:
        value = self._typed(key, set, create=set)
        added = 0
        for member in members:
            if member not in value:
                value.add(member)
                added += 1
        return added

    def smembers(self, key: str) -> set[str]:
        value = self._typed(key, set)
        return set() if value is None else set(value)

    def sismember(self, key: str, member: str) -> bool:
        value = self._typed(key, set)
        return False if value is None else member in value
