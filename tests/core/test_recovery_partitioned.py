"""Partitioned fast recovery (ISSUE 7): a dead master's tablets split
across surviving masters, each backup scanning one stripe of the log,
witness replay riding on top — plus the failure paths: no backups, no
witnesses, backups dying mid-read, and recovery racing the rebalancer.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import CurpConfig, ReplicationMode, StorageProfile
from repro.core.messages import RecordedRequest
from repro.core.recovery import RecoveryFailed, plan_partitions
from repro.harness import build_cluster
from repro.kvstore import MultiWrite, Write, key_hash


def storage_profile(**overrides) -> StorageProfile:
    defaults = dict(enabled=True, segment_size=16, append_time=0.5,
                    rotation_time=5.0, read_entry_time=0.3,
                    replay_entry_time=0.5)
    defaults.update(overrides)
    return StorageProfile(**defaults)


def partitioned_cluster(n_masters=3, storage=None, **kwargs):
    defaults = dict(f=3, mode=ReplicationMode.CURP, min_sync_batch=8,
                    idle_sync_delay=100.0, retry_backoff=10.0,
                    rpc_timeout=2_000.0)
    defaults.update(kwargs)
    if storage is not None:
        defaults["storage"] = storage
    return build_cluster(CurpConfig(**defaults), n_masters=n_masters)


def keys_on(cluster, master_id, count, tag="k"):
    ranges = cluster.coordinator.masters[master_id].owned_ranges
    keys, i = [], 0
    while len(keys) < count:
        key = f"{tag}{i}"
        i += 1
        if any(lo <= key_hash(key) < hi for lo, hi in ranges):
            keys.append(key)
    return keys


def load_master(cluster, master_id, count, unsynced=0):
    """``count`` synced writes + ``unsynced`` speculative stragglers."""
    client = cluster.new_client()
    keys = keys_on(cluster, master_id, count + unsynced)
    for i, key in enumerate(keys[:count]):
        cluster.run(client.update(Write(key, i)), timeout=10_000_000.0)
    cluster.settle(2_000.0)
    for i, key in enumerate(keys[count:]):
        cluster.run(client.update(Write(key, f"spec{i}")),
                    timeout=10_000_000.0)
    return keys


def run_recovery(cluster, master_id, recovery_masters, **kwargs):
    cluster.master(master_id).host.crash()
    return cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master_partitioned(
            master_id, recovery_masters, **kwargs)),
        timeout=50_000_000.0)


def assert_all_readable(cluster, keys):
    reader = cluster.new_client()
    for key in keys:
        value = cluster.run(reader.read(key), timeout=10_000_000.0)
        assert value is not None, f"{key} lost in recovery"


# ---------------------------------------------------------------------------
# the happy path, in every completion × framing mode
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fast_completion, frame_coalescing",
                         [(False, False), (True, False),
                          (False, True), (True, True)])
def test_partitioned_recovery_spreads_tablets(fast_completion,
                                              frame_coalescing):
    cluster = partitioned_cluster(storage=storage_profile(),
                                  fast_completion=fast_completion,
                                  frame_coalescing=frame_coalescing)
    keys = load_master(cluster, "m0", 30, unsynced=3)
    stats = run_recovery(cluster, "m0", ["m1", "m2"],
                         rpc_timeout=1_000_000.0)
    assert stats["partitions"] == 2
    assert stats["witness_requests"] >= 3
    assert sum(s["replayed"] for s in stats["absorbed"].values()) == 3
    assert sum(s["installed"] for s in stats["absorbed"].values()) == 30
    # the dead master is gone and its span is a partition of m1 + m2
    assert "m0" not in cluster.coordinator.masters
    assert cluster.shard_map.covers_full_range()
    assert {cluster.shard_for(k) for k in keys} <= {"m1", "m2"}
    assert_all_readable(cluster, keys)


def test_recovery_masters_absorb_onto_own_backups():
    """The re-replication half: absorbed data survives a *second* crash
    of the recovery master itself (classic single-target recovery)."""
    cluster = partitioned_cluster(storage=storage_profile())
    keys = load_master(cluster, "m0", 12, unsynced=2)
    run_recovery(cluster, "m0", ["m1"], rpc_timeout=1_000_000.0)
    cluster.master("m1").host.crash()
    standby = cluster.add_host("standby", role="master")
    cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master("m1", standby,
                                           rpc_timeout=1_000_000.0)),
        timeout=50_000_000.0)
    assert_all_readable(cluster, keys)


def test_disabled_profile_runs_are_identical():
    """Storage knobs must be inert while ``enabled`` is False: same
    virtual end time, same event count as a default-config run."""
    results = []
    for storage in (None, StorageProfile(enabled=False, segment_size=4,
                                         append_time=9.0, rotation_time=99.0,
                                         read_entry_time=9.0,
                                         compaction_interval=50.0)):
        config = CurpConfig(f=3, mode=ReplicationMode.CURP, min_sync_batch=8,
                            idle_sync_delay=100.0)
        if storage is not None:
            config = dataclasses.replace(config, storage=storage)
        cluster = build_cluster(config, seed=5)
        client = cluster.new_client()
        for i in range(20):
            cluster.run(client.update(Write(f"k{i}", i)))
        cluster.settle(2_000.0)
        results.append((cluster.sim.now, cluster.sim.processed_events))
    assert results[0] == results[1]


def test_enabled_profile_charges_backup_disks():
    cluster = partitioned_cluster(n_masters=1, storage=storage_profile())
    load_master(cluster, "m0", 40)
    backups = [cluster.coordinator.backup_servers[name]
               for name in cluster.backup_hosts["m0"]]
    for backup in backups:
        assert backup.disk.busy_time > 0
        assert backup.stats.entries_appended == 40
        assert backup.stats.segments_sealed == 40 // 16
    # the deferred-ack path still drains: everything is synced
    assert cluster.master("m0").unsynced_count == 0


# ---------------------------------------------------------------------------
# failure paths
# ---------------------------------------------------------------------------

def test_recovery_failed_when_no_backup_reachable():
    cluster = partitioned_cluster()
    load_master(cluster, "m0", 5)
    for name in cluster.backup_hosts["m0"]:
        cluster.network.hosts[name].crash()
    with pytest.raises(RecoveryFailed, match="fence"):
        run_recovery(cluster, "m0", ["m1"])
    # the failed attempt left the entry retryable
    assert not cluster.coordinator.masters["m0"].recovering


def test_recovery_failed_when_no_witness_reachable():
    cluster = partitioned_cluster()
    load_master(cluster, "m0", 5)
    for name in cluster.witness_hosts["m0"]:
        cluster.network.hosts[name].crash()
    with pytest.raises(RecoveryFailed, match="witness"):
        run_recovery(cluster, "m0", ["m1", "m2"])


def test_backup_crash_mid_recovery_retries_stripe_on_survivors():
    """A backup dying between fencing and its stripe read must not sink
    recovery: the window is re-read from a surviving backup."""
    cluster = partitioned_cluster(storage=storage_profile())
    keys = load_master(cluster, "m0", 30, unsynced=2)
    victim = cluster.network.hosts[cluster.backup_hosts["m0"][0]]

    def assassin():
        # Fencing + witness harvest take a few round trips; the stripe
        # reads behind the victim's disk are still in flight at t+12.
        yield cluster.sim.timeout(12.0)
        victim.crash()

    cluster.master("m0").host.crash()
    cluster.sim.process(assassin())
    stats = cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master_partitioned(
            "m0", ["m1", "m2"], rpc_timeout=300.0)),
        timeout=50_000_000.0)
    assert stats["partitions"] == 2
    assert_all_readable(cluster, keys)


def test_slow_disk_recovery_reads_each_stripe_once():
    """Regression (docs/STORAGE.md caveat): a stripe reply gated on a
    slow disk used to outlive the caller's ``rpc_timeout``; the retry
    then *re-charged* the disk, snowballing into a storm that read
    every stripe many times over (or sank recovery outright once the
    backup pool drained).  The stripe-read deadline is now derived from
    the modeled disk service time, so a network-sized ``rpc_timeout``
    far below the scan cost still reads each stripe exactly once."""
    def total_reads(rpc_timeout):
        cluster = partitioned_cluster(
            storage=storage_profile(read_entry_time=50.0))
        keys = load_master(cluster, "m0", 40, unsynced=2)
        backups = [cluster.coordinator.backup_servers[name]
                   for name in cluster.backup_hosts["m0"]]
        stats = run_recovery(cluster, "m0", ["m1", "m2"],
                             rpc_timeout=rpc_timeout)
        assert stats["partitions"] == 2
        assert_all_readable(cluster, keys)
        return sum(b.stats.recovery_entries_read for b in backups)

    generous = total_reads(1_000_000.0)
    assert generous > 0
    # 500 µs of network budget vs ~thousands of µs of scan per stripe:
    # the derived deadline must cover the disk, and the entry-read
    # totals must match the known-good generous-timeout run exactly —
    # any duplicate stripe read shows up as extra entries.
    assert total_reads(500.0) == generous


def test_concurrent_recovery_attempts_rejected():
    cluster = partitioned_cluster(storage=storage_profile())
    load_master(cluster, "m0", 20)
    cluster.master("m0").host.crash()
    first = cluster.sim.process(
        cluster.coordinator.recover_master_partitioned(
            "m0", ["m1"], rpc_timeout=1_000_000.0))
    cluster.sim.step()  # let the first attempt mark `recovering`
    with pytest.raises(RecoveryFailed, match="already recovering"):
        cluster.run(cluster.sim.process(
            cluster.coordinator.recover_master_partitioned(
                "m0", ["m2"], rpc_timeout=1_000_000.0)),
            timeout=50_000_000.0)
    cluster.run(first, timeout=50_000_000.0)
    assert "m0" not in cluster.coordinator.masters


# ---------------------------------------------------------------------------
# witness replay + partition planning
# ---------------------------------------------------------------------------

def test_unsynced_multiwrite_merges_partitions_and_replays_once():
    """A witnessed multi-key update whose keys straddle the partition
    cut must pull both chunks onto one recovery master (the ``owns_all``
    replay filter would otherwise drop it everywhere)."""
    cluster = partitioned_cluster(storage=storage_profile(),
                                  idle_sync_delay=10_000.0,
                                  min_sync_batch=500)
    client = cluster.new_client()
    keys = keys_on(cluster, "m0", 400)
    # two keys far apart in m0's hash span: straddle any 2-way cut
    hashed = sorted(keys, key=key_hash)
    straddle = [hashed[0], hashed[-1]]
    outcome = cluster.run(client.update(
        MultiWrite(tuple((k, "both") for k in straddle))),
        timeout=10_000_000.0)
    assert outcome is not None
    stats = run_recovery(cluster, "m0", ["m1", "m2"],
                         rpc_timeout=1_000_000.0)
    # the merge collapsed the plan to a single partition
    assert stats["partitions"] == 1
    assert sum(s["replayed"] for s in stats["absorbed"].values()) == 1
    assert_all_readable(cluster, straddle)


def test_plan_partitions_balances_and_merges():
    ranges = ((0, 1000),)
    partitions = plan_partitions(ranges, 4)
    assert len(partitions) == 4
    assert [p.span for p in partitions] == [250, 250, 250, 250]
    assert sorted(r for p in partitions for r in p.ranges) == [
        (0, 250), (250, 500), (500, 750), (750, 1000)]
    # a request whose keys land in two different chunks merges them
    full = ((0, 2 ** 64),)
    a = next(f"q{i}" for i in range(1000)
             if key_hash(f"q{i}") < 2 ** 62)
    b = next(f"q{i}" for i in range(1000)
             if key_hash(f"q{i}") >= 3 * 2 ** 62)
    merged = plan_partitions(full, 4, (
        RecordedRequest(op=MultiWrite(((a, 1), (b, 2))),
                        rpc_id=("c", 2)),))
    assert len(merged) == 3  # quarters 0 and 3 fused
    fused = next(p for p in merged if len(p.ranges) == 2)
    assert fused.requests and fused.requests[0].rpc_id == ("c", 2)


def test_plan_partitions_orphan_requests_ride_first_partition():
    orphan = RecordedRequest(op=Write("anywhere", 1), rpc_id=("c", 9))
    h = key_hash("anywhere")
    ranges = ((h + 1, h + 100),) if h + 100 < 2 ** 64 else ((0, h),)
    partitions = plan_partitions(ranges, 2, (orphan,))
    assert orphan in partitions[0].requests


# ---------------------------------------------------------------------------
# racing the rebalancer
# ---------------------------------------------------------------------------

def test_recovery_races_rebalancer():
    """The rebalancer must skip a recovering master and keep working
    afterwards; the final map stays a partition of the hash space."""
    cluster = partitioned_cluster(storage=storage_profile())
    keys = load_master(cluster, "m0", 25, unsynced=2)
    cluster.start_rebalancer(interval=50.0, min_ops=1, threshold=1.01)
    stats = run_recovery(cluster, "m0", ["m1", "m2"],
                         rpc_timeout=1_000_000.0)
    assert stats["partitions"] == 2
    cluster.settle(2_000.0)  # a few more rebalance rounds
    assert cluster.rebalancer.running
    assert cluster.shard_map.covers_full_range()
    assert_all_readable(cluster, keys)
    cluster.rebalancer.stop()
