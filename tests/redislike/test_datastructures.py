"""Unit tests for Redis data structures and the command table."""

from __future__ import annotations

import pytest

from repro.redislike.commands import Command, CommandError, execute
from repro.redislike.datastructures import RedisStore, WrongTypeError


@pytest.fixture
def store():
    return RedisStore()


def run(store, name, *args):
    return execute(store, Command(name, args))


def test_set_get_roundtrip(store):
    assert run(store, "SET", "k", "v") == "OK"
    assert run(store, "GET", "k") == "v"
    assert run(store, "GET", "missing") is None


def test_set_overwrites_any_type(store):
    run(store, "LPUSH", "k", "a")
    assert run(store, "SET", "k", "now-a-string") == "OK"
    assert run(store, "GET", "k") == "now-a-string"


def test_del_and_exists(store):
    run(store, "SET", "k", "v")
    assert run(store, "EXISTS", "k") == 1
    assert run(store, "DEL", "k") == 1
    assert run(store, "EXISTS", "k") == 0
    assert run(store, "DEL", "k") == 0


def test_type_reports(store):
    run(store, "SET", "s", "x")
    run(store, "HSET", "h", "f", "v")
    run(store, "LPUSH", "l", "a")
    run(store, "SADD", "st", "m")
    assert run(store, "TYPE", "s") == "string"
    assert run(store, "TYPE", "h") == "hash"
    assert run(store, "TYPE", "l") == "list"
    assert run(store, "TYPE", "st") == "set"
    assert run(store, "TYPE", "none") is None


def test_incr_semantics(store):
    assert run(store, "INCR", "c") == 1
    assert run(store, "INCR", "c") == 2
    assert run(store, "INCRBY", "c", "10") == 12
    assert run(store, "GET", "c") == "12"


def test_incr_on_non_integer_errors(store):
    run(store, "SET", "k", "not-a-number")
    with pytest.raises(WrongTypeError):
        run(store, "INCR", "k")


def test_wrongtype_on_string_ops_against_hash(store):
    run(store, "HSET", "h", "f", "v")
    with pytest.raises(WrongTypeError):
        run(store, "GET", "h")


def test_hash_commands(store):
    assert run(store, "HMSET", "h", {"a": "1", "b": "2"}) == "OK"
    assert run(store, "HGET", "h", "a") == "1"
    assert run(store, "HGET", "h", "missing") is None
    assert run(store, "HGETALL", "h") == {"a": "1", "b": "2"}
    assert run(store, "HSET", "h", "c", "3") == 1
    assert run(store, "HSET", "h", "c", "4") == 0  # overwrite adds 0


def test_list_commands(store):
    assert run(store, "RPUSH", "l", "a", "b") == 2
    assert run(store, "LPUSH", "l", "z") == 3
    assert run(store, "LRANGE", "l", "0", "-1") == ["z", "a", "b"]
    assert run(store, "LRANGE", "l", "0", "1") == ["z", "a"]
    assert run(store, "LLEN", "l") == 3
    assert run(store, "LLEN", "none") == 0


def test_set_commands(store):
    assert run(store, "SADD", "s", "a", "b", "a") == 2
    assert run(store, "SADD", "s", "b") == 0
    assert run(store, "SMEMBERS", "s") == {"a", "b"}
    assert run(store, "SISMEMBER", "s", "a") == 1
    assert run(store, "SISMEMBER", "s", "z") == 0


def test_unknown_command(store):
    with pytest.raises(CommandError):
        run(store, "FLUSHALL")


def test_arity_validation(store):
    with pytest.raises(CommandError):
        run(store, "SET", "k")
    with pytest.raises(CommandError):
        run(store, "GET", "k", "extra")


def test_command_classification():
    assert Command("SET", ("k", "v")).is_write
    assert not Command("GET", ("k",)).is_write
    assert Command("INCR", ("k",)).is_write
    assert not Command("LRANGE", ("k", "0", "-1")).is_write
    assert Command("SET", ("k", "v")).key == "k"
