"""Load-driven tablet splitting and rebalancing.

The paper's evaluation leans on skewed YCSB workloads (§5.3, Zipfian
θ=0.99); at cluster scale such skew pins one master while the rest
idle.  This module closes the loop the coordinator already has the
mechanisms for: masters account per-tablet load
(``CurpMaster._handle_load_report``), the :class:`Rebalancer`
periodically pulls those windows, detects a *hot* master
(``CurpConfig.rebalance_threshold`` × the mean), splits its hottest
tablet at a load-weighted key-hash point, and drives
``Coordinator.migrate`` to hand the split-off half to the coldest
master.  Clients converge through the existing ``WRONG_SHARD`` →
map-refresh path; witness safety is the migration protocol's (§3.6:
the source syncs before cutover, and post-cutover its witnesses
reject/evict records for migrated keys).

Everything here is deterministic — no randomness, virtual-time only —
so a seeded skewed run with rebalancing enabled pins to its own golden
trace (tests/sim/test_scheduler_determinism.py).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.messages import LoadReport
from repro.core.recovery import RecoveryFailed
from repro.rpc import RpcError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.coordinator import Coordinator


@dataclasses.dataclass
class RebalancerStats:
    """Counters the benchmarks and tests read."""

    #: report-pull rounds completed
    rounds: int = 0
    #: individual load reports received
    reports: int = 0
    #: tablet splits performed
    splits: int = 0
    #: tablet migrations driven
    migrations: int = 0
    #: post-move merge passes that actually coalesced tablets
    merges: int = 0
    #: cooling passes that coalesced a cold master's tablets
    cooling_merges: int = 0
    #: objects moved across all migrations
    keys_moved: int = 0
    #: moves abandoned because the source/destination kept failing
    aborted_moves: int = 0
    #: hot-master load over the mean, from the latest acted-on window
    last_imbalance: float = 0.0


def weighted_split_point(hash_ops: typing.Sequence[tuple[int, int]],
                         target: float) -> tuple[int, int] | None:
    """Pick the split hash that puts ~``target`` load in the low half.

    ``hash_ops`` is a (key_hash, ops) histogram sorted by hash.  The
    returned ``(split, low_load)`` cuts *between* histogram entries —
    every boundary candidate is considered and the one whose low-half
    load is closest to ``target`` wins (``target`` = half the tablet
    load makes this the load-weighted median).  ``None`` when fewer
    than two distinct hashes carry load, in which case there is no
    boundary that separates anything.
    """
    if len(hash_ops) < 2:
        return None
    best_split, best_low, best_err = None, 0, None
    low = 0
    for index in range(1, len(hash_ops)):
        low += hash_ops[index - 1][1]
        err = abs(low - target)
        if best_err is None or err < best_err:
            best_split, best_low, best_err = hash_ops[index][0], low, err
    return best_split, best_low


class Rebalancer:
    """The coordinator-side rebalancing loop.

    Created idle; :meth:`start` spawns the loop on the coordinator's
    host so its RPCs originate where a real configuration manager's
    would.  Knobs default to the cluster's
    :class:`~repro.core.config.CurpConfig` ``rebalance_*`` fields.
    """

    def __init__(self, coordinator: "Coordinator",
                 interval: float | None = None,
                 threshold: float | None = None,
                 min_ops: int | None = None,
                 rpc_timeout: float = 2_000.0,
                 cooling_max_ops: int | None = None):
        config = coordinator.config
        self.coordinator = coordinator
        self.sim = coordinator.sim
        self.interval = (config.rebalance_interval if interval is None
                         else interval)
        self.threshold = (config.rebalance_threshold if threshold is None
                          else threshold)
        self.min_ops = (config.rebalance_min_ops if min_ops is None
                        else min_ops)
        self.rpc_timeout = rpc_timeout
        #: per-master window below which a fragmented master counts as
        #: *cold* and its adjacent tablets get coalesced
        self.cooling_max_ops = (self.min_ops if cooling_max_ops is None
                                else cooling_max_ops)
        self.stats = RebalancerStats()
        self.running = False
        self._process = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Spawn the periodic loop (no-op interval 0 disables it)."""
        if self._process is not None and not self._process.triggered:
            raise RuntimeError("rebalancer already running")
        self.running = True
        if self.interval <= 0:
            return None
        self._process = self.coordinator.host.spawn(self._loop(),
                                                    name="rebalancer")
        return self._process

    def stop(self) -> None:
        """Stop at the next interval boundary."""
        self.running = False

    def _loop(self):
        while self.running:
            yield self.sim.timeout(self.interval)
            if not self.running:
                return
            yield from self.rebalance_once()

    # ------------------------------------------------------------------
    # one round
    # ------------------------------------------------------------------
    def rebalance_once(self):
        """Generator: pull one load window from every master; if one is
        hot, split its hottest tablet at the load-weighted point and
        migrate the split-off half to the coldest master.  Returns the
        ``(hot_id, cold_id, lo, hi)`` move or ``None``."""
        reports: dict[str, LoadReport] = {}
        for master_id, managed in list(self.coordinator.masters.items()):
            if managed.recovering:
                continue  # its window survives until the next round
            try:
                report = yield self.coordinator.transport.call(
                    managed.host, "load_report", None,
                    timeout=self.rpc_timeout)
            except RpcError:
                continue  # crashed/unreachable; recovery is out of band
            reports[master_id] = report
        self.stats.rounds += 1
        self.stats.reports += len(reports)
        plan = self._plan_move(reports)
        if plan is None:
            yield from self._cooling_pass(reports)
            return None
        hot_id, cold_id, move_lo, move_hi, splits = plan
        try:
            for tablet_lo, tablet_hi, at in splits:
                yield from self.coordinator.split_tablet(
                    hot_id, tablet_lo, tablet_hi, at,
                    rpc_timeout=self.rpc_timeout)
                self.stats.splits += 1
            moved = yield from self.coordinator.migrate(
                hot_id, cold_id, move_lo, move_hi,
                rpc_timeout=self.rpc_timeout)
        except (RecoveryFailed, ValueError):
            # The source/destination kept failing (crash mid-move) or
            # ownership changed under us (concurrent recovery): abandon
            # this move; the next window re-plans from fresh reports.
            self.stats.aborted_moves += 1
            return None
        self.stats.migrations += 1
        self.stats.keys_moved += moved
        # Coalesce both sides' adjacent tablets so long split/migrate
        # histories don't grow the ownership lists (and the per-op
        # ownership checks) without bound.  Best effort: a merge that
        # keeps failing just leaves finer tablets for the next round.
        for master_id in (hot_id, cold_id):
            count_before = len(
                self.coordinator.masters[master_id].owned_ranges)
            try:
                merged = yield from self.coordinator.merge_tablets(
                    master_id, rpc_timeout=self.rpc_timeout)
            except RecoveryFailed:
                continue
            if len(merged) < count_before:
                self.stats.merges += 1
        return hot_id, cold_id, move_lo, move_hi

    def _cooling_pass(self, reports: dict[str, LoadReport]):
        """Generator: coalesce adjacent tablets on *cold* masters.

        Split histories outlive the hot spots that caused them: once a
        once-hot shard cools, its fine-grained tablets only lengthen
        ownership lists and per-op ownership checks.  On rounds where no
        move is planned (so a merge can't race an imminent migration),
        any reporting master whose window decayed to
        ``cooling_max_ops`` or below gets its adjacent tablets merged.
        Hot masters are left fragmented on purpose — their fine tablets
        are exactly what the next split plan wants to work with.
        Masters already holding a single tablet are skipped without any
        RPC, so a stable cluster pays nothing for this pass.
        """
        for master_id in sorted(reports):
            if reports[master_id].window_ops > self.cooling_max_ops:
                continue
            managed = self.coordinator.masters.get(master_id)
            if managed is None or managed.recovering:
                continue
            if len(managed.owned_ranges) <= 1:
                continue
            count_before = len(managed.owned_ranges)
            try:
                merged = yield from self.coordinator.merge_tablets(
                    master_id, rpc_timeout=self.rpc_timeout)
            except RecoveryFailed:
                continue
            if len(merged) < count_before:
                self.stats.cooling_merges += 1

    def _plan_move(self, reports: dict[str, LoadReport]
                   ) -> tuple[str, str, int, int,
                              tuple[tuple[int, int, int], ...]] | None:
        """Turn one round of reports into at most one move.

        Returns ``(hot_id, cold_id, move_lo, move_hi, splits)`` —
        perform each ``(tablet_lo, tablet_hi, at)`` split on the hot
        master, then migrate ``[move_lo, move_hi)`` to the cold one —
        or ``None`` when the cluster is balanced or idle."""
        if len(reports) < 2:
            return None
        total = sum(r.window_ops for r in reports.values())
        if total < self.min_ops:
            return None
        mean = total / len(reports)
        hot_id = max(reports, key=lambda m: reports[m].window_ops)
        cold_id = min(reports, key=lambda m: reports[m].window_ops)
        hot = reports[hot_id]
        self.stats.last_imbalance = hot.window_ops / mean
        if hot.window_ops < self.threshold * mean or hot_id == cold_id:
            return None
        #: how much load the move should shift: enough to pull the hot
        #: master toward the mean without pushing the cold one past it
        budget = min(hot.window_ops - mean,
                     mean - reports[cold_id].window_ops)
        if budget <= 0:
            return None
        tablet, tablet_ops = max(hot.tablet_ops, key=lambda item: item[1])
        if tablet_ops <= 0:
            return None
        lo, hi = tablet
        histogram = [(h, c) for h, c in hot.hash_ops if lo <= h < hi]
        if tablet_ops <= budget:
            # The whole hottest tablet fits the budget: move it outright.
            return hot_id, cold_id, lo, hi, ()
        point = weighted_split_point(histogram,
                                     min(budget, tablet_ops / 2))
        if point is None:
            # A single key hash carries the tablet's whole load.  Carve
            # the narrowest possible tablet around it and move that —
            # unless doing so overshoots so far the imbalance would just
            # swap sides.  (A single key's load is unsplittable by
            # design: per-key ordering must stay on one master.)
            (key_hash_value, load), = histogram
            if load > 2 * budget:
                return None
            splits = []
            if lo < key_hash_value:
                splits.append((lo, hi, key_hash_value))
            if key_hash_value + 1 < hi:
                splits.append((key_hash_value, hi, key_hash_value + 1))
            return (hot_id, cold_id, key_hash_value, key_hash_value + 1,
                    tuple(splits))
        split, low_load = point
        if low_load > 2 * budget:
            # Even the best cut overshoots enough to ping-pong.
            return None
        return hot_id, cold_id, lo, split, ((lo, hi, split),)
