"""The CURP consensus client (§A.2).

An update completes in 1 RTT when

- the leader executed it speculatively and replied, **and**
- a *superquorum* of f + ⌈f/2⌉ + 1 of the 2f+1 witness components
  accepted the record.

Why a superquorum: during a leadership change only f+1 witnesses may be
reachable; a completed operation must appear on a majority (⌈f/2⌉+1)
of *any* f+1 of them, and any non-commutative operation can appear on
at most ⌊f/2⌋ — so majority-replay is both safe and sufficient (§A.2).

With fewer accepts the client falls back to ``wait_commit`` — 2 RTTs,
the classic strong-leader path.  Records carry the client's view of the
term; witnesses reject stale terms, which neutralizes clients still
talking to a deposed zombie leader.
"""

from __future__ import annotations

import math
import typing

from repro.core.messages import RecordedRequest
from repro.consensus.raft import ProposeArgs, ProposeReply, WitnessRecordArgs
from repro.kvstore.operations import Operation, Read
from repro.rifl import RiflClientTracker
from repro.rpc import AppError, RpcError, RpcTransport, backoff_delay
from repro.sim.events import QuorumEvent

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


def superquorum_size(f: int) -> int:
    """f + ⌈f/2⌉ + 1 witnesses must accept for the 1-RTT fast path."""
    return f + math.ceil(f / 2) + 1


class ConsensusGaveUp(Exception):
    """Retries exhausted (no reachable/stable leader)."""


class RaftCurpClient:
    """Client of a CURP-extended Raft group."""

    _next_client_id = 1000

    def __init__(self, host: "Host", replicas: typing.Sequence[str],
                 rpc_timeout: float = 1_000.0, max_attempts: int = 30,
                 retry_backoff: float = 500.0):
        RaftCurpClient._next_client_id += 1
        self.host = host
        self.sim = host.sim
        self.replicas = list(replicas)
        self.f = (len(self.replicas) - 1) // 2
        self.rpc_timeout = rpc_timeout
        #: cap (µs) for the bounded exponential retry backoff: attempt
        #: k sleeps equal-jittered in [span/2, span) with span =
        #: min(retry_backoff, retry_backoff/8 × 2^k) — short first
        #: retries (a leader election resolves in a few heartbeats),
        #: desynchronized long ones (no client retry storms against a
        #: group that stays leaderless)
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.transport = RpcTransport(host)
        self.tracker = RiflClientTracker(RaftCurpClient._next_client_id)
        self.leader: str | None = None
        self.term = 0
        self.fast_path_updates = 0
        self.completed_updates = 0

    # ------------------------------------------------------------------
    def find_leader(self):
        """Generator: poll replicas until someone claims leadership."""
        for attempt in range(self.max_attempts):
            for replica in self.replicas:
                try:
                    status = yield self.transport.call(
                        replica, "status", None, timeout=self.rpc_timeout)
                except RpcError:
                    continue
                self.term = max(self.term, status["term"])
                if status["role"] == "leader":
                    self.leader = replica
                    return replica
                if status["leader"] is not None:
                    self.leader = status["leader"]
            if self.leader is not None:
                return self.leader
            yield self.sim.timeout(self._retry_delay(attempt))
        raise ConsensusGaveUp("no leader found")

    def _retry_delay(self, attempt: int) -> float:
        """Bounded exponential backoff + jitter between retries."""
        return backoff_delay(attempt, self.retry_backoff / 8,
                             self.retry_backoff, self.sim.rng)

    def update(self, op: Operation):
        """Generator: a linearizable update; returns (result, fast)."""
        rpc_id = self.tracker.new_rpc()
        for attempt in range(self.max_attempts):
            if self.leader is None:
                yield from self.find_leader()
            leader = self.leader
            propose = ProposeArgs(op=op, rpc_id=rpc_id,
                                  ack_seq=self.tracker.first_incomplete)
            record = WitnessRecordArgs(
                term=self.term, key_hashes=op.key_hashes(), rpc_id=rpc_id,
                request=RecordedRequest(op=op, rpc_id=rpc_id))
            # Callback fan-out (1 propose + 2f+1 records): completions
            # land in one pre-sized join, no wrapper process per call.
            join = QuorumEvent(self.sim, 1 + len(self.replicas))
            self.transport.call_cb(leader, "propose", propose,
                                   join.child_result, 0,
                                   timeout=self.rpc_timeout * 4)
            for index, replica in enumerate(self.replicas):
                self.transport.call_cb(replica, "w_record", record,
                                       join.child_result, 1 + index,
                                       timeout=self.rpc_timeout)
            results = yield join
            head = results[0]
            if isinstance(head, AppError):
                status, payload = "app", head
            elif isinstance(head, BaseException):
                status, payload = "timeout", head
            else:
                status, payload = "ok", head
            accepts = 0
            for outcome in results[1:]:
                if isinstance(outcome, BaseException):
                    continue  # replica unreachable
                w_status, w_term, _hint = outcome
                self.term = max(self.term, w_term)
                if w_status == "ACCEPTED":
                    accepts += 1
            if status == "ok":
                reply: ProposeReply = payload
                self.term = max(self.term, reply.term)
                if reply.synced or accepts >= superquorum_size(self.f):
                    if not reply.synced:
                        self.fast_path_updates += 1
                    self.completed_updates += 1
                    self.tracker.completed(rpc_id)
                    return reply.result, not reply.synced
                # Slow path: wait for the quorum commit.
                try:
                    yield self.transport.call(leader, "wait_commit", None,
                                              timeout=self.rpc_timeout * 4)
                    self.completed_updates += 1
                    self.tracker.completed(rpc_id)
                    return reply.result, False
                except (AppError, RpcError):
                    pass  # leader fell; retry whole operation
            elif status == "app" and isinstance(payload, AppError):
                if payload.code == "NOT_LEADER":
                    hint = (payload.info or {}).get("hint")
                    self.term = max(self.term,
                                    (payload.info or {}).get("term", 0))
                    self.leader = hint if hint != leader else None
                else:
                    raise payload
            else:
                self.leader = None
            yield self.sim.timeout(self._retry_delay(attempt))
        raise ConsensusGaveUp(f"update {op!r} failed after "
                              f"{self.max_attempts} attempts")

    def read(self, key: str):
        """Generator: linearizable read (via the commit path)."""
        result, _fast = yield from self.update_readonly(Read(key))
        return result

    def update_readonly(self, op: Operation):
        for attempt in range(self.max_attempts):
            if self.leader is None:
                yield from self.find_leader()
            try:
                reply = yield self.transport.call(
                    self.leader, "propose",
                    ProposeArgs(op=op, rpc_id=None),
                    timeout=self.rpc_timeout * 4)
                self.term = max(self.term, reply.term)
                return reply.result, False
            except AppError as error:
                if error.code == "NOT_LEADER":
                    hint = (error.info or {}).get("hint")
                    self.leader = hint if hint != self.leader else None
                else:
                    raise
            except RpcError:
                self.leader = None
            yield self.sim.timeout(self._retry_delay(attempt))
        raise ConsensusGaveUp("read failed")

