"""Cluster builder: one call from nothing to a serving CURP cluster.

Used by the test suite (with ``TEST_PROFILE`` for exact RTT math), the
examples, and every benchmark (with the calibrated profiles).
"""

from __future__ import annotations

import dataclasses

from repro.cluster.coordinator import Coordinator
from repro.cluster.rebalancer import Rebalancer
from repro.core.client import CurpClient
from repro.core.config import CurpConfig
from repro.core.master import CurpMaster, MasterStats
from repro.harness.profiles import ClusterProfile, TEST_PROFILE
from repro.net.latency import LatencyModel
from repro.net.mailbox import CrossPartitionMailbox
from repro.net.network import Network
from repro.sim.simulator import Simulator


@dataclasses.dataclass
class Cluster:
    """A built cluster plus handles to everything in it."""

    sim: Simulator
    network: Network
    config: CurpConfig
    profile: ClusterProfile
    coordinator: Coordinator
    masters: dict[str, CurpMaster]
    backup_hosts: dict[str, list[str]]
    witness_hosts: dict[str, list[str]]
    clients: list[CurpClient]
    #: the load-driven rebalancer, once started (None = static tablets)
    rebalancer: "Rebalancer | None" = None
    _host_counter: int = 0
    #: prepended to generated client host names; partitioned builds use
    #: ``p{partition}-`` so dynamically-created clients are globally
    #: unique and prefix-routable across partitions ("" = serial build,
    #: names unchanged)
    client_prefix: str = ""
    #: which simulation partition this cluster slice is (0 for serial)
    partition_id: int = 0
    n_partitions: int = 1

    # ------------------------------------------------------------------
    # convenience plumbing
    # ------------------------------------------------------------------
    def master(self, master_id: str = "m0") -> CurpMaster:
        """The currently-active master object (tracks recoveries)."""
        managed = self.coordinator.masters.get(master_id)
        if managed is not None and managed.master is not None:
            return managed.master
        return self.masters[master_id]

    @property
    def shard_map(self):
        """The coordinator's current routing snapshot."""
        return self.coordinator.shard_map

    def shard_for(self, key: str) -> str | None:
        """Which master id owns ``key`` right now."""
        return self.shard_map.master_for_key(key)

    def total_master_stats(self) -> MasterStats:
        """Sum of every shard's :class:`MasterStats` (scale-out benches
        read aggregate throughput and gc traffic off this)."""
        total = MasterStats()
        for master_id in self.masters:
            stats = self.master(master_id).stats
            for field in dataclasses.fields(MasterStats):
                value = getattr(stats, field.name)
                if isinstance(value, dict):
                    merged = getattr(total, field.name)
                    for key, count in value.items():
                        merged[key] = merged.get(key, 0) + count
                else:
                    setattr(total, field.name,
                            getattr(total, field.name) + value)
        return total

    def run(self, generator_or_event, timeout: float | None = None):
        """Run a client generator (or event) to completion; returns its
        value.  ``timeout`` bounds simulated time (RuntimeError on
        expiry) so a buggy protocol can't hang the test suite."""
        from repro.sim.events import Event
        if isinstance(generator_or_event, Event):
            target = generator_or_event
        else:
            target = self.sim.process(generator_or_event)
        if timeout is not None:
            deadline = self.sim.now + timeout
            while not target.triggered:
                if self.sim.now > deadline or not self.sim.step():
                    raise RuntimeError(
                        f"cluster.run timed out at t={self.sim.now}")
            return target.value
        return self.sim.run(target)

    def new_client(self, collect_outcomes: bool = True) -> CurpClient:
        """Create and connect a client (runs the simulator briefly)."""
        self._host_counter += 1
        host = self.network.add_host(
            f"{self.client_prefix}client{self._host_counter}",
            tx_cost=self.profile.client.tx, rx_cost=self.profile.client.rx)
        client = CurpClient(host, self.config,
                            coordinator=self.coordinator.host.name,
                            collect_outcomes=collect_outcomes)
        self.run(client.connect())
        self.clients.append(client)
        return client

    def add_host(self, name: str, role: str = "client"):
        """Add a raw host costed per the profile role."""
        costs = getattr(self.profile, role)
        return self.network.add_host(name, tx_cost=costs.tx,
                                     rx_cost=costs.rx,
                                     shared_dispatch=costs.shared)

    def settle(self, quiet: float = 5_000.0) -> None:
        """Run the simulator for a while (drain syncs, timers)."""
        self.sim.run(until=self.sim.now + quiet)

    def inject_faults(self, plan) -> "FaultInjector":
        """Bind a :class:`~repro.net.faults.FaultPlan` to this cluster
        and start it.  Empty plans schedule nothing and draw nothing
        (the golden-trace contract); the returned injector exposes
        ``applied``/``reverted`` timelines and ``heal_all()``."""
        from repro.net.faults import FaultInjector
        injector = FaultInjector(self.network, plan,
                                 coordinator=self.coordinator)
        injector.start()
        return injector

    def start_rebalancer(self, **kwargs) -> "Rebalancer":
        """Start the load-driven rebalancer loop on the coordinator.

        Keyword arguments override the config's ``rebalance_*`` knobs
        (``interval``, ``threshold``, ``min_ops``, ``rpc_timeout``).
        Off by default: a cluster that never calls this keeps its
        tablets static, which is what every pre-existing golden trace
        pins."""
        if self.rebalancer is not None and self.rebalancer.running:
            raise RuntimeError("a rebalancer is already running on this "
                               "cluster; stop() it before starting another")
        rebalancer = Rebalancer(self.coordinator, **kwargs)
        rebalancer.start()
        self.rebalancer = rebalancer
        return rebalancer


def build_cluster(config: CurpConfig | None = None,
                  profile: ClusterProfile = TEST_PROFILE,
                  n_masters: int = 1,
                  seed: int = 0,
                  drop_rate: float = 0.0,
                  lease_duration: float = 10_000_000.0,
                  colocate_witnesses: bool = False,
                  multi_tenant_witnesses: bool = False) -> Cluster:
    """Build a cluster: coordinator + n masters, each with f backups and
    f witnesses (when the mode uses them), on a fresh simulator.

    ``n_masters > 1`` builds a sharded multi-master cluster: the key
    hash space is split evenly into one tablet per master, each shard
    gets its own backup and witness set, and clients route through the
    coordinator's :class:`~repro.cluster.shard_map.ShardMap`.

    ``colocate_witnesses=True`` places each witness on its backup's
    host — the paper's Figure 2 deployment ("witnesses are lightweight
    and can be co-hosted with backups").

    ``multi_tenant_witnesses=True`` builds f shared witness hosts
    (``wshared0..f-1``), each a
    :class:`~repro.core.witness.WitnessEndpoint` serving every
    master's witness set as a tenant — f hosts of witness hardware for
    the whole multi-shard cluster, with receive-side cross-master gc
    merging."""
    config = config or CurpConfig()
    if colocate_witnesses and multi_tenant_witnesses:
        raise ValueError("colocate_witnesses and multi_tenant_witnesses "
                         "are mutually exclusive deployments")
    sim = Simulator(seed=seed)
    network = Network(sim, latency=LatencyModel(profile.latency()),
                      drop_rate=drop_rate,
                      frame_coalescing=config.frame_coalescing)
    coordinator_host = network.add_host("coordinator",
                                        tx_cost=profile.coordinator.tx,
                                        rx_cost=profile.coordinator.rx)
    coordinator = Coordinator(coordinator_host, network, config,
                              lease_duration=lease_duration)

    masters: dict[str, CurpMaster] = {}
    backup_hosts: dict[str, list[str]] = {}
    witness_hosts: dict[str, list[str]] = {}
    shared_witnesses: list = []
    if multi_tenant_witnesses and config.uses_witnesses:
        for i in range(config.f):
            shared = network.add_host(f"wshared{i}",
                                      tx_cost=profile.witness.tx,
                                      rx_cost=profile.witness.rx)
            coordinator.add_witness_endpoint(
                shared, record_time=profile.witness_record_time)
            shared_witnesses.append(shared)
    span = 2 ** 64 // n_masters
    for index in range(n_masters):
        master_id = f"m{index}"
        master_host = network.add_host(f"{master_id}-host",
                                       tx_cost=profile.master.tx,
                                       rx_cost=profile.master.rx,
                                       shared_dispatch=profile.master.shared)
        backups = [network.add_host(f"{master_id}-backup{i}",
                                    tx_cost=profile.backup.tx,
                                    rx_cost=profile.backup.rx)
                   for i in range(config.f if config.uses_backups else 0)]
        if multi_tenant_witnesses and config.uses_witnesses:
            witnesses = shared_witnesses
        elif colocate_witnesses and config.uses_witnesses:
            if len(backups) < config.f:
                raise ValueError("colocation requires f backups")
            witnesses = backups[:config.f]
        else:
            witnesses = [network.add_host(f"{master_id}-witness{i}",
                                          tx_cost=profile.witness.tx,
                                          rx_cost=profile.witness.rx)
                         for i in range(config.f if config.uses_witnesses
                                        else 0)]
        lo = index * span
        hi = (index + 1) * span if index < n_masters - 1 else 2 ** 64
        master = coordinator.create_master(
            master_id, master_host,
            backup_hosts=backups, witness_hosts=witnesses,
            owned_ranges=((lo, hi),),
            backup_process_time=profile.backup_process_time,
            witness_record_time=profile.witness_record_time,
            n_workers=profile.master_workers,
            execute_time=profile.execute_time)
        masters[master_id] = master
        backup_hosts[master_id] = [b.name for b in backups]
        witness_hosts[master_id] = [w.name for w in witnesses]

    return Cluster(sim=sim, network=network, config=config, profile=profile,
                   coordinator=coordinator, masters=masters,
                   backup_hosts=backup_hosts, witness_hosts=witness_hosts,
                   clients=[])


def partition_masters(partition_id: int, n_partitions: int,
                      n_masters: int) -> range:
    """Master indices owned by one partition (contiguous blocks, the
    same split for every caller so builders and drivers agree)."""
    lo = partition_id * n_masters // n_partitions
    hi = (partition_id + 1) * n_masters // n_partitions
    return range(lo, hi)


def build_partitioned_cluster(partition_id: int,
                              n_partitions: int,
                              config: CurpConfig | None = None,
                              profile: ClusterProfile = TEST_PROFILE,
                              n_masters: int = 1,
                              seed: int = 0,
                              drop_rate: float = 0.0,
                              lease_duration: float = 10_000_000.0,
                              colocate_witnesses: bool = False) -> Cluster:
    """Build one partition's slice of a sharded cluster (PDES, ISSUE 9).

    The slice contains this partition's shards — each master with its
    own backups and witnesses, created with exactly the names and in
    exactly the order :func:`build_cluster` would use — plus a local
    coordinator whose :class:`~repro.cluster.shard_map.ShardMap` covers
    the *whole* keyspace: remote shards are recorded via
    :meth:`~repro.cluster.coordinator.Coordinator.
    register_external_master` and their host names registered with the
    partition's :class:`~repro.net.mailbox.CrossPartitionMailbox`, so
    local clients route to them transparently and the traffic crosses
    at the conservative-window barriers.

    With ``n_partitions == 1`` this *is* :func:`build_cluster` — same
    call, same rng stream, same host names — which is what keeps the
    serial golden traces byte-identical under the partition runner.

    ``multi_tenant_witnesses`` is not supported partitioned: a shared
    witness host serving every shard would put one host in every
    partition at once.
    """
    if not 0 <= partition_id < n_partitions:
        raise ValueError(f"partition_id {partition_id} out of range "
                         f"for {n_partitions} partitions")
    if n_partitions == 1:
        return build_cluster(config=config, profile=profile,
                             n_masters=n_masters, seed=seed,
                             drop_rate=drop_rate,
                             lease_duration=lease_duration,
                             colocate_witnesses=colocate_witnesses)
    if n_masters < n_partitions:
        raise ValueError(f"need at least one master per partition: "
                         f"{n_masters} masters, {n_partitions} partitions")
    config = config or CurpConfig()
    # Decorrelate the partitions' rng streams; partition 0 of P=1 keeps
    # the plain seed (the delegation above).
    sim = Simulator(seed=seed + 10_007 * partition_id)
    network = Network(sim, latency=LatencyModel(profile.latency()),
                      drop_rate=drop_rate,
                      frame_coalescing=config.frame_coalescing)
    mailbox = CrossPartitionMailbox(network, partition_id)
    coordinator_host = network.add_host(f"p{partition_id}-coordinator",
                                        tx_cost=profile.coordinator.tx,
                                        rx_cost=profile.coordinator.rx)
    coordinator = Coordinator(coordinator_host, network, config,
                              lease_duration=lease_duration)

    owner_of: dict[int, int] = {}
    for p in range(n_partitions):
        for index in partition_masters(p, n_partitions, n_masters):
            owner_of[index] = p

    masters: dict[str, CurpMaster] = {}
    backup_hosts: dict[str, list[str]] = {}
    witness_hosts: dict[str, list[str]] = {}
    span = 2 ** 64 // n_masters
    n_backups = config.f if config.uses_backups else 0
    n_witnesses = config.f if config.uses_witnesses else 0
    for index in range(n_masters):
        master_id = f"m{index}"
        backup_names = [f"{master_id}-backup{i}" for i in range(n_backups)]
        if colocate_witnesses and config.uses_witnesses:
            if n_backups < config.f:
                raise ValueError("colocation requires f backups")
            witness_names = backup_names[:config.f]
        else:
            witness_names = [f"{master_id}-witness{i}"
                             for i in range(n_witnesses)]
        lo = index * span
        hi = (index + 1) * span if index < n_masters - 1 else 2 ** 64
        if owner_of[index] == partition_id:
            master_host = network.add_host(
                f"{master_id}-host",
                tx_cost=profile.master.tx, rx_cost=profile.master.rx,
                shared_dispatch=profile.master.shared)
            backups = [network.add_host(name, tx_cost=profile.backup.tx,
                                        rx_cost=profile.backup.rx)
                       for name in backup_names]
            if colocate_witnesses and config.uses_witnesses:
                witnesses = backups[:config.f]
            else:
                witnesses = [network.add_host(name,
                                              tx_cost=profile.witness.tx,
                                              rx_cost=profile.witness.rx)
                             for name in witness_names]
            master = coordinator.create_master(
                master_id, master_host,
                backup_hosts=backups, witness_hosts=witnesses,
                owned_ranges=((lo, hi),),
                backup_process_time=profile.backup_process_time,
                witness_record_time=profile.witness_record_time,
                n_workers=profile.master_workers,
                execute_time=profile.execute_time)
            masters[master_id] = master
            backup_hosts[master_id] = backup_names
            witness_hosts[master_id] = list(witness_names)
        else:
            owner = owner_of[index]
            mailbox.register_remote(f"{master_id}-host", owner)
            for name in backup_names:
                mailbox.register_remote(name, owner)
            if not (colocate_witnesses and config.uses_witnesses):
                for name in witness_names:
                    mailbox.register_remote(name, owner)
            coordinator.register_external_master(
                master_id, f"{master_id}-host",
                backups=backup_names, witnesses=witness_names,
                owned_ranges=((lo, hi),))
    for q in range(n_partitions):
        if q != partition_id:
            mailbox.register_remote(f"p{q}-coordinator", q)
            mailbox.register_remote_prefix(f"p{q}-client", q)

    return Cluster(sim=sim, network=network, config=config, profile=profile,
                   coordinator=coordinator, masters=masters,
                   backup_hosts=backup_hosts, witness_hosts=witness_hosts,
                   clients=[], client_prefix=f"p{partition_id}-",
                   partition_id=partition_id, n_partitions=n_partitions)
