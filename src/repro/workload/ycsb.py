"""YCSB workload mixes (Cooper et al., SoCC'10), as used in §5.3.

- YCSB-A: 50% reads / 50% updates, Zipfian θ=0.99.
- YCSB-B: 95% reads /  5% updates, Zipfian θ=0.99.

The paper measures *write* latency under these mixes (Figure 7) on 1M
objects with 100 B values; our generators default to the same but every
knob is a parameter so CI-speed benches can shrink the key space.
"""

from __future__ import annotations

import dataclasses
import random

from repro.kvstore.operations import Operation, Read, Write
from repro.workload.zipfian import ScrambledZipfian, UniformGenerator


@dataclasses.dataclass(frozen=True)
class YcsbWorkload:
    """A read/update mix over a keyed value space."""

    name: str
    read_fraction: float
    item_count: int = 1_000_000
    value_size: int = 100
    theta: float = 0.99
    #: "zipfian" or "uniform"
    distribution: str = "zipfian"

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.distribution not in ("zipfian", "uniform"):
            raise ValueError(f"unknown distribution {self.distribution!r}")

    def generator(self) -> "YcsbOpStream":
        return YcsbOpStream(self)


class YcsbOpStream:
    """A stateful stream of operations for one workload."""

    def __init__(self, workload: YcsbWorkload):
        self.workload = workload
        if workload.distribution == "zipfian":
            self._chooser = ScrambledZipfian(workload.item_count,
                                             workload.theta)
        else:
            self._chooser = UniformGenerator(workload.item_count)
        self._value = "v" * workload.value_size

    def key(self, rng: random.Random) -> str:
        return f"user{self._chooser.next(rng)}"

    def next_op(self, rng: random.Random) -> Operation:
        key = self.key(rng)
        if rng.random() < self.workload.read_fraction:
            return Read(key)
        return Write(key, self._value)

    def next_update(self, rng: random.Random) -> Operation:
        """An update regardless of the mix (write-latency figures)."""
        return Write(self.key(rng), self._value)


def scaled(workload: YcsbWorkload, item_count: int) -> YcsbWorkload:
    """The same mix over a smaller key space (CI-speed benches)."""
    return dataclasses.replace(workload, item_count=item_count)


YCSB_A = YcsbWorkload(name="YCSB-A", read_fraction=0.5)
YCSB_B = YcsbWorkload(name="YCSB-B", read_fraction=0.95)
#: sequential-writer microbenchmark shape (Figures 5, 6, 12)
YCSB_WRITE_ONLY = YcsbWorkload(name="write-only", read_fraction=0.0,
                               distribution="uniform")
