"""Unit tests for the CURP master: speculative execution, commutativity
window, sync batching, duplicate filtering, modes."""

from __future__ import annotations

import pytest

from repro.core.config import CurpConfig, ReplicationMode
from repro.core.master import _subtract_range
from repro.core.messages import UpdateArgs, UpdateReply
from repro.harness import build_cluster
from repro.kvstore import Increment, MultiWrite, Write, key_hash
from repro.rifl import RpcId
from repro.rpc import AppError, RpcTransport


def curp_cluster(f=3, **config_kwargs):
    defaults = dict(f=f, mode=ReplicationMode.CURP, min_sync_batch=50,
                    idle_sync_delay=200.0)
    defaults.update(config_kwargs)
    return build_cluster(CurpConfig(**defaults))


def raw_caller(cluster):
    return RpcTransport(cluster.network.add_host("raw-caller"))


def update_args(op, seq, wlv=0, client_id=9):
    return UpdateArgs(op=op, rpc_id=RpcId(client_id, seq), ack_seq=1,
                      witness_list_version=wlv)


def test_speculative_reply_before_sync():
    cluster = curp_cluster()
    caller = raw_caller(cluster)
    reply = cluster.run(caller.call("m0-host", "update",
                                    update_args(Write("a", 1), 1)))
    assert reply == UpdateReply(result=1, synced=False)
    master = cluster.master()
    assert master.unsynced_count == 1  # replied before replication
    assert master.stats.speculative_replies == 1


def test_conflicting_write_synced_before_reply():
    """§3.2.3: an operation touching an unsynced object forces a sync
    and the reply is tagged synced."""
    cluster = curp_cluster()
    caller = raw_caller(cluster)
    cluster.run(caller.call("m0-host", "update",
                            update_args(Write("a", 1), 1)))
    reply = cluster.run(caller.call("m0-host", "update",
                                    update_args(Write("a", 2), 2)))
    assert reply.synced is True
    master = cluster.master()
    assert master.stats.conflict_syncs == 1
    assert master.unsynced_count == 0


def test_disjoint_writes_stay_speculative():
    cluster = curp_cluster()
    caller = raw_caller(cluster)
    for seq, key in enumerate("abcde", start=1):
        reply = cluster.run(caller.call("m0-host", "update",
                                        update_args(Write(key, seq), seq)))
        assert reply.synced is False
    assert cluster.master().unsynced_count == 5


def test_batch_threshold_triggers_sync():
    cluster = curp_cluster(min_sync_batch=3, idle_sync_delay=10_000.0)
    caller = raw_caller(cluster)
    for seq, key in enumerate("abc", start=1):
        cluster.run(caller.call("m0-host", "update",
                                update_args(Write(key, seq), seq)))
    cluster.settle(1_000.0)
    master = cluster.master()
    assert master.unsynced_count == 0
    assert master.stats.syncs >= 1


def test_idle_flush_syncs_stragglers():
    cluster = curp_cluster(min_sync_batch=50, idle_sync_delay=100.0)
    caller = raw_caller(cluster)
    cluster.run(caller.call("m0-host", "update",
                            update_args(Write("a", 1), 1)))
    assert cluster.master().unsynced_count == 1
    cluster.settle(500.0)
    assert cluster.master().unsynced_count == 0


def test_sync_gcs_witnesses():
    """§4.5: right after a sync the master gc's its witnesses."""
    cluster = curp_cluster(min_sync_batch=1, idle_sync_delay=50.0)
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    cluster.settle(1_000.0)
    master = cluster.master()
    assert master.stats.gc_rpcs == 3
    for witness_name in cluster.witness_hosts["m0"]:
        witness = cluster.coordinator.witness_servers[witness_name]
        assert witness.cache.occupied_slots() == 0


def test_duplicate_update_returns_saved_result():
    """RIFL at the master: a retried RpcId never re-executes."""
    cluster = curp_cluster()
    caller = raw_caller(cluster)
    first = cluster.run(caller.call("m0-host", "update",
                                    update_args(Increment("c", 5), 1)))
    dup = cluster.run(caller.call("m0-host", "update",
                                  update_args(Increment("c", 5), 1)))
    assert first.result == dup.result == 5
    assert cluster.master().store.read("c") == 5  # applied once
    assert cluster.master().stats.duplicates_filtered == 1


def test_duplicate_reply_reports_synced_after_sync():
    cluster = curp_cluster(min_sync_batch=1, idle_sync_delay=50.0)
    caller = raw_caller(cluster)
    first = cluster.run(caller.call("m0-host", "update",
                                    update_args(Write("a", 1), 1)))
    assert first.synced is False
    cluster.settle(1_000.0)
    dup = cluster.run(caller.call("m0-host", "update",
                                  update_args(Write("a", 1), 1)))
    assert dup.result == first.result
    assert dup.synced is True


def test_acked_rpc_is_stale():
    cluster = curp_cluster()
    caller = raw_caller(cluster)
    cluster.run(caller.call("m0-host", "update",
                            update_args(Write("a", 1), 1)))
    # ack_seq=2 acknowledges seq 1; replaying it afterwards is an error
    args = UpdateArgs(op=Write("b", 2), rpc_id=RpcId(9, 2), ack_seq=2,
                      witness_list_version=0)
    cluster.run(caller.call("m0-host", "update", args))
    with pytest.raises(AppError) as err:
        cluster.run(caller.call("m0-host", "update",
                                update_args(Write("a", 9), 1)))
    assert err.value.code == "STALE_RPC"


def test_wrong_witness_list_version_rejected():
    cluster = curp_cluster()
    caller = raw_caller(cluster)
    with pytest.raises(AppError) as err:
        cluster.run(caller.call("m0-host", "update",
                                update_args(Write("a", 1), 1, wlv=7)))
    assert err.value.code == "WRONG_WITNESS_VERSION"
    assert err.value.info == {"current": 0}


def test_wrong_shard_rejected():
    cluster = curp_cluster()
    master = cluster.master()
    h = key_hash("foreign")
    master.owned_ranges = _subtract_range(master.owned_ranges, (h, h + 1))
    caller = raw_caller(cluster)
    with pytest.raises(AppError) as err:
        cluster.run(caller.call("m0-host", "update",
                                update_args(Write("foreign", 1), 1)))
    assert err.value.code == "WRONG_SHARD"


def test_read_of_synced_key_is_fast():
    cluster = curp_cluster(min_sync_batch=1, idle_sync_delay=50.0)
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    cluster.settle(1_000.0)
    start = cluster.sim.now
    value = cluster.run(client.read("a"))
    assert value == 1
    assert cluster.sim.now - start == pytest.approx(4.0)  # 1 RTT


def test_read_of_unsynced_key_forces_sync():
    """§3.2.3/§A.3: returning an unsynced value could externalize state
    that dies with the master; the read must wait for a sync."""
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    assert cluster.master().unsynced_count == 1
    value = cluster.run(client.read("a"))
    assert value == 1
    assert cluster.master().unsynced_count == 0  # read forced the sync


def test_sync_mode_two_rtts():
    """Original primary-backup: reply only after backups ack."""
    cluster = build_cluster(CurpConfig(f=3, mode=ReplicationMode.SYNC))
    client = cluster.new_client()
    outcome = cluster.run(client.update(Write("a", 1)))
    assert outcome.synced_by_master is True
    assert outcome.fast_path is False
    assert outcome.latency == pytest.approx(8.0)  # 2 RTTs at 2 µs hops
    assert cluster.master().unsynced_count == 0


def test_unreplicated_mode_one_rtt():
    cluster = build_cluster(CurpConfig(f=0, mode=ReplicationMode.UNREPLICATED))
    client = cluster.new_client()
    outcome = cluster.run(client.update(Write("a", 1)))
    assert outcome.latency == pytest.approx(4.0)
    assert outcome.result == 1


def test_async_mode_one_rtt_without_witnesses():
    cluster = build_cluster(CurpConfig(f=3, mode=ReplicationMode.ASYNC))
    client = cluster.new_client()
    outcome = cluster.run(client.update(Write("a", 1)))
    assert outcome.latency == pytest.approx(4.0)
    assert outcome.fast_path is True
    assert cluster.witness_hosts["m0"] == []  # no witnesses exist


def test_curp_one_rtt_with_witnesses():
    cluster = curp_cluster()
    client = cluster.new_client()
    outcome = cluster.run(client.update(Write("a", 1)))
    assert outcome.latency == pytest.approx(4.0)  # records overlap
    assert outcome.fast_path is True


def test_multiwrite_recorded_and_synced():
    cluster = curp_cluster(min_sync_batch=1, idle_sync_delay=50.0)
    client = cluster.new_client()
    outcome = cluster.run(client.update(MultiWrite((("x", 1), ("y", 2)))))
    assert outcome.result == (1, 1)
    cluster.settle(1_000.0)
    assert cluster.master().store.read("x") == 1
    for backup_name in cluster.backup_hosts["m0"]:
        backup = cluster.coordinator.backup_servers[backup_name]
        assert backup._values["x"] == 1 and backup._values["y"] == 2


def test_hot_key_preemptive_sync():
    """§4.4: updating a recently-updated key triggers an immediate
    sync so future ops on the hot key find it synced."""
    cluster = curp_cluster(hot_key_window=1_000.0, min_sync_batch=50)
    caller = raw_caller(cluster)
    cluster.run(caller.call("m0-host", "update",
                            update_args(Write("other", 0), 1)))
    cluster.settle(300.0)  # idle flush syncs "other"
    cluster.run(caller.call("m0-host", "update",
                            update_args(Write("hot", 1), 2)))
    cluster.settle(300.0)
    # Second write to "hot" soon after: conflict is *avoided* because
    # the preemptive sync already cleaned the window... but the write
    # itself (within the window) triggers another preemptive sync.
    reply = cluster.run(caller.call("m0-host", "update",
                                    update_args(Write("hot", 2), 3)))
    assert reply.synced is False  # no blocking conflict
    assert cluster.master().stats.hot_key_syncs >= 1


def test_worker_pool_limits_concurrency():
    cluster = build_cluster(
        CurpConfig(f=0, mode=ReplicationMode.UNREPLICATED))
    master = cluster.master()
    master.execute_time = 10.0
    master.workers.capacity = 1
    caller = raw_caller(cluster)
    calls = [caller.call("m0-host", "update",
                         update_args(Write(f"k{i}", i), i + 1))
             for i in range(3)]
    cluster.run(cluster.sim.all_of(calls))
    # 3 ops serialized on 1 worker: 10+10+10 plus 2 RTT.
    assert cluster.sim.now == pytest.approx(34.0)


def test_subtract_range():
    assert _subtract_range([(0, 100)], (10, 20)) == [(0, 10), (20, 100)]
    assert _subtract_range([(0, 100)], (0, 100)) == []
    assert _subtract_range([(0, 10)], (50, 60)) == [(0, 10)]
    assert _subtract_range([(0, 10), (20, 30)], (5, 25)) == [(0, 5), (25, 30)]
