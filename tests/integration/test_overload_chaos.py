"""Overload chaos: flash crowds, mid-surge crashes, tenant fairness.

ISSUE 6's storm: an open-loop flash crowd pushes offered load far past
the cluster's execution capacity while the master crashes and recovers
*mid-surge*.  With the defenses on (admission control + pushback +
AIMD backpressure) every acknowledged operation must still form a
linearizable history in all four completion × framing modes — overload
protection may shed and delay, but never corrupt.

Plus the fairness half of the contract: on shared multi-tenant witness
endpoints, a hot tenant's record storm must not drive another tenant's
witness rejection rate above the noise floor.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import CurpConfig, OverloadConfig, ReplicationMode
from repro.harness import TEST_PROFILE, build_cluster
from repro.kvstore.operations import Read, Write
from repro.verify import History, check_linearizable
from repro.workload import (
    ConstantRate,
    FlashCrowd,
    KeySetWorkload,
    OpenLoopEngine,
    TenantSpec,
)

#: 1 worker × 200 µs/op = 5k ops/s — small enough that a modest surge
#: is a genuine overload and histories stay checkable
CHAOS_PROFILE = dataclasses.replace(TEST_PROFILE, name="overload-chaos",
                                    master_workers=1, execute_time=200.0)
CAPACITY = 5_000.0

MODES = [(False, False), (True, False), (False, True), (True, True)]


class UniqueValueWorkload:
    """Writes carry globally-unique values so the linearizability audit
    has teeth (identical values would let any read trivially match)."""

    def __init__(self, keys, read_fraction=0.35):
        self.keys = list(keys)
        self.read_fraction = read_fraction
        self._n = 0

    def generator(self):
        return self

    def next_op(self, rng):
        key = self.keys[rng.randrange(len(self.keys))]
        if rng.random() < self.read_fraction:
            return Read(key)
        self._n += 1
        return Write(key, f"v{self._n}")


def chaos_config(fast_completion, frame_coalescing, **overload_overrides):
    overload = dict(enabled=True, max_queue_depth=8, retry_after=150.0,
                    retry_after_cap=1_500.0)
    overload.update(overload_overrides)
    return CurpConfig(f=2, mode=ReplicationMode.CURP, min_sync_batch=8,
                      idle_sync_delay=150.0, retry_backoff=30.0,
                      rpc_timeout=1_000.0, max_attempts=100,
                      gc_stale_threshold=1_000_000,
                      fast_completion=fast_completion,
                      frame_coalescing=frame_coalescing,
                      overload=OverloadConfig(**overload))


@pytest.mark.parametrize("fast_completion, frame_coalescing", MODES)
@pytest.mark.parametrize("seed", [17, 18])
def test_flash_crowd_with_mid_surge_crash_stays_linearizable(
        seed, fast_completion, frame_coalescing):
    """A 10× flash crowd hits at t=8 ms; the master crashes at t=12 ms
    (mid-surge) and is recovered onto a standby while arrivals keep
    coming.  Acknowledged ops stay linearizable, the engine keeps
    counting, and traffic completes again after recovery."""
    cluster = build_cluster(
        chaos_config(fast_completion, frame_coalescing),
        profile=CHAOS_PROFILE, seed=seed)
    history = History()
    surge = FlashCrowd(CAPACITY / 5, multiplier=10.0,
                       surge_start=8_000.0, surge_end=20_000.0)
    spec = TenantSpec(name="crowd", schedule=surge,
                      workload=UniqueValueWorkload(
                          [f"fk{i}" for i in range(6)]),
                      n_clients=6)
    engine = OpenLoopEngine(cluster, [spec], max_window=16,
                            max_queue_wait=6_000.0, history=history)

    recovered = []

    def storm():
        yield cluster.sim.timeout(12_000.0)  # mid-surge
        cluster.master().host.crash()
        yield cluster.sim.timeout(200.0)
        standby = cluster.add_host("surge-standby", role="master")
        yield cluster.sim.process(
            cluster.coordinator.recover_master("m0", standby))
        recovered.append(cluster.sim.now)

    engine.start()
    storm_process = cluster.sim.process(storm())
    cluster.sim.run(until=cluster.sim.now + 30_000.0)
    engine.stop()
    assert engine.drain(timeout=5_000_000.0), "in-flight ops stuck"
    assert storm_process.triggered and recovered

    tenant = engine.tenants[0]
    result = engine.results(elapsed=30_000.0)["per_tenant"]["crowd"]
    assert result["offered"] > 50, "flash crowd never arrived"
    assert result["completed"] > 0
    # The surge pushed past capacity: the defenses actually engaged.
    assert result["pushbacks"] > 0 or result["dropped"] > 0
    # Post-recovery the cluster still serves: ops completed after the
    # crash instant, not just before it.
    assert any(not r.is_pending and r.completed_at > recovered[0]
               for r in history.records), "nothing completed post-recovery"
    assert tenant.in_flight == 0
    check_linearizable(history)


@pytest.mark.parametrize("fast_completion, frame_coalescing", MODES)
def test_defenses_off_flash_crowd_still_linearizable(fast_completion,
                                                     frame_coalescing):
    """Sanity for the contract's other half: with defenses *off* the
    naive open loop may collapse into timeouts and give-ups, but
    acknowledged operations are still linearizable (overload is a
    performance failure, never a safety one)."""
    config = chaos_config(fast_completion, frame_coalescing)
    config.overload = OverloadConfig(enabled=False)
    config.max_attempts = 5  # let the collapse actually give up
    cluster = build_cluster(config, profile=CHAOS_PROFILE, seed=23)
    history = History()
    spec = TenantSpec(name="naive", schedule=ConstantRate(CAPACITY * 4),
                      workload=UniqueValueWorkload(
                          [f"nk{i}" for i in range(4)]),
                      n_clients=4)
    engine = OpenLoopEngine(cluster, [spec], history=history)
    engine.run(duration=15_000.0)
    engine.drain(timeout=5_000_000.0)
    result = engine.results(elapsed=15_000.0)["per_tenant"]["naive"]
    assert result["offered"] > 100
    check_linearizable(history)


def test_hot_tenant_cannot_starve_quiet_tenants_witnesses():
    """Two masters share multi-tenant witness endpoints with windowed
    fair admission.  A hot tenant pinned to m0 offers 4× the cluster's
    capacity; a quiet tenant pinned to m1 offers a trickle.  The hot
    tenant's record storm gets throttled — the quiet tenant's witness
    rejection rate stays at the noise floor and its goodput tracks its
    offered load."""
    # Budget sizing: the hot tenant's record rate (admitted attempts +
    # retries) runs ~20 records/ms here, the quiet tenant's ~2/ms.  A
    # budget of 8/ms with two tenants puts fair share at 4/ms — the hot
    # tenant binds hard, the quiet one stays comfortably under share.
    config = chaos_config(False, False, witness_window=1_000.0,
                          witness_window_records=8)
    cluster = build_cluster(config, profile=CHAOS_PROFILE, seed=29,
                            n_masters=2, multi_tenant_witnesses=True)

    def keys_owned_by(master_id, count):
        keys = [k for k in (f"fair{i}" for i in range(400))
                if cluster.shard_for(k) == master_id]
        assert len(keys) >= count
        return tuple(keys[:count])

    tenants = [
        TenantSpec(name="hot",
                   schedule=ConstantRate(CAPACITY * 4),
                   workload=KeySetWorkload(name="hot",
                                           keys=keys_owned_by("m0", 12),
                                           value_size=8),
                   n_clients=8),
        TenantSpec(name="quiet",
                   schedule=ConstantRate(CAPACITY / 5),
                   workload=KeySetWorkload(name="quiet",
                                           keys=keys_owned_by("m1", 6),
                                           value_size=8),
                   n_clients=2),
    ]
    engine = OpenLoopEngine(cluster, tenants, max_window=32,
                            max_queue_wait=5_000.0)
    result = engine.run(duration=25_000.0, warmup=5_000.0)

    records = {"m0": 0, "m1": 0}
    throttled = {"m0": 0, "m1": 0}
    endpoints = list(cluster.coordinator.witness_endpoints.values())
    assert endpoints, "multi-tenant endpoints were not built"
    for endpoint in endpoints:
        for master_id in records:
            records[master_id] += endpoint.tenant_records.get(master_id, 0)
            throttled[master_id] += \
                endpoint.tenant_throttled.get(master_id, 0)

    def throttle_rate(master_id):
        total = records[master_id] + throttled[master_id]
        return throttled[master_id] / total if total else 0.0

    assert records["m0"] > 0 and records["m1"] > 0
    # The budget binds on the hot tenant...
    assert throttle_rate("m0") > 0.05, (records, throttled)
    # ...and never on the quiet one.
    assert throttle_rate("m1") < 0.02, (records, throttled)
    quiet = result["per_tenant"]["quiet"]
    assert quiet["goodput"] >= 0.8 * quiet["offered_per_sec"]
