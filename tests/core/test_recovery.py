"""Crash-recovery tests (§3.3, §4.6): restore + replay, exactly-once,
ordering safety."""

from __future__ import annotations

import pytest

from repro.core.config import CurpConfig, ReplicationMode
from repro.core.recovery import RecoveryFailed, recover
from repro.harness import build_cluster
from repro.kvstore import Increment, Write, key_hash


def curp_cluster(**kwargs):
    defaults = dict(f=3, mode=ReplicationMode.CURP, min_sync_batch=50,
                    idle_sync_delay=200.0, retry_backoff=10.0,
                    rpc_timeout=100.0)
    defaults.update(kwargs)
    return build_cluster(CurpConfig(**defaults))


def crash_and_recover(cluster, master_id="m0"):
    cluster.master(master_id).host.crash()
    standby = cluster.add_host(f"standby-{cluster.sim.now}", role="master")
    stats = cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master(master_id, standby)),
        timeout=1_000_000.0)
    return cluster.coordinator.masters[master_id].master, stats


def test_unsynced_speculative_writes_recovered_from_witness():
    cluster = curp_cluster()
    client = cluster.new_client()
    for i in range(5):
        outcome = cluster.run(client.update(Write(f"k{i}", i)))
        assert outcome.fast_path
    assert cluster.master().unsynced_count == 5
    new_master, stats = crash_and_recover(cluster)
    assert stats["replayed"] == 5
    assert stats["restored_entries"] == 0
    for i in range(5):
        assert new_master.store.read(f"k{i}") == i
    assert new_master.unsynced_count == 0  # final sync ran


def test_synced_writes_recovered_from_backup_not_reexecuted():
    """Replay of requests already on backups must be RIFL-filtered."""
    cluster = curp_cluster(min_sync_batch=1, idle_sync_delay=50.0)
    client = cluster.new_client()
    cluster.run(client.update(Increment("c", 10)))
    cluster.run(cluster.sim.timeout(30.0))  # synced but NOT yet gc'd?
    cluster.settle(1_000.0)
    # Write again without letting gc finish this time: crash quickly.
    cluster.run(client.update(Increment("c", 10)))  # conflicts → synced
    new_master, stats = crash_and_recover(cluster)
    # Increment must not be applied a third time.
    assert new_master.store.read("c") == 20


def test_mixed_synced_and_unsynced_recovery():
    cluster = curp_cluster(min_sync_batch=3, idle_sync_delay=10_000.0)
    client = cluster.new_client()
    for i in range(3):  # batch of 3 → synced
        cluster.run(client.update(Write(f"s{i}", i)))
    cluster.settle(500.0)
    for i in range(2):  # unsynced stragglers
        cluster.run(client.update(Write(f"u{i}", i * 100)))
    new_master, stats = crash_and_recover(cluster)
    assert stats["restored_entries"] >= 3
    assert stats["replayed"] == 2
    for i in range(3):
        assert new_master.store.read(f"s{i}") == i
    for i in range(2):
        assert new_master.store.read(f"u{i}") == i * 100


def test_witness_freezes_during_recovery():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    new_master, _ = crash_and_recover(cluster)
    # The first witness (used for replay) was re-started by the
    # coordinator for the new master — it must be empty and NORMAL.
    for name in cluster.witness_hosts["m0"]:
        witness = cluster.coordinator.witness_servers[name]
        assert witness.mode == "normal"
        assert witness.cache.occupied_slots() == 0
    # Witness list version bumped so stale clients are rejected.
    assert cluster.coordinator.masters["m0"].witness_list_version == 1


def test_recovery_requires_a_witness():
    """§3.3: with every witness unreachable the recovery must wait
    (fail here), not proceed and silently lose completed updates."""
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    for name in cluster.witness_hosts["m0"]:
        cluster.network.hosts[name].crash()
    cluster.master().host.crash()
    standby = cluster.add_host("standby", role="master")
    with pytest.raises(RecoveryFailed):
        cluster.run(cluster.sim.process(
            cluster.coordinator.recover_master("m0", standby)),
            timeout=10_000_000.0)


def test_recovery_requires_a_backup():
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    for name in cluster.backup_hosts["m0"]:
        cluster.network.hosts[name].crash()
    cluster.master().host.crash()
    standby = cluster.add_host("standby", role="master")
    with pytest.raises(RecoveryFailed):
        cluster.run(cluster.sim.process(
            cluster.coordinator.recover_master("m0", standby)),
            timeout=10_000_000.0)


def test_recovery_survives_one_dead_backup_and_one_dead_witness():
    """f=3 tolerates f failures *of each kind* for recovery: any one
    backup plus any one witness suffices."""
    cluster = curp_cluster()
    client = cluster.new_client()
    for i in range(4):
        cluster.run(client.update(Write(f"k{i}", i)))
    cluster.network.hosts[cluster.backup_hosts["m0"][0]].crash()
    cluster.network.hosts[cluster.witness_hosts["m0"][0]].crash()
    cluster.network.hosts[cluster.witness_hosts["m0"][1]].crash()
    new_master, stats = crash_and_recover(cluster)
    for i in range(4):
        assert new_master.store.read(f"k{i}") == i


def test_zombie_master_cannot_sync_after_fencing():
    """§4.7: a partitioned (not crashed) master is fenced by recovery;
    its later syncs fail and it becomes deposed."""
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("a", 1)))
    zombie = cluster.master()
    # Partition the master from clients/coordinator but NOT from
    # backups: it still thinks it is in charge.
    cluster.network.partition("m0-host", "coordinator")
    cluster.network.partition("m0-host", client.host.name)
    standby = cluster.add_host("standby", role="master")
    cluster.run(cluster.sim.process(
        cluster.coordinator.recover_master("m0", standby)),
        timeout=1_000_000.0)
    # Zombie tries to sync new state — backups reject (FENCED).
    zombie.store.execute(Write("zombie-write", 666))
    done = zombie._request_sync(zombie.store.log.end)
    cluster.run(cluster.sim.timeout(2_000.0))
    assert zombie.deposed
    # The zombie write never reached a backup.
    for name in cluster.backup_hosts["m0"]:
        backup = cluster.coordinator.backup_servers[name]
        assert "zombie-write" not in backup._values


def test_replay_filters_keys_not_owned():
    """§3.6: requests for migrated-away partitions recorded on old
    witnesses are ignored during replay."""
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("mine", 1)))
    cluster.run(client.update(Write("foreign", 2)))
    # Simulate a migration that moved "foreign" away (coordinator's
    # record changes, witness still holds the request).
    h = key_hash("foreign")
    managed = cluster.coordinator.masters["m0"]
    from repro.core.master import _subtract_range
    managed.owned_ranges = _subtract_range(managed.owned_ranges, (h, h + 1))
    new_master, stats = crash_and_recover(cluster)
    assert stats["filtered"] >= 1
    assert new_master.store.read("mine") == 1
    assert new_master.store.read("foreign") is None


def test_completed_op_survives_even_when_synced_and_gced():
    cluster = curp_cluster(min_sync_batch=1, idle_sync_delay=20.0)
    client = cluster.new_client()
    outcomes = [cluster.run(client.update(Write(f"k{i}", i)))
                for i in range(10)]
    cluster.settle(2_000.0)
    new_master, _ = crash_and_recover(cluster)
    for i in range(10):
        assert new_master.store.read(f"k{i}") == i


def test_recover_on_inactive_master_only():
    cluster = curp_cluster()
    master = cluster.master()
    with pytest.raises(RuntimeError):
        cluster.run(cluster.sim.process(
            recover(master, [], [])), timeout=10_000.0)


def test_double_crash_recovery():
    """Recover, write more, crash the recovered master, recover again."""
    cluster = curp_cluster()
    client = cluster.new_client()
    cluster.run(client.update(Write("gen1", 1)))
    crash_and_recover(cluster)
    # client view refresh happens inside update retries
    cluster.run(client.update(Write("gen2", 2)), timeout=1_000_000.0)
    new_master, _ = crash_and_recover(cluster)
    cluster.run(client.update(Write("gen3", 3)), timeout=1_000_000.0)
    final = cluster.coordinator.masters["m0"].master
    assert final.store.read("gen1") == 1
    assert final.store.read("gen2") == 2
    assert final.store.read("gen3") == 3
    assert cluster.coordinator.masters["m0"].epoch == 2
