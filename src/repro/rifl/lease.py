"""Client lease management.

RIFL keeps completion records per client; the lease bounds how long a
silent client's records must be retained.  The paper's cluster
coordinator owns leases; here the :class:`LeaseServer` lives on the
coordinator host and masters consult it before expiring records.

The transport between master and lease server is elided (masters hold a
reference): lease checks happen on the master's local clock against
lease expiry timestamps, the same approximation RAMCloud itself makes
with its lease-expiration grace windows.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class LeaseServer:
    """Issues client ids and tracks their lease expiry times."""

    def __init__(self, sim: "Simulator", lease_duration: float = 1_000_000.0):
        self.sim = sim
        self.lease_duration = lease_duration
        self._next_client_id = 0
        self._expiry: dict[int, float] = {}

    def register_client(self) -> int:
        """Allocate a new client id with a fresh lease."""
        self._next_client_id += 1
        client_id = self._next_client_id
        self._expiry[client_id] = self.sim.now + self.lease_duration
        return client_id

    def renew(self, client_id: int) -> float:
        """Extend the lease; returns the new expiry time."""
        if client_id not in self._expiry:
            raise KeyError(f"unknown client id {client_id}")
        self._expiry[client_id] = self.sim.now + self.lease_duration
        return self._expiry[client_id]

    def is_expired(self, client_id: int) -> bool:
        expiry = self._expiry.get(client_id)
        if expiry is None:
            return True
        return self.sim.now > expiry

    def expiry_of(self, client_id: int) -> float | None:
        return self._expiry.get(client_id)

    def expired_clients(self) -> list[int]:
        """Clients whose lease has lapsed (candidates for record GC)."""
        now = self.sim.now
        return [cid for cid, exp in self._expiry.items() if now > exp]

    def drop(self, client_id: int) -> None:
        """Forget a client entirely (after masters GC'd its records)."""
        self._expiry.pop(client_id, None)
