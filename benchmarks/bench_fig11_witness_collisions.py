"""Figure 11 (§B.1): records until a witness-slot collision vs total
slots, for direct-mapped / 2-way / 4-way / 8-way caches.

Paper numbers: direct-mapped at 4096 slots collides after ~80 records;
4-way associativity pushes that to ~1300, close to 8-way — which is why
the implementation settled on 4-way.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.experiments import fig11_witness_collisions
from repro.metrics import format_table


def test_fig11_witness_collisions(benchmark, scale):
    trials = int(300 * scale)  # paper: 10000; scale up for fidelity
    slot_counts = (512, 1024, 2048, 3072, 4096, 4608)
    series = run_once(benchmark, lambda: fig11_witness_collisions(
        slot_counts=slot_counts, trials=trials))
    headers = ["slots"] + [f"{a}-way" for a in sorted(series)]
    rows = []
    for index, slots in enumerate(slot_counts):
        rows.append([slots] + [series[a][index][1] for a in sorted(series)])
    print()
    print(format_table(headers, rows,
                       title="Figure 11 — records before collision"))

    at_4096 = {a: dict(points)[4096] for a, points in series.items()}
    # Paper: ~80 for direct mapping at 4096 slots; associativity helps
    # dramatically.  (Exact ball-in-bin math puts 8-way ~1.9x above
    # 4-way at equal slot count — the paper's plotted curves sit closer
    # together; see EXPERIMENTS.md.  The design conclusion — 4-way
    # suffices because commutativity+gc bound occupancy — is unchanged.)
    assert 50 < at_4096[1] < 120
    assert at_4096[2] > at_4096[1] * 3
    assert at_4096[4] > at_4096[2] * 1.5
    assert at_4096[4] < at_4096[8] < at_4096[4] * 2.2
    benchmark.extra_info["direct_at_4096"] = at_4096[1]
    benchmark.extra_info["fourway_at_4096"] = at_4096[4]
