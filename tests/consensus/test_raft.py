"""Tests for the Raft substrate and the CURP consensus extension (§A.2)."""

from __future__ import annotations

from repro.consensus import RaftConfig, RaftCurpClient, RaftNode, superquorum_size
from repro.kvstore import Increment, Write
from repro.net import Network
from repro.net.latency import LatencyModel
from repro.sim import Fixed, Simulator


def build_group(n=3, curp=True, seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=LatencyModel(Fixed(20.0)))
    names = [f"r{i}" for i in range(n)]
    nodes = []
    config = RaftConfig(curp=curp)
    for name in names:
        host = network.add_host(name)
        nodes.append(RaftNode(host, name, names, config=config))
    return sim, network, nodes


def leader_of(nodes):
    leaders = [n for n in nodes if n.role == "leader" and n.host.alive]
    return leaders[0] if len(leaders) == 1 else None


def wait_for_leader(sim, nodes, deadline=200_000.0):
    end = sim.now + deadline
    while sim.now < end:
        sim.run(until=sim.now + 1_000.0)
        current = leader_of(nodes)
        if current is not None and current.serving:
            # A leader exists; make sure no stale leader also claims it.
            return current
    raise AssertionError("no leader elected")


def add_client(sim, network, nodes, **kwargs):
    host = network.add_host(f"client-{sim.rng.randrange(1_000_000)}")
    return RaftCurpClient(host, [n.name for n in nodes], **kwargs)


def test_superquorum_sizes():
    assert superquorum_size(1) == 3   # of 3 replicas
    assert superquorum_size(2) == 4   # of 5 replicas
    assert superquorum_size(3) == 6   # of 7 replicas


def test_single_leader_elected():
    sim, network, nodes = build_group()
    leader = wait_for_leader(sim, nodes)
    assert leader is not None
    terms = {n.current_term for n in nodes}
    assert len(terms) == 1  # all converged


def test_update_replicates_and_commits():
    sim, network, nodes = build_group()
    wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    result, fast = sim.run(sim.process(client.update(Write("x", 1))))
    assert result == 1
    sim.run(until=sim.now + 10_000.0)
    for node in nodes:
        assert node.store.read("x") == 1  # applied everywhere


def test_curp_fast_path_one_rtt():
    """With all witnesses up, updates complete speculatively."""
    sim, network, nodes = build_group()
    wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    sim.run(sim.process(client.find_leader()))
    start = sim.now
    result, fast = sim.run(sim.process(client.update(Write("a", 1))))
    elapsed = sim.now - start
    assert fast is True
    # 1 RTT = 40 µs (20 µs links); commit would add another ~40.
    assert elapsed < 80.0
    assert client.fast_path_updates == 1


def test_conflicting_update_takes_commit_path():
    sim, network, nodes = build_group()
    wait_for_leader(sim, nodes)
    # Two *concurrent* writes to one key: the later one to reach the
    # leader must find the earlier still uncommitted and wait for its
    # quorum commit.  (Back-to-back sequential writes no longer
    # conflict — the callback completion path processes follower acks
    # at delivery, so the first write commits before a second
    # closed-loop write can arrive.)
    client1 = add_client(sim, network, nodes)
    client2 = add_client(sim, network, nodes)
    first = sim.process(client1.update(Write("k", 1)))
    second = sim.process(client2.update(Write("k", 2)))
    _result1, fast1 = sim.run(first)
    _result2, fast2 = sim.run(second)
    assert not (fast1 and fast2)  # at most one can win the 1-RTT path
    leader = leader_of(nodes)
    assert leader.stats["conflict_commits"] >= 1


def test_read_sees_latest_committed():
    sim, network, nodes = build_group()
    wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    sim.run(sim.process(client.update(Write("x", "v1"))))
    value = sim.run(sim.process(client.read("x")))
    assert value == "v1"


def test_leader_crash_completed_update_survives():
    """The §A.2 safety property: a speculatively-completed update
    (superquorum of witnesses) survives a leader crash via replay."""
    sim, network, nodes = build_group()
    old_leader = wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    result, fast = sim.run(sim.process(client.update(Write("precious", 42))))
    assert fast is True
    # Crash the leader before the entry commits anywhere... it may have
    # committed already (heartbeats are fast); force the scenario by
    # crashing immediately after the reply.
    old_leader.host.crash()
    new_leader = wait_for_leader(sim, nodes)
    assert new_leader is not old_leader
    sim.run(until=sim.now + 20_000.0)
    value = sim.run(sim.process(client.read("precious")))
    assert value == 42


def test_leader_crash_exactly_once_increment():
    sim, network, nodes = build_group()
    old_leader = wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    result, _fast = sim.run(sim.process(client.update(Increment("c", 1))))
    assert result == 1
    old_leader.host.crash()
    wait_for_leader(sim, nodes)
    sim.run(until=sim.now + 20_000.0)
    # Replay + RIFL: the increment applied exactly once.
    value = sim.run(sim.process(client.read("c")))
    assert value == 1


def test_witness_replay_when_append_entries_lost():
    """Force the §A.2 replay: AppendEntries blocked (leader partitioned
    from followers) while the client's witness records still reach the
    follower replicas.  The update completes via superquorum, the
    leader dies, and ONLY the witness replay can save the operation —
    no follower ever saw the log entry."""
    sim, network, nodes = build_group(n=5, seed=11)
    leader = wait_for_leader(sim, nodes)
    followers = [n for n in nodes if n is not leader]
    client = add_client(sim, network, nodes)
    sim.run(sim.process(client.find_leader()))
    # Block replication, keep client paths open.
    for follower in followers:
        network.partition(leader.name, follower.name)
    result, fast = sim.run(sim.process(client.update(Write("only-w", 7))),
                           max_steps=5_000_000)
    assert fast is True  # leader reply + 5/5 witness accepts
    assert all(f.last_log_index() < leader.last_log_index()
               for f in followers)  # no follower has the entry
    leader.host.crash()
    network.heal_all()
    new_leader = wait_for_leader(sim, followers)
    assert new_leader.stats["replayed"] >= 1
    sim.run(until=sim.now + 20_000.0)
    value = sim.run(sim.process(client.read("only-w")))
    assert value == 7


def test_zombie_leader_client_rejected_by_witness_terms():
    """§A.2: records tagged with an old term are rejected, so a client
    of a deposed leader cannot complete the fast path."""
    sim, network, nodes = build_group(n=3)
    old_leader = wait_for_leader(sim, nodes)
    # Partition the old leader away from the other replicas (it still
    # believes it leads).
    for node in nodes:
        if node is not old_leader:
            network.partition(old_leader.name, node.name)
    new_leader = wait_for_leader(
        sim, [n for n in nodes if n is not old_leader])
    assert new_leader.current_term > old_leader.current_term
    # A client that only knows the old leader/term:
    client = add_client(sim, network, nodes, max_attempts=8)
    client.leader = old_leader.name
    client.term = old_leader.current_term
    # The witnesses of the *new* term reject the stale-term records, so
    # the fast path is impossible; the slow path also fails at the old
    # leader (it cannot commit); the client re-finds the new leader and
    # completes there.
    result, fast = sim.run(sim.process(client.update(Write("z", 9))),
                           max_steps=5_000_000)
    assert client.leader == new_leader.name
    sim.run(until=sim.now + 20_000.0)
    assert new_leader.store.read("z") == 9
    # The old leader never committed it.
    assert old_leader.store.read("z") is None


def test_five_replicas_superquorum_fast_path():
    sim, network, nodes = build_group(n=5, seed=3)
    wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    result, fast = sim.run(sim.process(client.update(Write("a", 1))))
    assert fast is True  # 4 of 5 witnesses needed; all 5 up


def test_five_replicas_fast_path_fails_below_superquorum():
    """f=2: superquorum is 4; with two witness-crashed replicas only 3
    can accept → slow path."""
    sim, network, nodes = build_group(n=5, seed=4)
    leader = wait_for_leader(sim, nodes)
    followers = [n for n in nodes if n is not leader]
    followers[0].host.crash()
    followers[1].host.crash()
    client = add_client(sim, network, nodes)
    sim.run(sim.process(client.find_leader()))
    result, fast = sim.run(sim.process(client.update(Write("a", 1))),
                           max_steps=5_000_000)
    assert fast is False  # completed, but via commit
    assert client.completed_updates == 1


def test_committed_entries_gcd_from_witness_components():
    """§3.5 for consensus: after commit, witness records are dropped so
    later writes to the same key regain the 1-RTT fast path."""
    sim, network, nodes = build_group()
    wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    result, fast = sim.run(sim.process(client.update(Write("k", 1))))
    assert fast is True
    # Let the commit + gc land everywhere.
    sim.run(until=sim.now + 5_000.0)
    assert all(n.witness.occupied_slots() == 0 for n in nodes
               if n.host.alive)
    # The same key is immediately fast again (no stale witness record).
    result, fast = sim.run(sim.process(client.update(Write("k", 2))))
    assert fast is True


def test_repeated_same_key_writes_recover_fast_path():
    sim, network, nodes = build_group(seed=13)
    wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    fast_count = 0
    for i in range(5):
        _result, fast = sim.run(sim.process(client.update(Write("hot", i))),
                                max_steps=5_000_000)
        fast_count += bool(fast)
        sim.run(until=sim.now + 3_000.0)  # commit + witness gc settle
    # With gc working, at least the later writes are fast.
    assert fast_count >= 3


def test_noncurp_mode_always_commits():
    sim, network, nodes = build_group(curp=False)
    wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    result, fast = sim.run(sim.process(client.update(Write("a", 1))))
    assert fast is False
    leader = leader_of(nodes)
    assert leader.stats["speculative"] == 0


def test_log_consistency_after_partition_heal():
    sim, network, nodes = build_group(n=3, seed=7)
    leader = wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    sim.run(sim.process(client.update(Write("before", 1))))
    # Partition a follower; keep writing.
    follower = next(n for n in nodes if n.role == "follower")
    network.isolate(follower.name)
    for i in range(3):
        sim.run(sim.process(client.update(Write(f"during{i}", i))),
                max_steps=5_000_000)
    network.rejoin(follower.name)
    sim.run(until=sim.now + 30_000.0)
    # The healed follower caught up.
    assert follower.store.read("before") == 1
    for i in range(3):
        assert follower.store.read(f"during{i}") == i


def test_restart_rebuilds_from_persistent_log():
    sim, network, nodes = build_group(seed=9)
    wait_for_leader(sim, nodes)
    client = add_client(sim, network, nodes)
    sim.run(sim.process(client.update(Write("x", "durable"))))
    sim.run(until=sim.now + 10_000.0)
    victim = next(n for n in nodes if n.role == "follower")
    applied_before = victim.store.read("x")
    victim.host.crash()
    victim.host.restart()
    sim.run(until=sim.now + 30_000.0)
    assert victim.store.read("x") == "durable" == applied_before
