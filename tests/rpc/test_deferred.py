"""Tests for deferred replies (the event-loop server pattern)."""

from __future__ import annotations

import pytest

from repro.net import Network
from repro.rpc import RpcTimeout, RpcTransport
from repro.sim import Simulator


def test_deferred_handler_replies_later(sim: Simulator, network: Network):
    client = RpcTransport(network.add_host("client"))
    server = RpcTransport(network.add_host("server"))
    parked = []

    def handler(args, ctx):
        parked.append((args, ctx))
        return RpcTransport.DEFERRED
    server.register("batchy", handler)
    call = client.call("server", "batchy", "payload")
    sim.run(until=sim.now + 10.0)
    assert not call.triggered  # no auto-reply happened
    args, ctx = parked[0]
    ctx.reply(f"done:{args}")
    assert sim.run(call) == "done:payload"


def test_deferred_batch_replies_together(sim: Simulator, network: Network):
    clients = [RpcTransport(network.add_host(f"c{i}")) for i in range(3)]
    server = RpcTransport(network.add_host("server"))
    queue = []

    def handler(args, ctx):
        queue.append(ctx)
        return RpcTransport.DEFERRED
    server.register("cmd", handler)

    def batch_loop():
        while len(queue) < 3:
            yield sim.timeout(1.0)
        yield sim.timeout(50.0)  # one "fsync" for the whole batch
        for position, ctx in enumerate(queue):
            ctx.reply(position)
    server.host.spawn(batch_loop(), name="loop")
    calls = [c.call("server", "cmd", i) for i, c in enumerate(clients)]
    results = sim.run(sim.all_of(calls))
    assert sorted(results.values()) == [0, 1, 2]


def test_deferred_then_crash_times_out(sim: Simulator, network: Network):
    client = RpcTransport(network.add_host("client"))
    server = RpcTransport(network.add_host("server"))
    server.register("cmd", lambda args, ctx: RpcTransport.DEFERRED)
    call = client.call("server", "cmd", None, timeout=50.0)
    sim.schedule_callback(10.0, server.host.crash)
    with pytest.raises(RpcTimeout):
        sim.run(call)
